//! Property-based round-trip tests for the textual IR format: printing
//! any generated module and parsing it back yields a structurally equal
//! module with identical behavior.

mod common;

use common::{arb_stmts, build_module, run_checksum};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn print_parse_round_trip(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let text = m.to_string();
        let parsed = iloc::parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&m, &parsed);
        // And behavior is of course identical.
        prop_assert_eq!(run_checksum(&m), run_checksum(&parsed));
    }

    /// Round trip survives a full allocation pipeline (spill tags, slot
    /// declarations, CCM instructions all make it through the text form).
    #[test]
    fn allocated_module_round_trips(stmts in arb_stmts()) {
        let mut m = build_module(&stmts);
        regalloc::allocate_module(&mut m, &regalloc::AllocConfig::tiny(3));
        ccm::postpass_promote(
            &mut m,
            &ccm::PostpassConfig { ccm_size: 64, interprocedural: true },
        );
        let text = m.to_string();
        let parsed = iloc::parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&m, &parsed);
        prop_assert_eq!(run_checksum(&m), run_checksum(&parsed));
    }

    /// Parsing is total on printer output even after optimization.
    #[test]
    fn optimized_module_round_trips(stmts in arb_stmts()) {
        let mut m = build_module(&stmts);
        opt::optimize_module(&mut m, &opt::OptOptions::default());
        let text = m.to_string();
        let parsed = iloc::parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&m, &parsed);
    }

    /// The differential fuzzer's generator hits far more of the surface
    /// than `arb_stmts` (irreducible CFGs, multi-function calls, CCM-load
    /// negative-offset addressing, f64 globals): its modules must also
    /// survive the printer/parser round trip exactly.
    #[test]
    fn fuzz_generated_module_round_trips(seed in any::<u64>()) {
        let m = fuzz::gen_module(seed);
        let text = m.to_string();
        let parsed = iloc::parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&m, &parsed);
    }
}
