//! Negative tests for the post-allocation checker: hand-mutate
//! known-good allocated modules and assert the right check fires, with a
//! diagnostic naming the offending site. Also validates the JSON
//! renderer with a minimal hand-written parser.

use checker::{check_module, render_json, render_text, CheckerConfig, Diagnostic, Severity};
use iloc::builder::FuncBuilder;
use iloc::{Function, Instr, Module, Op, Reg, RegClass, SlotId, SpillKind};
use regalloc::AllocConfig;

// ---------------------------------------------------------------------------
// Fixtures: deterministic allocated (and promoted) modules.
// ---------------------------------------------------------------------------

/// A single-function module that spills heavily under three registers.
fn spilled_module() -> (Module, AllocConfig) {
    let mut fb = FuncBuilder::new("main");
    fb.set_ret_classes(&[RegClass::Gpr]);
    let vals: Vec<_> = (0..16).map(|i| fb.loadi(i)).collect();
    let mut acc = vals[15];
    for v in vals[..15].iter().rev() {
        acc = fb.add(acc, *v);
    }
    fb.ret(&[acc]);
    let mut m = Module::new();
    m.push_function(fb.finish());
    let alloc = AllocConfig::tiny(3);
    regalloc::allocate_module(&mut m, &alloc);
    (m, alloc)
}

/// `spilled_module` after post-pass CCM promotion into 512 bytes.
fn promoted_module() -> (Module, AllocConfig) {
    let (mut m, alloc) = spilled_module();
    ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    assert!(
        m.functions[0].frame.slots.iter().any(|s| s.in_ccm),
        "fixture must promote at least one slot"
    );
    (m, alloc)
}

/// A two-function module where `main`'s spills are live across a call to
/// a leaf that itself uses the CCM; promoted interprocedurally.
fn interproc_module() -> (Module, AllocConfig) {
    let mut leaf = FuncBuilder::new("leaf");
    leaf.set_ret_classes(&[RegClass::Gpr]);
    let vals: Vec<_> = (0..16).map(|i| leaf.loadi(i)).collect();
    let mut acc = vals[15];
    for v in vals[..15].iter().rev() {
        acc = leaf.add(acc, *v);
    }
    leaf.ret(&[acc]);

    let mut fb = FuncBuilder::new("main");
    fb.set_ret_classes(&[RegClass::Gpr]);
    let vals: Vec<_> = (0..16).map(|i| fb.loadi(i)).collect();
    let call_ret = fb.call("leaf", &[], &[RegClass::Gpr]);
    let mut acc = call_ret[0];
    for v in &vals {
        acc = fb.add(acc, *v);
    }
    fb.ret(&[acc]);

    let mut m = Module::new();
    m.push_function(fb.finish());
    m.push_function(leaf.finish());
    let alloc = AllocConfig::tiny(3);
    regalloc::allocate_module(&mut m, &alloc);
    ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    (m, alloc)
}

fn cfg(alloc: AllocConfig) -> CheckerConfig {
    CheckerConfig::with_alloc(512, alloc)
}

/// Moves slot `s` of `f` to `new_off`, patching both the frame record
/// and every spill instruction addressing it — a consistent but possibly
/// unsafe relocation, like a buggy compaction pass would produce.
fn retarget_slot(f: &mut Function, s: SlotId, new_off: u32) {
    f.frame.slot_mut(s).offset = new_off;
    for b in &mut f.blocks {
        for instr in &mut b.instrs {
            if instr.spill_slot() != Some(s) {
                continue;
            }
            match &mut instr.op {
                Op::StoreAI { off, .. }
                | Op::LoadAI { off, .. }
                | Op::FStoreAI { off, .. }
                | Op::FLoadAI { off, .. } => *off = new_off as i64,
                Op::CcmStore { off, .. }
                | Op::CcmLoad { off, .. }
                | Op::CcmFStore { off, .. }
                | Op::CcmFLoad { off, .. } => *off = new_off,
                _ => {}
            }
        }
    }
}

fn find(diags: &[Diagnostic], check: &str) -> Vec<Diagnostic> {
    diags.iter().filter(|d| d.check == check).cloned().collect()
}

// ---------------------------------------------------------------------------
// Mutations.
// ---------------------------------------------------------------------------

#[test]
fn baseline_fixtures_are_clean() {
    let (m, alloc) = spilled_module();
    assert!(!checker::has_errors(&check_module(&m, &cfg(alloc))));
    let (m, alloc) = promoted_module();
    assert!(!checker::has_errors(&check_module(&m, &cfg(alloc))));
    let (m, alloc) = interproc_module();
    let diags = check_module(&m, &cfg(alloc));
    assert!(!checker::has_errors(&diags), "{}", render_text(&diags));
}

#[test]
fn reintroduced_vreg_is_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    let e = f.entry();
    let v = Reg::new(RegClass::Gpr, iloc::FIRST_VREG + 7);
    f.block_mut(e)
        .instrs
        .insert(2, Instr::new(Op::LoadI { imm: 9, dst: v }));
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "machine-vreg");
    assert_eq!(hits.len(), 1, "{}", render_text(&diags));
    assert_eq!(hits[0].function, "main");
    assert!(hits[0].block.is_some(), "diagnostic must name the block");
    assert_eq!(hits[0].instr, Some(2));
    assert_eq!(hits[0].severity, Severity::Error);
}

#[test]
fn out_of_bounds_register_is_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    let e = f.entry();
    // tiny(3) allows %r1..%r3; %r9 is a register the machine lacks.
    f.block_mut(e).instrs.insert(
        0,
        Instr::new(Op::LoadI {
            imm: 1,
            dst: Reg::gpr(9),
        }),
    );
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "machine-reg-bounds");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert_eq!(hits[0].instr, Some(0));
    assert!(hits[0].message.contains("%r9"));
}

#[test]
fn read_before_write_is_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    let e = f.entry();
    // %r2 is a legal register but holds nothing at function entry.
    f.block_mut(e).instrs.insert(
        0,
        Instr::new(Op::IBin {
            kind: iloc::IBinKind::Add,
            lhs: Reg::gpr(2),
            rhs: Reg::gpr(2),
            dst: Reg::gpr(1),
        }),
    );
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "machine-def-use");
    assert_eq!(hits.len(), 1, "{}", render_text(&diags));
    assert_eq!(hits[0].instr, Some(0));
    assert!(hits[0].message.contains("%r2"));
}

#[test]
fn aliased_interfering_slots_are_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    // Find an interfering frame-resident pair and give them one offset.
    let sa = ccm::SlotAnalysis::compute(f);
    let (a, b) = (0..sa.n)
        .flat_map(|i| sa.adj[i].iter().map(move |&j| (i, j)))
        .find(|&(i, j)| i < j && !f.frame.slots[i].in_ccm && !f.frame.slots[j].in_ccm)
        .expect("fixture has interfering slots");
    let shared = f.frame.slots[a].offset;
    retarget_slot(f, SlotId(b as u32), shared);
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "slot-overlap");
    assert_eq!(hits.len(), 1, "{}", render_text(&diags));
    assert_eq!(hits[0].function, "main");
    assert!(hits[0].message.contains("frame"));
}

#[test]
fn ccm_offset_past_capacity_is_caught() {
    let (mut m, alloc) = promoted_module();
    let f = &mut m.functions[0];
    let s = (0..f.frame.slots.len())
        .find(|&i| f.frame.slots[i].in_ccm)
        .unwrap();
    retarget_slot(f, SlotId(s as u32), 512); // one past the last byte
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "ccm-bounds");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    // At least one diagnostic pins the offending access down to an
    // instruction inside a block.
    assert!(
        hits.iter().any(|d| d.block.is_some() && d.instr.is_some()),
        "{}",
        render_text(&diags)
    );
}

#[test]
fn dropped_spill_store_is_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    let mut dropped = None;
    'outer: for b in &mut f.blocks {
        for i in 0..b.instrs.len() {
            if let SpillKind::Store(s) = b.instrs[i].spill {
                b.instrs.remove(i);
                dropped = Some(s);
                break 'outer;
            }
        }
    }
    let dropped = dropped.expect("fixture has spill stores");
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "slot-undef-load");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert!(hits[0].message.contains(&dropped.index().to_string()));
    assert!(hits[0].block.is_some() && hits[0].instr.is_some());
}

#[test]
fn dead_spill_store_is_warned_not_errored() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    // Clone an existing spill store to just before the return: nothing
    // restores the slot afterwards, so the store is dead.
    let e = f.entry();
    let store = f
        .block(e)
        .instrs
        .iter()
        .find(|i| matches!(i.spill, SpillKind::Store(_)))
        .expect("fixture has spill stores")
        .clone();
    let at = f.block(e).instrs.len() - 1;
    f.block_mut(e).instrs.insert(at, store);
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "slot-dead-store");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    assert!(!checker::has_errors(&diags), "{}", render_text(&diags));
}

#[test]
fn untagged_ccm_access_is_caught() {
    let (mut m, alloc) = promoted_module();
    let f = &mut m.functions[0];
    let mut stripped = false;
    'outer: for b in &mut f.blocks {
        for instr in &mut b.instrs {
            if instr.op.is_ccm_op() {
                instr.spill = SpillKind::None;
                stripped = true;
                break 'outer;
            }
        }
    }
    assert!(stripped, "fixture has CCM accesses");
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "ccm-mark");
    assert_eq!(hits.len(), 1, "{}", render_text(&diags));
    assert!(hits[0].block.is_some() && hits[0].instr.is_some());
}

#[test]
fn interprocedural_clobber_is_caught() {
    let (mut m, alloc) = interproc_module();
    // Find a CCM slot in `main` that is live across the call to `leaf`
    // and shove it down to offset 0 — inside leaf's scratchpad area.
    let mi = m.function_indices()["main"];
    let f = &mut m.functions[mi];
    let sa = ccm::SlotAnalysis::compute(f);
    let victim = (0..sa.n)
        .find(|&i| f.frame.slots[i].in_ccm && sa.crosses_call[i])
        .expect("main must keep a CCM value live across the call");
    assert!(
        f.frame.slots[victim].offset > 0,
        "honest promotion placed the slot above leaf's high-water mark"
    );
    retarget_slot(f, SlotId(victim as u32), 0);
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "ccm-interproc");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert_eq!(hits[0].function, "main");
    assert!(hits[0].message.contains("leaf"));
}

#[test]
fn inconsistent_spill_offset_is_caught() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    // Skew one spill store's offset without touching the slot record.
    let e = f.entry();
    let mut skewed = false;
    for instr in &mut f.block_mut(e).instrs {
        if matches!(instr.spill, SpillKind::Store(_)) {
            if let Op::StoreAI { off, .. } = &mut instr.op {
                *off += 4;
                skewed = true;
                break;
            }
        }
    }
    assert!(skewed);
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "slot-frame");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert!(hits[0].message.contains("slot record says"));
}

// ---------------------------------------------------------------------------
// Mutations lifted from the differential fuzzer. These are the injected
// bugs `fuzz::apply_mutation` uses to prove the oracle can catch a broken
// allocator; here they run against deterministic fixtures to pin down
// exactly which checks catch them.
// ---------------------------------------------------------------------------

/// A CCM restore pushed past the scratchpad's last byte — the fuzzer's
/// `BumpCcmOffset` aimed at the top of the CCM. Unlike
/// `ccm_offset_past_capacity_is_caught` (which relocates the whole slot
/// consistently), only the restore instruction moves: both the bounds
/// check and the slot/instruction consistency check must fire on it.
#[test]
fn out_of_bounds_ccm_restore_is_caught() {
    let (mut m, alloc) = promoted_module();
    let f = &mut m.functions[0];
    let mut bumped = false;
    'outer: for b in &mut f.blocks {
        for i in &mut b.instrs {
            if let Op::CcmLoad { off, .. } | Op::CcmFLoad { off, .. } = &mut i.op {
                *off = 512; // one past the last CCM byte
                bumped = true;
                break 'outer;
            }
        }
    }
    assert!(bumped, "fixture has CCM restores");
    let diags = check_module(&m, &cfg(alloc));
    assert!(
        !find(&diags, "ccm-bounds").is_empty(),
        "{}",
        render_text(&diags)
    );
    assert!(
        !find(&diags, "slot-frame").is_empty(),
        "{}",
        render_text(&diags)
    );
}

/// The fuzzer's `OverlapSlots` mutation on the interprocedural fixture:
/// two CCM-resident slots of one function — spill traffic that stays hot
/// across the call to `leaf` — are collapsed onto one offset, so a store
/// to the second slot clobbers the first while it is still live.
#[test]
fn fuzz_overlap_mutation_clobbers_live_slot() {
    let (mut m, alloc) = interproc_module();
    assert!(
        fuzz::apply_mutation(&mut m, fuzz::Mutation::OverlapSlots),
        "fixture must carry two CCM slots in one function"
    );
    let diags = check_module(&m, &cfg(alloc));
    let hits = find(&diags, "slot-overlap");
    assert!(!hits.is_empty(), "{}", render_text(&diags));
    assert!(
        hits.iter().any(|d| d.message.contains("CCM")),
        "{}",
        render_text(&diags)
    );
}

// ---------------------------------------------------------------------------
// JSON output: validated with a minimal hand-written parser.
// ---------------------------------------------------------------------------

/// A tiny JSON value model — just enough to validate the renderer.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self.s.get(self.i).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.ws();
        assert_eq!(&self.s[self.i..self.i + word.len()], word.as_bytes());
        self.i += word.len();
        v
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|&c| c.is_ascii_digit() || b"+-.eE".contains(&c))
        {
            self.i += 1;
        }
        Json::Num(
            std::str::from_utf8(&self.s[start..self.i])
                .unwrap()
                .parse()
                .expect("malformed number"),
        )
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    match self.s[self.i] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).expect("bad code point"));
                            self.i += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through unharmed.
                    let rest = std::str::from_utf8(&self.s[self.i..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] but found {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected , or }} but found {:?}", other as char),
            }
        }
    }

    fn parse(mut self) -> Json {
        let v = self.value();
        self.ws();
        assert_eq!(self.i, self.s.len(), "trailing bytes after JSON value");
        v
    }
}

#[test]
fn json_output_parses_and_carries_the_fields() {
    let (mut m, alloc) = spilled_module();
    let f = &mut m.functions[0];
    let e = f.entry();
    // Two mutations so the array has both an error and a warning.
    let v = Reg::new(RegClass::Gpr, iloc::FIRST_VREG);
    f.block_mut(e)
        .instrs
        .insert(0, Instr::new(Op::LoadI { imm: 1, dst: v }));
    let store = f
        .block(e)
        .instrs
        .iter()
        .find(|i| matches!(i.spill, SpillKind::Store(_)))
        .unwrap()
        .clone();
    let at = f.block(e).instrs.len() - 1;
    f.block_mut(e).instrs.insert(at, store);

    let diags = check_module(&m, &cfg(alloc));
    let json = render_json(&diags);
    let parsed = Parser::new(&json).parse();
    let Json::Arr(items) = &parsed else {
        panic!("top level must be an array")
    };
    assert_eq!(items.len(), diags.len());
    for (item, d) in items.iter().zip(&diags) {
        assert_eq!(
            item.get("severity").and_then(Json::as_str),
            Some(d.severity.to_string().as_str())
        );
        assert_eq!(
            item.get("function").and_then(Json::as_str),
            Some(d.function.as_str())
        );
        assert_eq!(item.get("check").and_then(Json::as_str), Some(d.check));
        assert_eq!(
            item.get("message").and_then(Json::as_str),
            Some(d.message.as_str())
        );
        match d.instr {
            Some(n) => assert_eq!(item.get("instr"), Some(&Json::Num(n as f64))),
            None => assert_eq!(item.get("instr"), Some(&Json::Null)),
        }
        match &d.block {
            Some(b) => assert_eq!(item.get("block").and_then(Json::as_str), Some(b.as_str())),
            None => assert_eq!(item.get("block"), Some(&Json::Null)),
        }
    }
    let severities: Vec<&str> = items
        .iter()
        .map(|i| i.get("severity").unwrap().as_str().unwrap())
        .collect();
    assert!(severities.contains(&"error") && severities.contains(&"warning"));

    // Escaping: a function name with quote, backslash, and newline.
    let hostile = vec![Diagnostic::error(
        "structure",
        "we\"ird\\name",
        "line one\nline two\ttabbed".to_string(),
    )];
    let parsed = Parser::new(&render_json(&hostile)).parse();
    let Json::Arr(items) = &parsed else { panic!() };
    assert_eq!(
        items[0].get("function").and_then(Json::as_str),
        Some("we\"ird\\name")
    );
    assert_eq!(
        items[0].get("message").and_then(Json::as_str),
        Some("line one\nline two\ttabbed")
    );
}
