//! Fault-injection integration tests: every registered fault point is
//! fired against the real pipeline and the run must survive with the
//! expected structured failure. This lives in its own test binary
//! because arming (`inject::arm`) and the simulator's default step
//! budget are process-global — each test takes the shared guard so two
//! armed tests never interleave, and no other binary's tests share the
//! process.

use std::sync::{Mutex, MutexGuard};

use harness::{inject_sweep, Variant};
use sim::MachineConfig;

/// Serializes tests that touch process-global state (arming, the
/// default sim budget, the panic hook).
fn guard() -> MutexGuard<'static, ()> {
    static G: Mutex<()> = Mutex::new(());
    G.lock().unwrap_or_else(|p| p.into_inner())
}

fn must(r: Result<harness::Measurement, harness::PipelineError>) -> harness::Measurement {
    r.unwrap_or_else(|e| panic!("measurement failed: {e}"))
}

/// The sweep is the master assertion: every point in the registry
/// fires, is contained with the expected shape, and leaves the process
/// healthy.
#[test]
fn every_registered_point_survives_with_expected_failure() {
    let _g = guard();
    let outcomes = inject_sweep::run_sweep(2);
    assert_eq!(outcomes.len(), inject::REGISTRY.len());
    for o in &outcomes {
        assert!(o.passed, "{}: {}", o.name, o.detail);
    }
    // Rendering is deterministic and names every point.
    let text = inject_sweep::render(&outcomes);
    for p in inject::REGISTRY {
        assert!(text.contains(p.name), "render lost {}", p.name);
    }
}

/// The acceptance scenario spelled out in full: a forced CCM-coloring
/// failure degrades one function to heavyweight spills while *every*
/// variant's golden output stays byte-identical — including the
/// variants measured before and after the injection.
#[test]
fn forced_coloring_failure_degrades_without_changing_any_golden_output() {
    let _g = guard();
    inject::disarm();
    let k = suite::kernel("radf5").expect("kernel exists");
    let m = suite::build_optimized(&k);
    let machine = MachineConfig::with_ccm(512);

    let clean: Vec<_> = Variant::ALL
        .iter()
        .map(|&v| must(harness::measure(m.clone(), v, &machine)))
        .collect();
    let golden = clean[0].checksum.to_bits();
    for (v, c) in Variant::ALL.iter().zip(&clean) {
        assert_eq!(c.checksum.to_bits(), golden, "{v:?} clean run diverged");
        assert!(c.degraded.is_empty(), "{v:?} degraded unprovoked");
    }

    // Degrade exactly one function of the post-pass allocation.
    inject::arm_once("alloc.ccm_coloring", 0).expect("registered point");
    let degraded = harness::measure(m.clone(), Variant::PostPassCallGraph, &machine);
    let fires = inject::disarm();
    let degraded = must(degraded);
    assert_eq!(fires, 1, "the point must fire exactly once");
    assert_eq!(degraded.degraded.len(), 1, "exactly one function degrades");
    assert_eq!(
        degraded.checksum.to_bits(),
        golden,
        "degradation changed output"
    );
    // The degraded function kept its heavyweight spills, so the
    // degraded run can never beat the clean promoted run.
    let clean_cg = &clean[2];
    assert!(degraded.cycles >= clean_cg.cycles);

    // After disarming, every variant reproduces its clean measurement
    // bit for bit — the injection poisoned nothing.
    for (v, c) in Variant::ALL.iter().zip(&clean) {
        let again = must(harness::measure(m.clone(), *v, &machine));
        assert_eq!(again.cycles, c.cycles, "{v:?} cycles changed after sweep");
        assert_eq!(again.checksum.to_bits(), c.checksum.to_bits());
        assert!(again.degraded.is_empty());
    }
}

/// A fuzz campaign in which every non-baseline variant panics in the
/// allocator: each case reports a structured `Panicked` failure, the
/// campaign completes all cases, and the minimizer still produces a
/// reproducer.
#[test]
fn fuzz_campaign_survives_injected_allocator_panic() {
    let _g = guard();
    inject::disarm();
    // Panic-type point: silence the default hook for the duration.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cfg = fuzz::OracleConfig {
        ccm_sizes: vec![64],
        variants: vec![fuzz::Variant::PostPass],
        alloc: regalloc::AllocConfig::tiny(3),
        ..Default::default()
    };
    inject::arm("alloc.panic").expect("registered point");
    let results = fuzz::campaign(2, 7, 2, &cfg);
    inject::disarm();
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 2, "campaign must complete every case");
    for r in &results {
        let mf = r.outcome.as_ref().expect_err("armed case must fail");
        assert_eq!(mf.failure.kind, fuzz::FailureKind::Panicked);
        assert!(
            mf.failure.detail.contains("injected allocator panic"),
            "case {}: detail `{}`",
            r.index,
            mf.failure.detail
        );
        // The minimizer still ran on the panicking case and produced a
        // parseable reproducer (the panic fires on any module, so the
        // shrink converges to something tiny).
        assert!(
            !mf.module.functions.is_empty(),
            "case {}: minimizer returned an empty reproducer",
            r.index
        );
        let text = mf.module.to_string();
        iloc::parse_module(&text).expect("minimized reproducer must round-trip");
    }
}

/// Seeded panic containment in the parallel engine: a fixed,
/// scheduling-independent subset of items panics and the failure report
/// is byte-identical at every job count. (This deliberately does NOT
/// use inject: `arm_once` under concurrent workers is deterministic
/// about *how many* fires happen, not about *which item* — a seeded
/// pattern in the work closure is the right tool for this assertion.)
#[test]
fn exec_panic_containment_reports_are_job_count_invariant() {
    let items: Vec<u64> = (0..40).collect();
    let render = |jobs: usize| {
        exec::par_map_contained(
            jobs,
            &items,
            |i| format!("unit {i}"),
            |&i| {
                if i % 7 == 2 {
                    panic!("seeded failure at {i}");
                }
                i * 3 + 1
            },
        )
        .iter()
        .map(|r| match r {
            Ok(v) => format!("ok {v}"),
            Err(e) => format!("fail {e}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
    };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let serial = render(1);
    let j4 = render(4);
    let j9 = render(9);
    std::panic::set_hook(prev);
    assert_eq!(serial, j4, "jobs=4 failure report diverged");
    assert_eq!(serial, j9, "jobs=9 failure report diverged");
    assert!(serial.contains("fail unit 2: worker panic: seeded failure at 2"));
    assert_eq!(serial.matches("fail ").count(), 6); // 2,9,16,23,30,37
}

/// `--sim-budget` wiring: the process-wide default step budget feeds
/// `MachineConfig::default()` and surfaces as a structured `stage=sim`
/// step-limit error (the runaway-loop watchdog), then restores cleanly.
#[test]
fn sim_budget_override_acts_as_watchdog() {
    let _g = guard();
    let k = suite::kernel("radf5").expect("kernel exists");
    let m = suite::build_optimized(&k);
    sim::set_default_max_steps(100);
    let machine = MachineConfig {
        ccm_size: 512,
        ..MachineConfig::default()
    };
    assert_eq!(machine.max_steps, 100, "default() must pick up the budget");
    let err = harness::measure(m.clone(), Variant::Baseline, &machine).unwrap_err();
    sim::set_default_max_steps(sim::DEFAULT_MAX_STEPS);
    assert_eq!(err.stage, harness::Stage::Sim);
    assert!(err.detail.contains("step limit"), "{err}");
    // Back at the default budget the kernel completes.
    let ok = must(harness::measure(
        m,
        Variant::Baseline,
        &MachineConfig::with_ccm(512),
    ));
    assert!(ok.checksum.is_finite());
}
