//! Edge-case integration tests: irregular control flow, pass
//! idempotence, and machine-state isolation.

use regalloc::AllocConfig;
use sim::MachineConfig;

/// Unwraps a pipeline measurement, printing the structured error.
fn must(r: Result<harness::Measurement, harness::PipelineError>) -> harness::Measurement {
    r.unwrap_or_else(|e| panic!("measurement failed: {e}"))
}

/// An irreducible CFG (two distinct entries into a cycle) survives the
/// whole pipeline: SSA in/out, optimization, allocation, promotion.
#[test]
fn irreducible_cfg_through_full_pipeline() {
    use iloc::builder::FuncBuilder;
    use iloc::{Op, RegClass};

    let mut fb = FuncBuilder::new("main");
    fb.set_ret_classes(&[RegClass::Gpr]);
    let n = fb.vreg(RegClass::Gpr);
    fb.emit(Op::LoadI { imm: 10, dst: n });
    let cond0 = fb.loadi(1);
    let a = fb.block("a");
    let b = fb.block("b");
    let out = fb.block("out");
    // Two entries into the {a, b} cycle: entry → a and entry → b.
    fb.cbr(cond0, a, b);
    // a: n -= 1; if n > 0 goto b else out
    fb.switch_to(a);
    let n1 = fb.subi(n, 1);
    fb.emit(Op::I2I { src: n1, dst: n });
    let zero_a = fb.loadi(0);
    let ca = fb.icmp(iloc::CmpKind::Gt, n, zero_a);
    fb.cbr(ca, b, out);
    // b: n -= 2; if n > 0 goto a else out
    fb.switch_to(b);
    let n2 = fb.subi(n, 2);
    fb.emit(Op::I2I { src: n2, dst: n });
    let zero_b = fb.loadi(0);
    let cb = fb.icmp(iloc::CmpKind::Gt, n, zero_b);
    fb.cbr(cb, a, out);
    fb.switch_to(out);
    fb.ret(&[n]);

    let mut m = iloc::Module::new();
    m.push_function(fb.finish());
    m.verify().unwrap();
    let (v0, _) = sim::run_module(&m, MachineConfig::default(), "main").unwrap();

    opt::optimize_module(&mut m, &opt::OptOptions::default());
    m.verify().unwrap();
    let (v1, _) = sim::run_module(&m, MachineConfig::default(), "main").unwrap();
    assert_eq!(v0, v1, "optimization must handle irreducible flow");

    regalloc::allocate_module(&mut m, &AllocConfig::tiny(2));
    m.verify().unwrap();
    ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 64,
            interprocedural: true,
        },
    );
    m.verify().unwrap();
    let (v2, _) = sim::run_module(&m, MachineConfig::with_ccm(64), "main").unwrap();
    assert_eq!(
        v0, v2,
        "allocation + promotion must handle irreducible flow"
    );
}

/// Running the post-pass allocator twice is harmless: the second pass
/// finds the slots already in the CCM and changes nothing.
#[test]
fn postpass_promotion_is_idempotent() {
    let k = suite::kernel("radf5").expect("kernel exists");
    let mut m = suite::build_optimized(&k);
    regalloc::allocate_module(&mut m, &AllocConfig::default());
    let cfg = ccm::PostpassConfig {
        ccm_size: 512,
        interprocedural: true,
    };
    ccm::postpass_promote(&mut m, &cfg);
    let snapshot = m.clone();
    let second = ccm::postpass_promote(&mut m, &cfg);
    assert_eq!(m, snapshot, "second promotion must be a no-op on the code");
    for s in &second {
        assert_eq!(s.promoted, 0, "{}: nothing left to promote", s.name);
    }
    let (v, _) = sim::run_module(&m, MachineConfig::with_ccm(512), "main").unwrap();
    assert!(v.floats[0].is_finite());
}

/// A `Machine` can run the same module repeatedly with identical results
/// and metrics (the CCM and metrics are reset per run).
#[test]
fn machine_runs_are_independent() {
    let k = suite::kernel("cosqf1").expect("kernel exists");
    let mut m = suite::build_optimized(&k);
    regalloc::allocate_module(&mut m, &AllocConfig::default());
    ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    let mut machine = sim::Machine::new(&m, MachineConfig::with_ccm(512));
    let r1 = machine.run("main").unwrap();
    let m1 = machine.metrics;
    let r2 = machine.run("main").unwrap();
    let m2 = machine.metrics;
    assert_eq!(r1, r2);
    assert_eq!(m1.cycles, m2.cycles);
    assert_eq!(m1.ccm_ops, m2.ccm_ops);
}

/// Compaction after compaction is a fixed point.
#[test]
fn compaction_is_idempotent() {
    let k = suite::kernel("twldrv").expect("kernel exists");
    let mut m = suite::build_optimized(&k);
    regalloc::allocate_module(&mut m, &AllocConfig::default());
    let first = ccm::compact_module(&mut m);
    let snapshot = m.clone();
    let second = ccm::compact_module(&mut m);
    assert_eq!(m, snapshot);
    for ((_, a), (_, b)) in first.iter().zip(&second) {
        assert_eq!(a.after, b.before);
        assert_eq!(b.after, b.before, "second compaction finds nothing");
    }
}

/// The scheduler composes with the whole CCM pipeline on a real kernel:
/// schedule → allocate → promote → schedule again, still correct.
#[test]
fn scheduler_composes_with_ccm_pipeline() {
    let k = suite::kernel("colbur").expect("kernel exists");
    let m0 = suite::build_optimized(&k);
    let machine = MachineConfig::with_ccm(512);
    let base = must(harness::measure(
        m0.clone(),
        harness::Variant::Baseline,
        &machine,
    ));

    let mut m = m0.clone();
    sched::schedule_module(&mut m, 2);
    regalloc::allocate_module(&mut m, &AllocConfig::default());
    ccm::postpass_promote(
        &mut m,
        &ccm::PostpassConfig {
            ccm_size: 512,
            interprocedural: true,
        },
    );
    sched::schedule_module(&mut m, 2);
    m.verify().unwrap();
    let (v, _) = sim::run_module(&m, machine, "main").unwrap();
    assert_eq!(
        v.floats[0].to_bits(),
        base.checksum.to_bits(),
        "fully-composed pipeline must preserve the checksum"
    );
}
