//! The decoded engine's equivalence contract, enforced end to end.
//!
//! `sim` ships two execution engines — the tree-walking AST reference
//! interpreter and the pre-decoded flat-PC engine — that must be
//! observationally identical: same `RetValues` (floats bit-for-bit),
//! same full `Metrics` (cycles, stalls, spill counts, memory traffic,
//! cache statistics), and the same `SimError` on every trap, at the
//! same instruction count. This suite drives that contract over the
//! three code populations we have: the checked-in fuzz corpus, the
//! hand-written kernel suite, and a seeded 128-case fuzz batch run
//! through the dual-engine oracle.

use regalloc::AllocConfig;
use sim::{Engine, MachineConfig, Metrics, RetValues, SimError};

fn corpus_entries() -> Vec<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "iloc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    entries
}

type EngineOutcome = Result<(RetValues, Metrics), SimError>;

/// Runs `m` under one engine with everything else held equal.
fn run_engine(m: &iloc::Module, engine: Engine, ccm: u32) -> EngineOutcome {
    let cfg = MachineConfig {
        engine,
        ..MachineConfig::with_ccm(ccm)
    };
    sim::run_module(m, cfg, "main")
}

/// Asserts the two engines agree on `m`, with `what` naming the module
/// in failure output.
fn assert_engines_agree(m: &iloc::Module, ccm: u32, what: &str) {
    let ast = run_engine(m, Engine::Ast, ccm);
    let dec = run_engine(m, Engine::Decoded, ccm);
    match (&ast, &dec) {
        (Ok((va, ma)), Ok((vd, md))) => {
            assert_eq!(va.ints, vd.ints, "{what}: integer returns diverged");
            let bits = |v: &RetValues| v.floats.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(va), bits(vd), "{what}: float bits diverged");
            assert_eq!(ma, md, "{what}: metrics diverged");
        }
        (Err(ea), Err(ed)) => assert_eq!(ea, ed, "{what}: traps diverged"),
        _ => panic!(
            "{what}: one engine trapped, the other returned:\nast: {ast:?}\ndecoded: {dec:?}"
        ),
    }
}

/// Every corpus reproducer, replayed through both engines raw and after
/// each allocation variant — the population of modules that already
/// broke the pipeline once is exactly the population most likely to
/// break a new engine.
#[test]
fn corpus_is_engine_equivalent() {
    for path in corpus_entries() {
        let text = std::fs::read_to_string(&path).unwrap();
        let m = iloc::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        m.verify()
            .unwrap_or_else(|e| panic!("{}: verify failed: {e:?}", path.display()));
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert_engines_agree(&m, 1024, &format!("{name} (raw)"));
        for variant in fuzz::Variant::ALL {
            for ccm in [16, 256, 1024] {
                let mut mm = m.clone();
                fuzz::oracle::allocate(&mut mm, variant, ccm, &AllocConfig::tiny(3));
                let what = format!("{name} ({} @ {ccm})", variant.label());
                assert_engines_agree(&mm, ccm, &what);
            }
        }
    }
}

/// Every suite kernel, fully compiled (optimize → allocate → promote),
/// agrees across engines — the code population the paper's numbers
/// come from.
#[test]
fn kernel_suite_is_engine_equivalent() {
    for k in suite::kernels() {
        let mut m = suite::build_optimized(&k);
        harness::allocate_variant(&mut m, harness::Variant::PostPassCallGraph, 512);
        assert_engines_agree(&m, 512, k.name);
    }
}

/// The satellite gate: a seeded 128-case fuzz batch through the
/// dual-engine oracle. Every generated module runs every variant at
/// every CCM size under BOTH engines; any divergence in values,
/// metrics, or trap is an `engine-mismatch` failure.
#[test]
fn fuzz_batch_128_is_engine_equivalent() {
    let cfg = fuzz::OracleConfig {
        dual_engine: true,
        ..fuzz::OracleConfig::default()
    };
    let results = fuzz::campaign(128, 0xCC_0123, exec::default_jobs(), &cfg);
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| {
            r.outcome.as_ref().err().map(|f| {
                format!(
                    "case {} (seed {:#x}): {} {}: {}",
                    r.index,
                    r.seed,
                    f.failure.kind.label(),
                    f.failure.variant.label(),
                    f.failure.detail
                )
            })
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of 128 dual-engine cases failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The decoded engine must not reject at decode time what the AST
/// engine only rejects at run time: an undeclared global surfaces the
/// identical `SimError::UnknownGlobal` from both engines, and only when
/// executed.
#[test]
fn unknown_global_trap_is_identical_across_engines() {
    use iloc::builder::FuncBuilder;
    use iloc::{Op, RegClass};

    let mut fb = FuncBuilder::new("main");
    let d = fb.vreg(RegClass::Gpr);
    fb.emit(Op::LoadSym {
        sym: "undeclared".to_string(),
        dst: d,
    });
    fb.ret(&[]);
    let mut m = iloc::Module::new();
    m.push_function(fb.finish());

    let ast = run_engine(&m, Engine::Ast, 1024).unwrap_err();
    let dec = run_engine(&m, Engine::Decoded, 1024).unwrap_err();
    assert_eq!(ast, SimError::UnknownGlobal("undeclared".to_string()));
    assert_eq!(ast, dec);
}
