//! Property-based validation of the analyses against brute-force oracles
//! on randomly generated CFGs.

use analysis::Dominators;
use iloc::builder::FuncBuilder;
use iloc::{BlockId, Function, Op, Reg};
use proptest::prelude::*;

/// Builds a random CFG with `n` blocks: block 0 is the entry; each block
/// ends in a `ret`, `jump`, or `cbr` at targets drawn from `edges`.
fn build_cfg(n: usize, edges: &[(usize, usize)]) -> Function {
    let mut fb = FuncBuilder::new("f");
    let blocks: Vec<BlockId> = std::iter::once(fb.entry())
        .chain((1..n).map(|i| fb.block(format!("b{i}"))))
        .collect();
    // Group targets per source.
    let mut targets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(s, t) in edges {
        targets[s % n].push(t % n);
    }
    for (i, b) in blocks.iter().enumerate() {
        fb.switch_to(*b);
        match targets[i].len() {
            0 => fb.ret(&[]),
            1 => fb.jump(blocks[targets[i][0]]),
            _ => {
                let c = fb.vreg(iloc::RegClass::Gpr);
                fb.emit(Op::LoadI { imm: 1, dst: c });
                fb.cbr(c, blocks[targets[i][0]], blocks[targets[i][1]]);
            }
        }
    }
    fb.finish()
}

/// Oracle: `a` dominates `b` iff removing `a` makes `b` unreachable from
/// the entry (or `a == b`).
fn dominates_oracle(f: &Function, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut queue = vec![f.entry()];
    if f.entry() == a {
        return reachable(f, b); // removing the entry: b unreachable ⇒ dominated
    }
    seen[f.entry().index()] = true;
    while let Some(x) = queue.pop() {
        for s in f.successors(x) {
            if s != a && !seen[s.index()] {
                seen[s.index()] = true;
                queue.push(s);
            }
        }
    }
    reachable(f, b) && !seen[b.index()]
}

fn reachable(f: &Function, b: BlockId) -> bool {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut queue = vec![f.entry()];
    seen[f.entry().index()] = true;
    while let Some(x) = queue.pop() {
        if x == b {
            return true;
        }
        for s in f.successors(x) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push(s);
            }
        }
    }
    seen[b.index()]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Cooper-Harvey-Kennedy dominators agree with the removal oracle on
    /// arbitrary (including irreducible and partially unreachable) CFGs.
    #[test]
    fn dominators_match_oracle(
        n in 2usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 1..20)
    ) {
        let f = build_cfg(n, &edges);
        let dom = Dominators::compute(&f);
        for a in f.block_ids() {
            for b in f.block_ids() {
                if !reachable(&f, b) {
                    prop_assert!(!dom.dominates(a, b), "unreachable {b} cannot be dominated");
                    continue;
                }
                let got = dom.dominates(a, b);
                let want = dominates_oracle(&f, a, b);
                prop_assert_eq!(got, want, "dominates({}, {}) on\n{}", a, b, f);
            }
        }
    }

    /// The immediate dominator is a strict dominator, and every other
    /// strict dominator of `b` dominates idom(b).
    #[test]
    fn idom_is_closest_strict_dominator(
        n in 2usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 1..20)
    ) {
        let f = build_cfg(n, &edges);
        let dom = Dominators::compute(&f);
        for b in f.block_ids() {
            if let Some(idom) = dom.idom(b) {
                prop_assert!(dom.dominates(idom, b));
                prop_assert_ne!(idom, b);
                for a in f.block_ids() {
                    if a != b && dom.dominates(a, b) {
                        prop_assert!(
                            dom.dominates(a, idom),
                            "{} strictly dominates {} but not idom {}",
                            a, b, idom
                        );
                    }
                }
            }
        }
    }

    /// Liveness never reports a register live-in at the entry block
    /// unless it is genuinely used before definition (our generated CFGs
    /// define `c` before its use in every block).
    #[test]
    fn cbr_conditions_never_leak_liveness(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 1..16)
    ) {
        let f = build_cfg(n, &edges);
        let live = analysis::Liveness::compute(&f);
        let entry_in = &live.live_in[f.entry().index()];
        prop_assert_eq!(
            entry_in.count(), 0,
            "nothing should be live-in at entry: {}", f
        );
        let _ = Reg::gpr(0);
    }
}
