//! Full-suite semantic equivalence: for every workload kernel, the
//! observable checksum is bit-identical under every allocation strategy
//! and every CCM size — the master safety property of the reproduction.

use harness::{measure, Variant};
use sim::MachineConfig;

/// Unwraps a pipeline measurement, printing the structured error.
fn must(r: Result<harness::Measurement, harness::PipelineError>) -> harness::Measurement {
    r.unwrap_or_else(|e| panic!("measurement failed: {e}"))
}

/// Every kernel, every variant, 512-byte CCM.
#[test]
fn all_kernels_all_variants_agree_at_512() {
    let machine = MachineConfig::with_ccm(512);
    for k in suite::kernels() {
        let m = suite::build_optimized(&k);
        let base = must(measure(m.clone(), Variant::Baseline, &machine));
        assert!(base.checksum.is_finite(), "{}: non-finite checksum", k.name);
        for v in [
            Variant::PostPass,
            Variant::PostPassCallGraph,
            Variant::Integrated,
        ] {
            let r = must(measure(m.clone(), v, &machine));
            assert_eq!(
                r.checksum.to_bits(),
                base.checksum.to_bits(),
                "{}: {v:?} diverged",
                k.name
            );
            assert!(
                r.cycles <= base.cycles,
                "{}: {v:?} is slower ({} > {})",
                k.name,
                r.cycles,
                base.cycles
            );
        }
    }
}

/// A sample of kernels at other CCM sizes, including sizes small enough
/// to force the heavyweight-spill path.
#[test]
fn kernel_sample_agrees_across_ccm_sizes() {
    let names = ["fpppp", "radf5", "deseco", "zeroin", "urand", "vslv1xX"];
    for name in names {
        let k = suite::kernel(name).expect("kernel exists");
        let m = suite::build_optimized(&k);
        let base = must(measure(
            m.clone(),
            Variant::Baseline,
            &MachineConfig::with_ccm(1024),
        ));
        for ccm_size in [16, 128, 1024] {
            let machine = MachineConfig::with_ccm(ccm_size);
            for v in [Variant::PostPassCallGraph, Variant::Integrated] {
                let r = must(measure(m.clone(), v, &machine));
                assert_eq!(
                    r.checksum.to_bits(),
                    base.checksum.to_bits(),
                    "{name}: {v:?} diverged at ccm={ccm_size}"
                );
            }
        }
    }
}

/// Whole programs (multi-routine, shared CCM) stay correct under the
/// interprocedural allocator at both paper CCM sizes.
#[test]
fn programs_sample_agrees() {
    for pname in ["turb3d", "forsythe", "applu", "fftpackX"] {
        let p = suite::program(pname).expect("program exists");
        let m = suite::build_program(&p);
        let base = must(measure(
            m.clone(),
            Variant::Baseline,
            &MachineConfig::with_ccm(512),
        ));
        for ccm_size in [512u32, 1024] {
            let machine = MachineConfig::with_ccm(ccm_size);
            for v in [
                Variant::PostPass,
                Variant::PostPassCallGraph,
                Variant::Integrated,
            ] {
                let r = must(measure(m.clone(), v, &machine));
                assert_eq!(
                    r.checksum.to_bits(),
                    base.checksum.to_bits(),
                    "{pname}: {v:?} diverged at ccm={ccm_size}"
                );
                assert!(r.cycles <= base.cycles, "{pname}: {v:?} slower");
            }
        }
    }
}

/// The CCM simulator enforces its capacity: promoted code never touches
/// a byte at or beyond the configured size (checked by running with the
/// exact configured size — any overflow would trap).
#[test]
fn promotion_respects_ccm_capacity() {
    for name in ["fpppp", "twldrv", "jacld"] {
        let k = suite::kernel(name).expect("kernel exists");
        let m = suite::build_optimized(&k);
        for ccm_size in [64u32, 512] {
            // measure() panics on any trap, including CcmOutOfBounds.
            let machine = MachineConfig::with_ccm(ccm_size);
            let r = must(measure(m.clone(), Variant::PostPassCallGraph, &machine));
            assert!(r.checksum.is_finite());
        }
    }
}
