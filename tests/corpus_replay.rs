//! Replays every minimized fuzzer reproducer in `tests/corpus/` through
//! the full differential oracle. Each `.iloc` file in that directory is
//! a module that once exposed a bug (see its header comment for the
//! story); the fix landed, so every entry must now pass the oracle —
//! bit-identical checksums across all variants, a clean checker, and
//! `cycles <= baseline` — under both the default register file and the
//! squeezed `tiny(3)` configuration that reproduces spill pressure on
//! small modules. A failure here means the original bug (or a close
//! cousin) is back.

use regalloc::AllocConfig;

fn corpus_entries() -> Vec<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "iloc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    entries
}

#[test]
fn corpus_reproducers_pass_the_oracle() {
    for path in corpus_entries() {
        let text = std::fs::read_to_string(&path).unwrap();
        let m = iloc::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        m.verify()
            .unwrap_or_else(|e| panic!("{}: verify failed: {e:?}", path.display()));
        for alloc in [AllocConfig::default(), AllocConfig::tiny(3)] {
            let cfg = fuzz::OracleConfig {
                ccm_sizes: vec![16, 64, 256, 1024],
                alloc,
                ..Default::default()
            };
            if let Err(f) = fuzz::run_oracle(&m, &cfg) {
                panic!(
                    "{} (gpr_k={}): {} in {} at ccm {}: {}",
                    path.display(),
                    alloc.gpr_k,
                    f.kind.label(),
                    f.variant.label(),
                    f.ccm,
                    f.detail
                );
            }
        }
    }
}

/// The corpus entries must stay printable/parseable exactly — they are
/// the long-term archive format for fuzzer findings.
#[test]
fn corpus_reproducers_round_trip() {
    for path in corpus_entries() {
        let text = std::fs::read_to_string(&path).unwrap();
        let m = iloc::parse_module(&text).unwrap();
        let reparsed = iloc::parse_module(&m.to_string()).unwrap();
        assert_eq!(m, reparsed, "{} does not round-trip", path.display());
    }
}
