//! A random-program generator for property-based testing.
//!
//! Generates small, *always-valid, always-terminating* modules: a fixed
//! set of integer and float variables is initialized up front; statements
//! then mutate them through arithmetic, memory round-trips through a
//! scratch global, structured if/else diamonds, and counted loops with
//! positive trip counts. Every generated module passes the verifier, runs
//! without traps, and is deterministic — so any divergence between the
//! raw program and its optimized/allocated/promoted forms is a genuine
//! compiler bug.

use iloc::builder::FuncBuilder;
use iloc::{CmpKind, FBinKind, Global, IBinKind, Module, Op, Reg, RegClass};
use proptest::prelude::*;

/// A straight-line or structured statement over the variable pool.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `ivar[d] = ivar[a] OP ivar[b]` (division excluded).
    IBin(usize, usize, usize, u8),
    /// `ivar[d] = ivar[a] OP imm` (shift amounts kept small).
    IBinI(usize, usize, i64, u8),
    /// `fvar[d] = fvar[a] OP fvar[b]` (add/sub/mult only).
    FBin(usize, usize, usize, u8),
    /// `ivar[d] = cmp(ivar[a], ivar[b])`.
    ICmp(usize, usize, usize, u8),
    /// Store `ivar[a]` to the scratch global at slot `s`, reload into
    /// `ivar[d]`.
    IMemRoundTrip(usize, usize, u8),
    /// Store `fvar[a]` to the scratch global at slot `s`, reload into
    /// `fvar[d]`.
    FMemRoundTrip(usize, usize, u8),
    /// `fvar[d] = i2f(ivar[a])`.
    I2F(usize, usize),
    /// if (ivar[c] != 0) { then-stmts } else { else-stmts }.
    If(usize, Vec<Stmt>, Vec<Stmt>),
    /// A counted loop running `trip` iterations over its body.
    Loop(u8, Vec<Stmt>),
}

/// Number of integer variables in the pool.
pub const NI: usize = 6;
/// Number of float variables in the pool.
pub const NF: usize = 6;

fn leaf_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..NI, 0..NI, 0..NI, 0..7u8).prop_map(|(d, a, b, o)| Stmt::IBin(d, a, b, o)),
        (0..NI, 0..NI, -8i64..8, 0..7u8).prop_map(|(d, a, i, o)| Stmt::IBinI(d, a, i, o)),
        (0..NF, 0..NF, 0..NF, 0..3u8).prop_map(|(d, a, b, o)| Stmt::FBin(d, a, b, o)),
        (0..NI, 0..NI, 0..NI, 0..6u8).prop_map(|(d, a, b, o)| Stmt::ICmp(d, a, b, o)),
        (0..NI, 0..NI, 0..8u8).prop_map(|(d, a, s)| Stmt::IMemRoundTrip(d, a, s)),
        (0..NF, 0..NF, 0..8u8).prop_map(|(d, a, s)| Stmt::FMemRoundTrip(d, a, s)),
        (0..NF, 0..NI).prop_map(|(d, a)| Stmt::I2F(d, a)),
    ]
}

/// Strategy for a statement tree of bounded depth and size.
pub fn arb_stmts() -> impl Strategy<Value = Vec<Stmt>> {
    let leaf = leaf_stmt();
    let stmt = leaf.prop_recursive(2, 24, 6, |inner| {
        prop_oneof![
            (
                0..NI,
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (1..5u8, prop::collection::vec(inner, 1..4)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    });
    prop::collection::vec(stmt, 1..12)
}

fn ibin_kind(o: u8) -> IBinKind {
    [
        IBinKind::Add,
        IBinKind::Sub,
        IBinKind::Mult,
        IBinKind::And,
        IBinKind::Or,
        IBinKind::Xor,
        IBinKind::Shl,
    ][o as usize % 7]
}

fn fbin_kind(o: u8) -> FBinKind {
    [FBinKind::Add, FBinKind::Sub, FBinKind::Mult][o as usize % 3]
}

fn cmp_kind(o: u8) -> CmpKind {
    CmpKind::ALL[o as usize % 6]
}

fn emit_stmts(fb: &mut FuncBuilder, ivars: &[Reg], fvars: &[Reg], scratch: Reg, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::IBin(d, a, b, o) => {
                let kind = ibin_kind(*o);
                // Cap shift amounts so results stay architecture-defined.
                let rhs = if kind == IBinKind::Shl {
                    let masked = fb.vreg(RegClass::Gpr);
                    fb.emit(Op::IBinI {
                        kind: IBinKind::And,
                        lhs: ivars[*b],
                        imm: 7,
                        dst: masked,
                    });
                    masked
                } else {
                    ivars[*b]
                };
                fb.emit(Op::IBin {
                    kind,
                    lhs: ivars[*a],
                    rhs,
                    dst: ivars[*d],
                });
            }
            Stmt::IBinI(d, a, i, o) => {
                let kind = ibin_kind(*o);
                let imm = if kind == IBinKind::Shl {
                    i.rem_euclid(8)
                } else {
                    *i
                };
                fb.emit(Op::IBinI {
                    kind,
                    lhs: ivars[*a],
                    imm,
                    dst: ivars[*d],
                });
            }
            Stmt::FBin(d, a, b, o) => {
                fb.emit(Op::FBin {
                    kind: fbin_kind(*o),
                    lhs: fvars[*a],
                    rhs: fvars[*b],
                    dst: fvars[*d],
                });
            }
            Stmt::ICmp(d, a, b, o) => {
                fb.emit(Op::ICmp {
                    kind: cmp_kind(*o),
                    lhs: ivars[*a],
                    rhs: ivars[*b],
                    dst: ivars[*d],
                });
            }
            Stmt::IMemRoundTrip(d, a, slot) => {
                let off = (*slot as i64) * 8;
                fb.storeai(ivars[*a], scratch, off);
                let t = fb.loadai(scratch, off);
                fb.emit(Op::I2I {
                    src: t,
                    dst: ivars[*d],
                });
            }
            Stmt::FMemRoundTrip(d, a, slot) => {
                let off = 64 + (*slot as i64) * 8;
                fb.fstoreai(fvars[*a], scratch, off);
                let t = fb.floadai(scratch, off);
                fb.emit(Op::F2F {
                    src: t,
                    dst: fvars[*d],
                });
            }
            Stmt::I2F(d, a) => {
                let t = fb.i2f(ivars[*a]);
                fb.emit(Op::F2F {
                    src: t,
                    dst: fvars[*d],
                });
            }
            Stmt::If(c, then_s, else_s) => {
                let tb = fb.block(format!("t{}", fb.current().index()));
                let eb = fb.block(format!("e{}", fb.current().index()));
                let jb = fb.block(format!("j{}", fb.current().index()));
                fb.cbr(ivars[*c], tb, eb);
                fb.switch_to(tb);
                emit_stmts(fb, ivars, fvars, scratch, then_s);
                fb.jump(jb);
                fb.switch_to(eb);
                emit_stmts(fb, ivars, fvars, scratch, else_s);
                fb.jump(jb);
                fb.switch_to(jb);
            }
            Stmt::Loop(trip, body) => {
                fb.counted_loop(0, *trip as i64, 1, |fb, _| {
                    emit_stmts(fb, ivars, fvars, scratch, body);
                });
            }
        }
    }
}

/// Materializes a statement tree as a complete, verified module whose
/// `main` returns `(int_checksum, float_checksum)`.
pub fn build_module(stmts: &[Stmt]) -> Module {
    let mut fb = FuncBuilder::new("main");
    fb.set_ret_classes(&[RegClass::Gpr, RegClass::Fpr]);
    let scratch = fb.loadsym("scratch");
    let ivars: Vec<Reg> = (0..NI as i64).map(|i| fb.loadi(i * 3 + 1)).collect();
    let fvars: Vec<Reg> = (0..NF).map(|i| fb.loadf(i as f64 * 0.5 + 0.25)).collect();
    emit_stmts(&mut fb, &ivars, &fvars, scratch, stmts);
    // Checksums over the whole pool.
    let mut iacc = ivars[0];
    for v in &ivars[1..] {
        iacc = fb.add(iacc, *v);
    }
    let mut facc = fvars[0];
    for v in &fvars[1..] {
        facc = fb.fadd(facc, *v);
    }
    fb.ret(&[iacc, facc]);

    let mut m = Module::new();
    m.push_global(Global::zeroed("scratch", 64 + 64));
    m.push_function(fb.finish());
    m.verify().expect("generated module must verify");
    m
}

/// Runs a module and returns `(int checksum, float checksum bits)`.
pub fn run_checksum(m: &Module) -> (i64, u64) {
    let (v, _) = sim::run_module(m, sim::MachineConfig::with_ccm(64), "main")
        .expect("generated module must not trap");
    (v.ints[0], v.floats[0].to_bits())
}
