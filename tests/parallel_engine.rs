//! Parallel experiment engine invariants: deterministic results at any
//! `--jobs` value, name-joined Table 3 pairing, and NaN-free CSV output.

use harness::csv::{figure_csv, speedups_csv};
use harness::{improved_names, Measurement, SpeedupRow};

fn meas(cycles: u64, mem_cycles: u64) -> Measurement {
    Measurement {
        cycles,
        mem_cycles,
        metrics: sim::Metrics::default(),
        checksum: 1.0,
        spill_bytes: 64,
        spilled_ranges: 3,
        degraded: Vec::new(),
    }
}

fn row(name: &str, base: u64, pp: u64, cg: u64, integrated: u64) -> SpeedupRow {
    SpeedupRow {
        name: name.to_string(),
        baseline: meas(base, base / 2),
        postpass: meas(pp, pp / 2),
        postpass_cg: meas(cg, cg / 2),
        integrated: meas(integrated, integrated / 2),
    }
}

/// The bug the positional zip had: when the spilling set differs between
/// CCM sizes, rows must be joined by routine name, not by index.
#[test]
fn table3_pairing_survives_differing_spill_sets() {
    // At 512 B three routines spill; at 1024 B `beta` stops spilling, so
    // a positional zip would have compared gamma@1024 against beta@512.
    let r512 = vec![
        row("alpha", 1000, 900, 880, 890),
        row("beta", 2000, 1800, 1750, 1760),
        row("gamma", 3000, 2700, 2600, 2650),
    ];
    let r1024 = vec![
        row("alpha", 1000, 900, 880, 890),    // unchanged: not improved
        row("gamma", 3000, 2500, 2400, 2450), // faster best variant
    ];
    let improved = improved_names(&r512, &r1024).expect("pairing succeeds");
    assert_eq!(improved, vec!["gamma".to_string()]);

    // The old positional pairing would also have mispaired when the 1024
    // vector is longer; name-joining is symmetric.
    let improved = improved_names(&r1024, &r512).expect("pairing succeeds");
    assert_eq!(improved, Vec::<String>::new());
}

#[test]
fn table3_pairing_rejects_duplicate_names() {
    let dup = vec![row("alpha", 1000, 900, 880, 890), row("alpha", 10, 9, 8, 9)];
    let clean = vec![row("alpha", 1000, 900, 880, 890)];
    let err = improved_names(&dup, &clean).unwrap_err();
    assert!(err.contains("duplicate") && err.contains("alpha"), "{err}");
    let err = improved_names(&clean, &dup).unwrap_err();
    assert!(err.contains("duplicate") && err.contains("alpha"), "{err}");
}

/// Asserts every comma-separated field of `csv` past the first
/// `skip_cols` parses as a *finite* f64 (catches NaN/inf leaking into
/// the exported numbers).
fn assert_numeric_fields_finite(csv: &str, skip_cols: usize, what: &str) {
    for (ln, line) in csv.lines().enumerate().skip(1) {
        for (col, field) in line.split(',').enumerate().skip(skip_cols) {
            let v: f64 = field
                .parse()
                .unwrap_or_else(|_| panic!("{what} line {ln} col {col}: `{field}` is not numeric"));
            assert!(
                v.is_finite(),
                "{what} line {ln} col {col}: `{field}` is not finite"
            );
        }
    }
}

/// A zero-cycle baseline must yield defined ratios, not NaN/inf, all the
/// way into the CSV (`rel`/`rel_mem` clamp the denominator like
/// `rel_mem` always did).
#[test]
fn speedups_csv_is_nan_free_even_with_zero_baseline() {
    let rows = vec![
        row("normal", 1000, 900, 880, 890),
        row("degenerate", 0, 0, 0, 0),
    ];
    for r in &rows {
        for m in r.ccm_variants() {
            assert!(r.rel(m).is_finite(), "{}: rel not finite", r.name);
            assert!(r.rel_mem(m).is_finite(), "{}: rel_mem not finite", r.name);
        }
    }
    let csv = speedups_csv(&rows);
    assert_numeric_fields_finite(&csv, 1, "speedups_csv");
}

/// Real end-to-end determinism: the engine's rows at `jobs=4` must be
/// byte-identical to a forced `jobs=1` (serial) run, filtering and
/// ordering included. Also doubles as a NaN-free check on live output.
#[test]
fn speedup_rows_are_identical_at_any_job_count() {
    let serial = harness::speedup_rows_jobs(512, 1);
    let parallel = harness::speedup_rows_jobs(512, 4);
    let a = speedups_csv(&serial);
    let b = speedups_csv(&parallel);
    assert_eq!(a, b, "parallel speedup rows diverged from serial");
    assert_numeric_fields_finite(&a, 1, "speedups_csv(live)");
}

#[test]
fn figure_rows_are_identical_at_any_job_count() {
    let serial = harness::figure_jobs(512, 1);
    let parallel = harness::figure_jobs(512, 4);
    let a = figure_csv(&serial);
    let b = figure_csv(&parallel);
    assert_eq!(a, b, "parallel figure rows diverged from serial");
    assert_numeric_fields_finite(&a, 2, "figure_csv(live)");
}
