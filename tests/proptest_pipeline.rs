//! Property-based end-to-end tests: for arbitrary generated programs, the
//! observable results survive every stage of the compilation pipeline —
//! scalar optimization, register allocation under pressure, spill-memory
//! compaction, post-pass CCM promotion, and integrated CCM allocation.

mod common;

use common::{arb_stmts, build_module, run_checksum};
use proptest::prelude::*;
use regalloc::AllocConfig;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The scalar optimizer preserves program behavior.
    #[test]
    fn optimization_preserves_semantics(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut o = m.clone();
        opt::optimize_module(&mut o, &opt::OptOptions::default());
        o.verify().expect("optimized module verifies");
        prop_assert_eq!(run_checksum(&o), expected);
    }

    /// Register allocation with very few registers (forcing heavy
    /// spilling) preserves behavior, and leaves no virtual registers.
    #[test]
    fn allocation_under_pressure_preserves_semantics(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut a = m.clone();
        opt::optimize_module(&mut a, &opt::OptOptions::default());
        regalloc::allocate_module(&mut a, &AllocConfig::tiny(3));
        a.verify().expect("allocated module verifies");
        for f in &a.functions {
            prop_assert!(regalloc::no_virtual_regs(f));
        }
        prop_assert_eq!(run_checksum(&a), expected);
    }

    /// Spill-memory compaction never changes behavior.
    #[test]
    fn compaction_preserves_semantics(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut a = m.clone();
        regalloc::allocate_module(&mut a, &AllocConfig::tiny(3));
        ccm::compact_module(&mut a);
        a.verify().expect("compacted module verifies");
        prop_assert_eq!(run_checksum(&a), expected);
    }

    /// Post-pass CCM promotion (both conventions, tiny CCM included so
    /// the heavyweight path is exercised) preserves behavior.
    #[test]
    fn postpass_promotion_preserves_semantics(stmts in arb_stmts(), inter in any::<bool>(), ccm_size in prop_oneof![Just(8u32), Just(24), Just(64)]) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut a = m.clone();
        regalloc::allocate_module(&mut a, &AllocConfig::tiny(3));
        ccm::postpass_promote(&mut a, &ccm::PostpassConfig { ccm_size, interprocedural: inter });
        a.verify().expect("promoted module verifies");
        prop_assert_eq!(run_checksum(&a), expected);
    }

    /// The integrated CCM allocator preserves behavior.
    #[test]
    fn integrated_allocation_preserves_semantics(stmts in arb_stmts(), ccm_size in prop_oneof![Just(8u32), Just(24), Just(64)]) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut a = m.clone();
        ccm::allocate_module_integrated(&mut a, &AllocConfig::tiny(3), ccm_size);
        a.verify().expect("integrated module verifies");
        prop_assert_eq!(run_checksum(&a), expected);
    }

    /// Rematerializing allocation preserves behavior.
    #[test]
    fn remat_allocation_preserves_semantics(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut a = m.clone();
        opt::optimize_module(&mut a, &opt::OptOptions::default());
        regalloc::allocate_module(
            &mut a,
            &AllocConfig { rematerialize: true, ..AllocConfig::tiny(3) },
        );
        a.verify().expect("allocated module verifies");
        prop_assert_eq!(run_checksum(&a), expected);
    }

    /// SSA round-trip alone (construction then destruction) preserves
    /// behavior and leaves strict SSA in between.
    #[test]
    fn ssa_round_trip_preserves_semantics(stmts in arb_stmts()) {
        let m = build_module(&stmts);
        let expected = run_checksum(&m);
        let mut s = m.clone();
        for f in &mut s.functions {
            analysis::to_ssa(f);
            analysis::check_single_def(f).expect("strict SSA");
            analysis::from_ssa(f);
        }
        s.verify().expect("round-tripped module verifies");
        prop_assert_eq!(run_checksum(&s), expected);
    }

    /// The post-allocation checker never reports an error on honest
    /// pipeline output: every variant, at both paper CCM sizes, yields a
    /// module free of `Severity::Error` diagnostics. (Warnings such as a
    /// dead spill store are legal for unoptimized spill code.)
    #[test]
    fn checker_never_fires_on_honest_output(stmts in arb_stmts(), ccm_size in prop_oneof![Just(512u32), Just(1024)]) {
        let m = build_module(&stmts);
        let alloc = AllocConfig::tiny(3);
        let cfg = checker::CheckerConfig::with_alloc(ccm_size, alloc);

        // Baseline: plain Chaitin-Briggs.
        let mut base = m.clone();
        regalloc::allocate_module(&mut base, &alloc);
        // Post-pass promotion, without and with call-graph information.
        let mut pp = base.clone();
        ccm::postpass_promote(&mut pp, &ccm::PostpassConfig { ccm_size, interprocedural: false });
        let mut ppcg = base.clone();
        ccm::postpass_promote(&mut ppcg, &ccm::PostpassConfig { ccm_size, interprocedural: true });
        // Integrated CCM allocation.
        let mut integ = m.clone();
        ccm::allocate_module_integrated(&mut integ, &alloc, ccm_size);

        for (label, module) in [
            ("baseline", &base),
            ("postpass", &pp),
            ("postpass-cg", &ppcg),
            ("integrated", &integ),
        ] {
            let diags = checker::check_module(module, &cfg);
            prop_assert!(
                !checker::has_errors(&diags),
                "{label} @ {ccm_size}B:\n{}",
                checker::render_text(&diags)
            );
        }
    }

    /// CCM promotion never increases cycle counts, and the promoted
    /// program never touches main memory more often than the baseline.
    #[test]
    fn promotion_is_never_a_pessimization(stmts in arb_stmts()) {
        let mut a = build_module(&stmts);
        regalloc::allocate_module(&mut a, &AllocConfig::tiny(3));
        let mut p = a.clone();
        ccm::postpass_promote(&mut p, &ccm::PostpassConfig { ccm_size: 64, interprocedural: true });
        let cfg = sim::MachineConfig::with_ccm(64);
        let (_, mb) = sim::run_module(&a, cfg.clone(), "main").expect("baseline runs");
        let (_, mp) = sim::run_module(&p, cfg, "main").expect("promoted runs");
        prop_assert!(mp.cycles <= mb.cycles);
        prop_assert!(mp.main_mem_ops <= mb.main_mem_ops);
        prop_assert_eq!(mp.instrs, mb.instrs, "post-pass must not add instructions");
    }
}
