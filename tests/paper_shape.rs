//! Shape assertions tying the implementation to the paper's published
//! results: these tests re-run (reduced versions of) the experiments and
//! assert the qualitative structure the paper reports, so a regression
//! that silently flips a conclusion fails the build.

use harness::{measure, Variant};
use sim::MachineConfig;

/// Unwraps a pipeline measurement, printing the structured error.
fn must(r: Result<harness::Measurement, harness::PipelineError>) -> harness::Measurement {
    r.unwrap_or_else(|e| panic!("measurement failed: {e}"))
}

/// Table 1 shape: the four monolithic routines the paper names as
/// "required more than 1000 bytes and could not be compacted" behave
/// exactly that way here, and every other ratio is sane.
#[test]
fn table1_shape_monoliths_do_not_compact() {
    let rows = harness::table1();
    let monoliths = ["paroi", "inisla", "energyx", "pdiagX"];
    for name in monoliths {
        let r = rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("{name} must spill"));
        assert!(
            r.before > 1000,
            "{name}: expected > 1000 bytes, got {}",
            r.before
        );
        assert_eq!(r.after, r.before, "{name}: must not compact");
    }
    // And they are the *only* non-compacting routines above 1000 bytes.
    for r in &rows {
        if r.after == r.before && r.before > 1000 {
            assert!(
                monoliths.contains(&r.name.as_str()),
                "unexpected non-compacting large routine {}",
                r.name
            );
        }
    }
    // Compaction never grows memory, and big spillers compact hardest.
    for r in &rows {
        assert!(r.after <= r.before);
    }
    let fpppp = rows.iter().find(|r| r.name == "fpppp").expect("fpppp row");
    assert!(fpppp.ratio() < 0.2, "fpppp must compact aggressively");
}

/// Figure 3 shape on a program sample: the interprocedural post-pass is
/// never worse than the intraprocedural one or the integrated allocator,
/// and call-heavy programs separate the variants.
#[test]
fn figure_shape_interprocedural_dominates() {
    let machine = MachineConfig::with_ccm(512);
    let mut any_separation = false;
    for pname in ["turb3d", "forsythe", "spice"] {
        let p = suite::program(pname).expect("program exists");
        let m = suite::build_program(&p);
        let base = must(measure(m.clone(), Variant::Baseline, &machine));
        let pp = must(measure(m.clone(), Variant::PostPass, &machine));
        let cg = must(measure(m.clone(), Variant::PostPassCallGraph, &machine));
        let ig = must(measure(m, Variant::Integrated, &machine));
        assert!(cg.cycles <= pp.cycles, "{pname}: call-graph version worse");
        assert!(cg.cycles <= ig.cycles, "{pname}: call-graph version worse");
        assert!(cg.cycles < base.cycles, "{pname}: must improve");
        if cg.cycles < pp.cycles {
            any_separation = true;
        }
    }
    assert!(
        any_separation,
        "call-heavy programs must separate the interprocedural variant"
    );
}

/// Growing the CCM can never make any variant slower (Table 3's implicit
/// monotonicity).
#[test]
fn bigger_ccm_is_monotone() {
    for name in ["fpppp", "deseco", "radf5"] {
        let k = suite::kernel(name).expect("kernel exists");
        let m = suite::build_optimized(&k);
        let mut prev = u64::MAX;
        for ccm in [64u32, 256, 1024] {
            let r = must(measure(
                m.clone(),
                Variant::PostPassCallGraph,
                &MachineConfig::with_ccm(ccm),
            ));
            assert!(
                r.cycles <= prev,
                "{name}: cycles increased when CCM grew to {ccm}"
            );
            prev = r.cycles;
        }
    }
}

/// Allocated suite kernels respect the machine's register file bounds —
/// the paper's 32+32 register model is actually enforced, not assumed.
#[test]
fn allocated_kernels_respect_register_bounds() {
    let cfg = regalloc::AllocConfig::default();
    for name in ["fpppp", "radf5", "urand", "decomp", "zeroin", "parmvrX"] {
        let k = suite::kernel(name).expect("kernel exists");
        let mut m = suite::build_optimized(&k);
        regalloc::allocate_module(&mut m, &cfg);
        for f in &m.functions {
            regalloc::check_register_bounds(f, &cfg)
                .unwrap_or_else(|r| panic!("{name}/{}: register {r} out of bounds", f.name));
        }
    }
}
