#![warn(missing_docs)]
//! Deterministic fault injection for the compile-and-measure pipeline.
//!
//! Error-handling code that is never executed is broken code waiting to
//! be discovered in production. This crate turns the pipeline's failure
//! paths into a *tested surface*: pipeline, allocator, simulator, cache,
//! and engine code compile in named **fault points** (via
//! [`faultpoint!`]), all of which are inert until a test or
//! `repro --inject-sweep` **arms** exactly one of them. An armed point
//! makes its site fail in a site-specific way — return its structured
//! error, panic, exhaust the simulation budget, corrupt a cache entry —
//! and the caller then asserts that the run *survives* with exactly the
//! expected structured failure.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost disarmed.** [`should_fire`] is a single relaxed atomic
//!    load on the fast path; the suite and benchmarks pay one branch.
//! 2. **Deterministic.** Arming is explicit and global; a point either
//!    fires on every hit ([`arm`]) or on exactly one hit ([`arm_once`],
//!    serialized through a mutex so concurrent hitters cannot both
//!    fire). No randomness, no time dependence — a seeded sweep
//!    chooses *which* point and *which* hit, never a coin flip.
//! 3. **Closed registry.** Every legal name is listed in [`REGISTRY`]
//!    with its site and expected failure; arming an unknown name is an
//!    error. The sweep walks the registry, so a registered point whose
//!    site was deleted shows up as "never fired" — the registry cannot
//!    silently rot.
//!
//! The crate is dependency-free and leaf-level: `sim`, `ccm`, `checker`,
//! `exec`, and `harness` all depend on it, never the reverse.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How an armed point decides whether a given hit fires.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Fire on every hit while armed.
    Always,
    /// Skip the first `skip` hits, fire on the next one, then go dormant
    /// (exactly one fire per arming).
    Once {
        /// Hits to let pass unharmed before the single fire.
        skip: u64,
    },
}

/// One entry of the fault-point registry.
#[derive(Copy, Clone, Debug)]
pub struct FaultPoint {
    /// Name used by [`arm`] and [`faultpoint!`].
    pub name: &'static str,
    /// Where the point is compiled in.
    pub site: &'static str,
    /// What the site does when the point fires.
    pub effect: &'static str,
    /// The structured failure (or event) the run must surface.
    pub expect: &'static str,
}

/// Every fault point compiled into the workspace. `repro --inject-sweep`
/// fires each of these one at a time and asserts the expected outcome.
pub const REGISTRY: &[FaultPoint] = &[
    FaultPoint {
        name: "alloc.ccm_coloring",
        site: "ccm::postpass::promote_function / ccm::integrated::allocate_function_integrated",
        effect: "CCM slot coloring fails for one function",
        expect: "degradation event: the function falls back to heavyweight spills; \
                 outputs byte-identical; no error",
    },
    FaultPoint {
        name: "alloc.panic",
        site: "ccm::postpass_promote / ccm::allocate_module_integrated entry",
        effect: "the CCM allocator panics",
        expect: "PipelineError stage=alloc containing `injected allocator panic`",
    },
    FaultPoint {
        name: "checker.forced_error",
        site: "checker::check_module",
        effect: "a synthetic error diagnostic is appended",
        expect: "PipelineError stage=checker containing `injected checker error`",
    },
    FaultPoint {
        name: "sim.budget",
        site: "sim::Machine::run step loop",
        effect: "the instruction budget reads as exhausted",
        expect: "PipelineError stage=sim containing `step limit`",
    },
    FaultPoint {
        name: "sim.unknown_global",
        site: "sim::Machine::run entry",
        effect: "the entry function resolves a global that does not exist",
        expect: "PipelineError stage=sim containing `unknown global`",
    },
    FaultPoint {
        name: "cache.corrupt_measurement",
        site: "harness::cache::measure_unit insert",
        effect: "the stored measurement's bytes are flipped after fingerprinting",
        expect: "PipelineError stage=cache containing `corrupt` on the next hit",
    },
    FaultPoint {
        name: "exec.worker_panic",
        site: "exec::queue item execution",
        effect: "the worker panics before running its item",
        expect: "ItemFailure / PipelineError stage=exec containing `injected worker panic`",
    },
];

/// Looks up a registry entry by name.
pub fn point(name: &str) -> Option<&'static FaultPoint> {
    REGISTRY.iter().find(|p| p.name == name)
}

struct Arming {
    name: &'static str,
    mode: Mode,
    hits: u64,
    fires: u64,
}

/// Fast-path gate: false whenever nothing is armed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<Option<Arming>> {
    static STATE: Mutex<Option<Arming>> = Mutex::new(None);
    &STATE
}

fn lock_state() -> MutexGuard<'static, Option<Arming>> {
    // A panic *while armed* is an expected event (that is what panic
    // faults are for); recover rather than poisoning every later test.
    state().lock().unwrap_or_else(|p| p.into_inner())
}

fn arm_with(name: &str, mode: Mode) -> Result<(), String> {
    let p = point(name).ok_or_else(|| {
        format!(
            "unknown fault point `{name}` (known: {})",
            REGISTRY
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    *lock_state() = Some(Arming {
        name: p.name,
        mode,
        hits: 0,
        fires: 0,
    });
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Arms `name` to fire on every hit until [`disarm`].
///
/// # Errors
///
/// Returns a message listing the legal names if `name` is not in
/// [`REGISTRY`].
pub fn arm(name: &str) -> Result<(), String> {
    arm_with(name, Mode::Always)
}

/// Arms `name` to fire exactly once, after letting `skip` hits pass.
/// The deterministic way to target "the (skip+1)-th function" or "the
/// (skip+1)-th measurement" in a serial run.
///
/// # Errors
///
/// Same as [`arm`].
pub fn arm_once(name: &str, skip: u64) -> Result<(), String> {
    arm_with(name, Mode::Once { skip })
}

/// Disarms whatever is armed and returns how often it fired.
pub fn disarm() -> u64 {
    let mut g = lock_state();
    ACTIVE.store(false, Ordering::SeqCst);
    g.take().map(|a| a.fires).unwrap_or(0)
}

/// Whether *any* fault point is armed: one relaxed atomic load, no
/// lock. Hot loops that would otherwise hit a [`faultpoint!`] per
/// iteration can poll this at a coarser boundary and fall back to
/// per-iteration checks only while armed, keeping hit counts exact.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The armed point's name, if any.
pub fn armed() -> Option<&'static str> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    lock_state().as_ref().map(|a| a.name)
}

/// How often the armed point has fired so far (0 when disarmed).
pub fn fire_count() -> u64 {
    if !ACTIVE.load(Ordering::Relaxed) {
        return 0;
    }
    lock_state().as_ref().map(|a| a.fires).unwrap_or(0)
}

/// Called by [`faultpoint!`] at every site hit: true when the site must
/// fail now. Disarmed cost is one relaxed atomic load.
pub fn should_fire(name: &str) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let mut g = lock_state();
    let Some(a) = g.as_mut() else { return false };
    if a.name != name {
        return false;
    }
    let hit = a.hits;
    a.hits += 1;
    let fire = match a.mode {
        Mode::Always => true,
        Mode::Once { skip } => hit == skip,
    };
    if fire {
        a.fires += 1;
    }
    fire
}

/// Declares a fault point: expands to a `bool` that is `false` unless
/// this exact name is armed and due. Sites branch on it:
///
/// ```
/// fn color_function() -> Result<(), String> {
///     if inject::faultpoint!("alloc.ccm_coloring") {
///         return Err("injected coloring failure".into());
///     }
///     Ok(())
/// }
/// assert!(color_function().is_ok()); // disarmed: inert
/// ```
#[macro_export]
macro_rules! faultpoint {
    ($name:literal) => {
        $crate::should_fire($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming is process-global; tests in this binary serialize on it.
    fn guard() -> MutexGuard<'static, ()> {
        static G: Mutex<()> = Mutex::new(());
        G.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = guard();
        disarm();
        assert!(!should_fire("sim.budget"));
        assert_eq!(fire_count(), 0);
        assert_eq!(armed(), None);
    }

    #[test]
    fn always_mode_fires_every_hit_for_its_name_only() {
        let _g = guard();
        arm("sim.budget").unwrap();
        assert!(should_fire("sim.budget"));
        assert!(should_fire("sim.budget"));
        assert!(!should_fire("alloc.panic"), "other names stay inert");
        assert_eq!(fire_count(), 2);
        assert_eq!(armed(), Some("sim.budget"));
        assert_eq!(disarm(), 2);
        assert!(!should_fire("sim.budget"), "disarm is immediate");
    }

    #[test]
    fn once_mode_skips_then_fires_exactly_once() {
        let _g = guard();
        arm_once("alloc.ccm_coloring", 2).unwrap();
        let fired: Vec<bool> = (0..6).map(|_| should_fire("alloc.ccm_coloring")).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(disarm(), 1);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let _g = guard();
        let err = arm("no.such.point").unwrap_err();
        assert!(err.contains("no.such.point") && err.contains("sim.budget"));
        assert_eq!(armed(), None);
    }

    #[test]
    fn registry_names_are_unique_and_documented() {
        for (i, p) in REGISTRY.iter().enumerate() {
            assert!(!p.site.is_empty() && !p.effect.is_empty() && !p.expect.is_empty());
            for q in &REGISTRY[i + 1..] {
                assert_ne!(p.name, q.name, "duplicate fault point");
            }
        }
        assert!(point("sim.budget").is_some());
        assert!(point("nope").is_none());
    }
}
