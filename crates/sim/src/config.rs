//! Machine configuration: the paper's abstract machine.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::cache::CacheConfig;

/// Which execution engine a [`Machine`](crate::Machine) run uses.
///
/// Both engines implement the same machine model and are observationally
/// identical — same return values, same [`Metrics`](crate::Metrics), and
/// the same [`SimError`](crate::SimError) on every trap, including
/// step-limit timing. `Decoded` is the default: it pre-lowers the module
/// once into a flat instruction array (absolute-PC branches, resolved
/// globals and callees) and dispatches without per-step hashing or block
/// chasing. `Ast` is the original tree-walking interpreter, kept as the
/// reference implementation for differential testing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Pre-decoded flat-PC execution (fast path, default).
    Decoded,
    /// Direct AST interpretation (reference implementation).
    Ast,
}

impl Engine {
    /// Parses the `--engine` flag spelling.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "decoded" => Some(Engine::Decoded),
            "ast" => Some(Engine::Ast),
            _ => None,
        }
    }

    /// The flag spelling (`"decoded"` / `"ast"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Decoded => "decoded",
            Engine::Ast => "ast",
        }
    }
}

static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default engine picked up by every subsequently
/// constructed [`MachineConfig`]. Binaries call this once from
/// `--engine NAME`; explicit `engine` fields still win.
pub fn set_default_engine(e: Engine) {
    ENGINE_OVERRIDE.store(
        match e {
            Engine::Decoded => 0,
            Engine::Ast => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide default engine.
pub fn default_engine() -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Engine::Ast,
        _ => Engine::Decoded,
    }
}

/// The out-of-the-box instruction budget: far above any suite kernel,
/// low enough that a generated infinite loop fails one measurement in
/// bounded time instead of hanging a campaign forever.
pub const DEFAULT_MAX_STEPS: u64 = 2_000_000_000;

static MAX_STEPS_OVERRIDE: AtomicU64 = AtomicU64::new(DEFAULT_MAX_STEPS);

/// Sets the process-wide default instruction budget picked up by every
/// subsequently constructed [`MachineConfig`]. Binaries call this once
/// from `--sim-budget N`; explicit `max_steps` fields still win.
pub fn set_default_max_steps(n: u64) {
    MAX_STEPS_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The current process-wide default instruction budget.
pub fn default_max_steps() -> u64 {
    MAX_STEPS_OVERRIDE.load(Ordering::Relaxed)
}

/// Simulator parameters.
///
/// Defaults reproduce the paper's model (§4): single issue, memory
/// operations cost two cycles, all other instructions — *including CCM
/// accesses* — cost one cycle.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Cycles per main-memory operation when no cache model is active.
    pub mem_latency: u64,
    /// Cycles per CCM operation (`spill`/`restore`).
    pub ccm_latency: u64,
    /// Size of the compiler-controlled memory in bytes. Accesses beyond
    /// this trap, modeling the fixed-size on-chip resource.
    pub ccm_size: u32,
    /// Main-memory size in bytes (globals at the bottom, stack at the top).
    pub mem_size: usize,
    /// Abort execution after this many instructions (runaway guard).
    pub max_steps: u64,
    /// Optional cache model for main memory (§4.3 ablations). When
    /// present, main-memory latency comes from the cache instead of
    /// `mem_latency`.
    pub cache: Option<CacheConfig>,
    /// Pipelined-load model (the scheduling study): when `Some(d)`, a
    /// main-memory load issues in one cycle and its destination register
    /// becomes ready `d` cycles later; an instruction touching a
    /// not-yet-ready register stalls. Stores post in one cycle. `None`
    /// (default) reproduces the paper's blocking two-cycle memory.
    pub load_delay: Option<u64>,
    /// Which execution engine to use. Purely a performance choice — both
    /// engines are observationally identical (see [`Engine`]).
    pub engine: Engine,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_latency: 2,
            ccm_latency: 1,
            ccm_size: 1024,
            mem_size: 8 << 20,
            max_steps: default_max_steps(),
            cache: None,
            load_delay: None,
            engine: default_engine(),
        }
    }
}

impl MachineConfig {
    /// The paper's model with a specific CCM size (512 or 1024 bytes in
    /// the evaluation).
    pub fn with_ccm(ccm_size: u32) -> MachineConfig {
        MachineConfig {
            ccm_size,
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MachineConfig::default();
        assert_eq!(c.mem_latency, 2);
        assert_eq!(c.ccm_latency, 1);
        assert!(c.cache.is_none());
        assert_eq!(c.engine, Engine::Decoded);
    }

    #[test]
    fn engine_flag_roundtrip() {
        for e in [Engine::Decoded, Engine::Ast] {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
        assert_eq!(Engine::parse("turbo"), None);
    }
}
