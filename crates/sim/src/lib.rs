#![warn(missing_docs)]
//! A cycle-accurate simulator for the ILOC-like IR.
//!
//! Implements the paper's evaluation machine (§4): single issue, 64
//! registers, two-cycle main-memory operations, one-cycle everything else
//! including CCM `spill`/`restore`. The CCM is a disjoint address space.
//! Optional cache / write-buffer / victim-cache models support the §4.3
//! "more complex execution models" ablations, and an optional
//! pipelined-load model supports the scheduling study.
//!
//! # Example
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use iloc::RegClass;
//!
//! let mut fb = FuncBuilder::new("main");
//! fb.set_ret_classes(&[RegClass::Gpr]);
//! let a = fb.loadi(40);
//! let b = fb.loadi(2);
//! let c = fb.add(a, b);
//! fb.ret(&[c]);
//! let mut m = iloc::Module::new();
//! m.push_function(fb.finish());
//!
//! let (vals, metrics) =
//!     sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
//! assert_eq!(vals.ints, vec![42]);
//! assert_eq!(metrics.cycles, 4); // four single-cycle instructions
//! ```

pub mod cache;
pub mod config;
pub mod decode;
pub mod machine;
pub mod metrics;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::{
    default_engine, default_max_steps, set_default_engine, set_default_max_steps, Engine,
    MachineConfig, DEFAULT_MAX_STEPS,
};
pub use decode::DecodedModule;
pub use machine::{run_module, Machine, RetValues, SimError};
pub use metrics::Metrics;
