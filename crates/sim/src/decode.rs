//! The pre-decoded execution engine ([`Engine::Decoded`]).
//!
//! [`DecodedModule::decode`] lowers a [`Module`] **once** into a single
//! dense instruction array: blocks flattened in layout order, branch
//! targets resolved to absolute PC indices, `loadSym` globals resolved
//! to baked-in addresses, call targets resolved to function indices with
//! pre-materialized argument/return-register pairings, and register
//! operands pre-split into raw `u32` indices. `exec_decoded` then
//! dispatches on a flat PC with no per-step hashing, cloning, or
//! `(block, idx)` chasing — the hot loop touches only the flat code
//! array and the current frame's register files.
//!
//! **Equivalence contract.** The decoded engine is observationally
//! identical to the AST interpreter in `machine.rs`: same
//! [`RetValues`], same [`Metrics`] (cycles, stalls, spill counts,
//! memory traffic, cache statistics), and the same [`SimError`] on
//! every trap *at the same instruction count* — including step-limit
//! timing. Conditions the AST engine discovers at run time (an unknown
//! global or callee, an executed φ, a block without a terminator) are
//! decoded into explicit trap pseudo-ops at the PC where the AST engine
//! would fault, so a module that never executes its bad instruction
//! behaves identically under both engines. The contract is enforced by
//! the differential fuzz oracle's dual-engine mode and by
//! `tests/engine_equivalence.rs`.
//!
//! **Segment batching.** Decode additionally precomputes, for every PC,
//! the fixed accounting of the straight-line *segment* starting there
//! (see [`Seg`]): instruction count, summed 1-cycle op costs, and spill
//! tags up to the next branch, call, return, or trap pseudo-op. The
//! dispatch loop credits a whole segment in one batch and executes its
//! instructions with no per-step bookkeeping, falling back to exact
//! per-instruction stepping — identical to the AST loop body — for any
//! segment where the step budget could be crossed, a fault point is
//! armed, or the pipelined-load model is on. The batch is
//! observationally invisible: on a successful run every entered segment
//! completes, so all metric totals are exact, and a trapped run
//! surfaces the identical [`SimError`] while its partial [`Metrics`]
//! are unspecified (no caller observes metrics after a trap; the AST
//! engine's partial totals are equally arbitrary mid-flight).
//!
//! [`Engine::Decoded`]: crate::Engine::Decoded

use std::collections::HashMap;

use iloc::{CmpKind, FBinKind, IBinKind, Module, Op, Reg, RegClass, SpillKind};

use crate::machine::{cmp, fcmp, ibin, Machine, RetValues, SimError};

/// A register operand that kept its class through decoding (return
/// values, call returns, φ scans) — everything else pre-splits into a
/// raw index because the opcode fixes the class.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DReg {
    /// `true` = GPR, `false` = FPR.
    pub gpr: bool,
    /// Raw index into the per-frame register file.
    pub idx: u32,
}

impl DReg {
    fn of(r: Reg) -> DReg {
        DReg {
            gpr: r.class() == RegClass::Gpr,
            idx: r.index(),
        }
    }
}

/// A decoded call site: callee resolved to a function index, argument
/// bindings pre-paired (k-th GPR argument → k-th GPR parameter, per the
/// AST engine's binding rule), return registers pre-materialized.
#[derive(Debug)]
pub(crate) struct DCall {
    /// Index into [`DecodedModule::funcs`].
    pub callee: u32,
    /// `(caller GPR source, callee GPR parameter)` pairs.
    pub gpr_args: Box<[(u32, u32)]>,
    /// `(caller FPR source, callee FPR parameter)` pairs.
    pub fpr_args: Box<[(u32, u32)]>,
    /// Caller registers receiving return values, in `rets` order.
    pub rets: Box<[DReg]>,
}

/// Per-function metadata the flat code needs at call boundaries.
#[derive(Debug)]
pub(crate) struct FuncMeta {
    /// Absolute PC of the function's entry block.
    pub entry_pc: u32,
    /// GPR file length (max index + 1).
    pub gpr_len: u32,
    /// FPR file length (max index + 1).
    pub fpr_len: u32,
    /// Activation-record size in bytes (pre-aligned by the frame).
    pub frame_size: i64,
}

/// Spill provenance, packed to a byte for the flat code array.
pub(crate) const SPILL_NONE: u8 = 0;
pub(crate) const SPILL_STORE: u8 = 1;
pub(crate) const SPILL_RESTORE: u8 = 2;

/// A decoded operation. Register fields are raw indices (class implied
/// by the opcode), branch targets are absolute PCs into the module-wide
/// flat code array, and symbols/callees are resolved.
#[derive(Debug)]
pub(crate) enum DOp {
    /// `loadI` — integer constant.
    LoadI { imm: i64, dst: u32 },
    /// `loadF` — float constant.
    LoadF { imm: f64, dst: u32 },
    /// `loadSym` with the global's address baked in at decode time.
    LoadAddr { addr: i64, dst: u32 },
    /// Integer three-address arithmetic.
    IBin {
        kind: IBinKind,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Integer register-immediate arithmetic.
    IBinI {
        kind: IBinKind,
        lhs: u32,
        imm: i64,
        dst: u32,
    },
    /// Float three-address arithmetic.
    FBin {
        kind: FBinKind,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Integer compare → GPR 0/1.
    ICmp {
        kind: CmpKind,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Float compare → GPR 0/1.
    FCmp {
        kind: CmpKind,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// GPR copy.
    I2I { src: u32, dst: u32 },
    /// FPR copy.
    F2F { src: u32, dst: u32 },
    /// GPR → FPR conversion.
    I2F { src: u32, dst: u32 },
    /// FPR → GPR truncation.
    F2I { src: u32, dst: u32 },
    /// Integer main-memory load (`load` folded with `loadAI`, `off=0`).
    Load { addr: u32, off: i64, dst: u32 },
    /// Float main-memory load.
    FLoad { addr: u32, off: i64, dst: u32 },
    /// Integer main-memory store.
    Store { val: u32, addr: u32, off: i64 },
    /// Float main-memory store.
    FStore { val: u32, addr: u32, off: i64 },
    /// Integer CCM spill.
    CcmStore { val: u32, off: u32 },
    /// Integer CCM restore.
    CcmLoad { off: u32, dst: u32 },
    /// Float CCM spill.
    CcmFStore { val: u32, off: u32 },
    /// Float CCM restore.
    CcmFLoad { off: u32, dst: u32 },
    /// Unconditional branch to an absolute PC.
    Jump { target: u32 },
    /// Conditional branch to absolute PCs.
    Cbr {
        cond: u32,
        taken: u32,
        not_taken: u32,
    },
    /// Resolved call; index into [`DecodedModule::calls`].
    Call { call: u32 },
    /// Return; index into [`DecodedModule::reg_lists`] for the value
    /// registers (classes preserved, order significant).
    Ret { vals: u32 },
    /// `loadSym` of an undeclared global: traps as
    /// [`SimError::UnknownGlobal`] when *executed*, exactly where the
    /// AST engine does. `dst` keeps the pipelined-model def scan exact.
    TrapUnknownGlobal { sym: u32, dst: u32 },
    /// Call of an undeclared function: traps as
    /// [`SimError::UnknownFunction`] when executed. `regs` indexes the
    /// arg/ret scan list for the pipelined model.
    TrapUnknownFunction { sym: u32, regs: u32 },
    /// An executed φ: traps as [`SimError::PhiEncountered`]. `regs`
    /// indexes the φ's use/def scan list.
    TrapPhi { regs: u32 },
    /// Appended to any block whose last instruction is not a
    /// terminator: traps as [`SimError::MissingTerminator`] exactly
    /// where the AST engine's instruction fetch fails.
    TrapMissingTerminator,
    /// No operation.
    Nop,
}

/// A decoded instruction: operation plus packed spill tag.
#[derive(Debug)]
pub(crate) struct DInstr {
    pub op: DOp,
    pub spill: u8,
}

/// Precomputed accounting for the straight-line *segment* starting at a
/// PC: every instruction from that PC up to and including the next
/// control transfer (branch, call, return, or trap pseudo-op). Because
/// a segment has no internal control flow, the interpreter can credit
/// its entire fixed accounting — instruction count, 1-cycle op costs,
/// spill tags — in one batch at segment entry and then dispatch the
/// instructions with no per-step bookkeeping at all. Dynamic costs
/// (memory/CCM latencies, cache statistics, `calls`) stay in the arms.
///
/// Segments end at calls (not just block terminators) so that at every
/// segment entry `Metrics::instrs` is *exact*: a pre-credited segment
/// either runs to its end before the next entry or the whole execution
/// ends in a trap (and post-trap metrics are unobservable — see the
/// module docs). That exactness is what lets the step-limit gate
/// (`instrs + len > max_steps` → precise path) reproduce the AST
/// engine's per-instruction `StepLimit` timing bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Seg {
    /// Instructions in the segment, trap pads included.
    pub len: u32,
    /// Summed fixed 1-cycle costs (memory ops contribute 0 here).
    pub cycles: u32,
    /// Spill-store tags in the segment.
    pub stores: u32,
    /// Spill-restore tags in the segment.
    pub restores: u32,
}

/// Whether `op` ends a segment: control leaves the straight line (or
/// the program ends in a trap) after it executes.
fn ends_segment(op: &DOp) -> bool {
    matches!(
        op,
        DOp::Jump { .. }
            | DOp::Cbr { .. }
            | DOp::Call { .. }
            | DOp::Ret { .. }
            | DOp::TrapUnknownGlobal { .. }
            | DOp::TrapUnknownFunction { .. }
            | DOp::TrapPhi { .. }
            | DOp::TrapMissingTerminator
    )
}

/// The fixed cycle cost the AST engine charges for `op` itself,
/// excluding dynamic memory/CCM latencies (charged in the arms).
fn fixed_cycles(op: &DOp) -> u32 {
    match op {
        DOp::Load { .. }
        | DOp::FLoad { .. }
        | DOp::Store { .. }
        | DOp::FStore { .. }
        | DOp::CcmStore { .. }
        | DOp::CcmLoad { .. }
        | DOp::CcmFStore { .. }
        | DOp::CcmFLoad { .. }
        | DOp::TrapPhi { .. }
        | DOp::TrapMissingTerminator => 0,
        _ => 1,
    }
}

/// The one-time lowering of a [`Module`] for flat-PC dispatch.
///
/// Built by [`DecodedModule::decode`]; owned (and cached across runs) by
/// [`Machine`]. Decoding never fails: unresolvable constructs become
/// trap pseudo-ops that fault at execution time, preserving the AST
/// engine's lazy-error semantics.
#[derive(Debug)]
pub struct DecodedModule {
    pub(crate) code: Vec<DInstr>,
    pub(crate) funcs: Vec<FuncMeta>,
    pub(crate) func_by_name: HashMap<String, u32>,
    pub(crate) calls: Vec<DCall>,
    /// Class-preserving register lists (return values, φ scans,
    /// unknown-call scans).
    pub(crate) reg_lists: Vec<Box<[DReg]>>,
    /// Names for trap messages (unknown globals/functions).
    pub(crate) syms: Vec<String>,
    /// Per-PC segment accounting, parallel to `code` (see [`Seg`]).
    pub(crate) segs: Vec<Seg>,
}

impl DecodedModule {
    /// Lowers `module` against the machine's global layout (symbol →
    /// base address, as computed by [`Machine::new`]).
    pub fn decode(module: &Module, globals: &HashMap<String, i64>) -> DecodedModule {
        let findex = module.function_indices();
        let mut dec = DecodedModule {
            code: Vec::new(),
            funcs: Vec::with_capacity(module.functions.len()),
            func_by_name: findex
                .iter()
                .map(|(&n, &i)| (n.to_string(), i as u32))
                .collect(),
            calls: Vec::new(),
            reg_lists: Vec::new(),
            syms: Vec::new(),
            segs: Vec::new(),
        };

        // Pass 1: lay out every function's blocks in order, recording
        // the absolute start PC of each block. A block whose last
        // instruction is not a terminator gets one extra trap slot.
        let mut block_pcs: Vec<Vec<u32>> = Vec::with_capacity(module.functions.len());
        let mut pc: u32 = 0;
        for f in &module.functions {
            let mut starts = Vec::with_capacity(f.blocks.len());
            let entry_pc = pc;
            for b in &f.blocks {
                starts.push(pc);
                let falls_through = b.instrs.last().is_none_or(|i| !i.op.is_terminator());
                pc += b.instrs.len() as u32 + u32::from(falls_through);
            }
            let mut maxg = 0;
            let mut maxf = 0;
            f.for_each_reg(|r| match r.class() {
                RegClass::Gpr => maxg = maxg.max(r.index()),
                RegClass::Fpr => maxf = maxf.max(r.index()),
            });
            dec.funcs.push(FuncMeta {
                entry_pc,
                gpr_len: maxg + 1,
                fpr_len: maxf + 1,
                frame_size: f.frame.frame_size() as i64,
            });
            block_pcs.push(starts);
        }

        // Pass 2: emit, resolving branches through `block_pcs`,
        // globals through `globals`, and callees through `findex`.
        dec.code.reserve(pc as usize);
        for (fi, f) in module.functions.iter().enumerate() {
            let starts = &block_pcs[fi];
            for b in &f.blocks {
                for instr in &b.instrs {
                    let spill = match instr.spill {
                        SpillKind::None => SPILL_NONE,
                        SpillKind::Store(_) => SPILL_STORE,
                        SpillKind::Restore(_) => SPILL_RESTORE,
                    };
                    let op = dec.decode_op(&instr.op, starts, globals, &findex, module);
                    dec.code.push(DInstr { op, spill });
                }
                let falls_through = b.instrs.last().is_none_or(|i| !i.op.is_terminator());
                if falls_through {
                    dec.code.push(DInstr {
                        op: DOp::TrapMissingTerminator,
                        spill: SPILL_NONE,
                    });
                }
            }
        }
        debug_assert_eq!(dec.code.len(), pc as usize);

        // Pass 3: per-PC segment accounting, by backward suffix scan.
        // Every block ends in a terminator or a trap pad (both segment
        // enders), so a non-ender always has a successor suffix to
        // extend — the scan never reads past the array.
        dec.segs = vec![Seg::default(); dec.code.len()];
        for i in (0..dec.code.len()).rev() {
            let instr = &dec.code[i];
            let mut s = Seg {
                len: 1,
                cycles: fixed_cycles(&instr.op),
                stores: u32::from(instr.spill == SPILL_STORE),
                restores: u32::from(instr.spill == SPILL_RESTORE),
            };
            if !ends_segment(&instr.op) {
                let next = dec.segs[i + 1];
                s.len += next.len;
                s.cycles += next.cycles;
                s.stores += next.stores;
                s.restores += next.restores;
            }
            dec.segs[i] = s;
        }
        dec
    }

    fn intern_sym(&mut self, s: &str) -> u32 {
        let i = self.syms.len() as u32;
        self.syms.push(s.to_string());
        i
    }

    fn push_reg_list(&mut self, regs: Box<[DReg]>) -> u32 {
        let i = self.reg_lists.len() as u32;
        self.reg_lists.push(regs);
        i
    }

    fn decode_op(
        &mut self,
        op: &Op,
        starts: &[u32],
        globals: &HashMap<String, i64>,
        findex: &HashMap<&str, usize>,
        module: &Module,
    ) -> DOp {
        let x = |r: Reg| r.index();
        match op {
            Op::LoadI { imm, dst } => DOp::LoadI {
                imm: *imm,
                dst: x(*dst),
            },
            Op::LoadF { imm, dst } => DOp::LoadF {
                imm: *imm,
                dst: x(*dst),
            },
            Op::LoadSym { sym, dst } => match globals.get(sym) {
                Some(&addr) => DOp::LoadAddr { addr, dst: x(*dst) },
                None => DOp::TrapUnknownGlobal {
                    sym: self.intern_sym(sym),
                    dst: x(*dst),
                },
            },
            Op::IBin {
                kind,
                lhs,
                rhs,
                dst,
            } => DOp::IBin {
                kind: *kind,
                lhs: x(*lhs),
                rhs: x(*rhs),
                dst: x(*dst),
            },
            Op::IBinI {
                kind,
                lhs,
                imm,
                dst,
            } => DOp::IBinI {
                kind: *kind,
                lhs: x(*lhs),
                imm: *imm,
                dst: x(*dst),
            },
            Op::FBin {
                kind,
                lhs,
                rhs,
                dst,
            } => DOp::FBin {
                kind: *kind,
                lhs: x(*lhs),
                rhs: x(*rhs),
                dst: x(*dst),
            },
            Op::ICmp {
                kind,
                lhs,
                rhs,
                dst,
            } => DOp::ICmp {
                kind: *kind,
                lhs: x(*lhs),
                rhs: x(*rhs),
                dst: x(*dst),
            },
            Op::FCmp {
                kind,
                lhs,
                rhs,
                dst,
            } => DOp::FCmp {
                kind: *kind,
                lhs: x(*lhs),
                rhs: x(*rhs),
                dst: x(*dst),
            },
            Op::I2I { src, dst } => DOp::I2I {
                src: x(*src),
                dst: x(*dst),
            },
            Op::F2F { src, dst } => DOp::F2F {
                src: x(*src),
                dst: x(*dst),
            },
            Op::I2F { src, dst } => DOp::I2F {
                src: x(*src),
                dst: x(*dst),
            },
            Op::F2I { src, dst } => DOp::F2I {
                src: x(*src),
                dst: x(*dst),
            },
            Op::Load { addr, dst } => DOp::Load {
                addr: x(*addr),
                off: 0,
                dst: x(*dst),
            },
            Op::LoadAI { addr, off, dst } => DOp::Load {
                addr: x(*addr),
                off: *off,
                dst: x(*dst),
            },
            Op::FLoad { addr, dst } => DOp::FLoad {
                addr: x(*addr),
                off: 0,
                dst: x(*dst),
            },
            Op::FLoadAI { addr, off, dst } => DOp::FLoad {
                addr: x(*addr),
                off: *off,
                dst: x(*dst),
            },
            Op::Store { val, addr } => DOp::Store {
                val: x(*val),
                addr: x(*addr),
                off: 0,
            },
            Op::StoreAI { val, addr, off } => DOp::Store {
                val: x(*val),
                addr: x(*addr),
                off: *off,
            },
            Op::FStore { val, addr } => DOp::FStore {
                val: x(*val),
                addr: x(*addr),
                off: 0,
            },
            Op::FStoreAI { val, addr, off } => DOp::FStore {
                val: x(*val),
                addr: x(*addr),
                off: *off,
            },
            Op::CcmStore { val, off } => DOp::CcmStore {
                val: x(*val),
                off: *off,
            },
            Op::CcmLoad { off, dst } => DOp::CcmLoad {
                off: *off,
                dst: x(*dst),
            },
            Op::CcmFStore { val, off } => DOp::CcmFStore {
                val: x(*val),
                off: *off,
            },
            Op::CcmFLoad { off, dst } => DOp::CcmFLoad {
                off: *off,
                dst: x(*dst),
            },
            Op::Jump { target } => DOp::Jump {
                target: starts[target.index()],
            },
            Op::Cbr {
                cond,
                taken,
                not_taken,
            } => DOp::Cbr {
                cond: x(*cond),
                taken: starts[taken.index()],
                not_taken: starts[not_taken.index()],
            },
            Op::Call { callee, args, rets } => match findex.get(callee.as_str()) {
                Some(&ci) => {
                    // Pre-pair arguments with parameters per class, the
                    // AST engine's positional-per-class binding rule.
                    let params = &module.functions[ci].params;
                    let split = |class: RegClass| -> Box<[(u32, u32)]> {
                        args.iter()
                            .filter(|a| a.class() == class)
                            .zip(params.iter().filter(|p| p.class() == class))
                            .map(|(a, p)| (a.index(), p.index()))
                            .collect()
                    };
                    let call = DCall {
                        callee: ci as u32,
                        gpr_args: split(RegClass::Gpr),
                        fpr_args: split(RegClass::Fpr),
                        rets: rets.iter().map(|&r| DReg::of(r)).collect(),
                    };
                    let i = self.calls.len() as u32;
                    self.calls.push(call);
                    DOp::Call { call: i }
                }
                None => {
                    let regs: Box<[DReg]> = args
                        .iter()
                        .chain(rets.iter())
                        .map(|&r| DReg::of(r))
                        .collect();
                    DOp::TrapUnknownFunction {
                        sym: self.intern_sym(callee),
                        regs: self.push_reg_list(regs),
                    }
                }
            },
            Op::Ret { vals } => DOp::Ret {
                vals: {
                    let list: Box<[DReg]> = vals.iter().map(|&r| DReg::of(r)).collect();
                    self.push_reg_list(list)
                },
            },
            Op::Phi { dst, args } => {
                // Uses (φ args) then the def, matching the AST engine's
                // pipelined-model scan order (max is order-insensitive,
                // but keep the exact set).
                let regs: Box<[DReg]> = args
                    .iter()
                    .map(|&(_, r)| DReg::of(r))
                    .chain(std::iter::once(DReg::of(*dst)))
                    .collect();
                DOp::TrapPhi {
                    regs: self.push_reg_list(regs),
                }
            }
            Op::Nop => DOp::Nop,
        }
    }

    /// Number of decoded slots (flattened instructions + trap pads).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the module decoded to no code at all.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// An activation record in the decoded engine. No `ret_dsts` — return
/// destinations live in the caller's decoded call, found at
/// `code[caller.pc - 1]` when the callee returns.
struct DFrame {
    func: u32,
    pc: u32,
    gpr: Vec<i64>,
    fpr: Vec<f64>,
    gpr_ready: Vec<u64>,
    fpr_ready: Vec<u64>,
    saved_sp: i64,
}

/// Mutable interpreter state that lives *outside* [`Machine`], so the
/// hot loop can hold `&mut ExecState` and `&mut Machine` at once: the
/// active frame (kept out of the callstack vector — no `last_mut()`
/// per step), the suspended callers, the recycled-frame pool, and the
/// stack pointer.
struct ExecState {
    cur: DFrame,
    frames: Vec<DFrame>,
    pool: Vec<DFrame>,
    sp: i64,
}

impl ExecState {
    /// Current call depth: suspended callers plus the active frame.
    fn depth(&self) -> u64 {
        self.frames.len() as u64 + 1
    }
}

/// Builds (or recycles from the pool) an activation record for `func`,
/// bumping the stack pointer.
fn make_frame(
    dec: &DecodedModule,
    pool: &mut Vec<DFrame>,
    sp: &mut i64,
    func: u32,
    globals_end: i64,
    pipelined: bool,
) -> Result<DFrame, SimError> {
    let meta = &dec.funcs[func as usize];
    let saved_sp = *sp;
    let new_sp = (*sp - meta.frame_size) & !7;
    if new_sp < globals_end {
        return Err(SimError::StackOverflow);
    }
    *sp = new_sp;
    let mut f = pool.pop().unwrap_or(DFrame {
        func: 0,
        pc: 0,
        gpr: Vec::new(),
        fpr: Vec::new(),
        gpr_ready: Vec::new(),
        fpr_ready: Vec::new(),
        saved_sp: 0,
    });
    f.func = func;
    f.pc = meta.entry_pc;
    f.saved_sp = saved_sp;
    f.gpr.clear();
    f.gpr.resize(meta.gpr_len as usize, 0);
    f.fpr.clear();
    f.fpr.resize(meta.fpr_len as usize, 0.0);
    if pipelined {
        f.gpr_ready.clear();
        f.gpr_ready.resize(meta.gpr_len as usize, 0);
        f.fpr_ready.clear();
        f.fpr_ready.resize(meta.fpr_len as usize, 0);
    }
    f.gpr[Reg::RARP.index() as usize] = new_sp;
    Ok(f)
}

impl<'m> Machine<'m> {
    /// The flat-PC dispatch loop, segment at a time.
    ///
    /// Each iteration looks up the [`Seg`] starting at the current PC
    /// and picks a path:
    ///
    /// * **Fast** (the common case): the segment's fixed accounting is
    ///   credited in one batch up front and [`Machine::seg_run`] then
    ///   dispatches its instructions with zero per-step bookkeeping.
    ///   Taken only when the step budget cannot be crossed inside the
    ///   segment, no fault point is armed, and the pipelined-load model
    ///   is off — so the batch is observationally invisible.
    /// * **Precise**: per-instruction accounting identical to the AST
    ///   engine (step-limit check and `sim.budget` fault point per
    ///   instruction, readiness stalls, per-op cycle charges). Chosen
    ///   per segment, so execution degrades to exact stepping just for
    ///   the stretch that needs it and pops back to batching after.
    ///
    /// Segment entries are exactly the PCs reached by a control
    /// transfer (block starts, call entries, post-call resume points),
    /// and `Metrics::instrs` is exact at every entry, which makes the
    /// two paths agree on every observable (see the module docs).
    pub(crate) fn exec_decoded(
        &mut self,
        dec: &DecodedModule,
        entry: &str,
    ) -> Result<RetValues, SimError> {
        let entry_idx = *dec
            .func_by_name
            .get(entry)
            .ok_or_else(|| SimError::UnknownFunction(entry.to_string()))?;

        let pipelined = self.cfg.load_delay.is_some();
        let mut sp: i64 = self.cfg.mem_size as i64;
        let mut pool: Vec<DFrame> = Vec::new();
        let cur = make_frame(
            dec,
            &mut pool,
            &mut sp,
            entry_idx,
            self.globals_end,
            pipelined,
        )?;
        let mut st = ExecState {
            cur,
            frames: Vec::new(),
            pool,
            sp,
        };
        // Call depth is tracked at push time (it only changes there);
        // on any successful run the result matches the AST engine's
        // per-step sampling exactly.
        self.metrics.max_depth = self.metrics.max_depth.max(1);

        loop {
            let seg = dec.segs[st.cur.pc as usize];
            let fast = !pipelined
                && self.metrics.instrs + u64::from(seg.len) <= self.cfg.max_steps
                && !inject::active();
            let flow = if fast {
                self.metrics.instrs += u64::from(seg.len);
                self.metrics.cycles += u64::from(seg.cycles);
                self.metrics.spill_stores += u64::from(seg.stores);
                self.metrics.spill_restores += u64::from(seg.restores);
                self.seg_run::<false>(dec, &mut st)?
            } else {
                self.seg_run::<true>(dec, &mut st)?
            };
            if let Some(out) = flow {
                return Ok(out);
            }
        }
    }

    /// Executes one segment: instructions from the current PC through
    /// the next control transfer. Returns `Ok(None)` when control
    /// transferred (back to the dispatch loop for the next segment) and
    /// `Ok(Some(values))` when the entry function returned.
    ///
    /// `PRECISE = false` assumes the caller batch-credited the
    /// segment's fixed accounting (instrs, 1-cycle costs, spill tags)
    /// and skips all per-step bookkeeping; `PRECISE = true` mirrors the
    /// AST engine's per-instruction loop body arm for arm.
    fn seg_run<const PRECISE: bool>(
        &mut self,
        dec: &DecodedModule,
        st: &mut ExecState,
    ) -> Result<Option<RetValues>, SimError> {
        loop {
            if PRECISE {
                self.metrics.instrs += 1;
                if self.metrics.instrs > self.cfg.max_steps || inject::faultpoint!("sim.budget") {
                    return Err(SimError::StepLimit);
                }
            }

            let instr = &dec.code[st.cur.pc as usize];
            st.cur.pc += 1;

            if PRECISE {
                match instr.spill {
                    SPILL_STORE => self.metrics.spill_stores += 1,
                    SPILL_RESTORE => self.metrics.spill_restores += 1,
                    _ => {}
                }
                // Pipelined-load model: stall until every register this
                // instruction touches is ready.
                if self.cfg.load_delay.is_some() {
                    let ready = ready_time(&instr.op, dec, &st.cur);
                    if ready > self.metrics.cycles {
                        self.metrics.stall_cycles += ready - self.metrics.cycles;
                        self.metrics.cycles = ready;
                    }
                }
            }

            match &instr.op {
                // ---- constants / moves / arithmetic: 1 cycle -------------
                DOp::LoadI { imm, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.gpr[*dst as usize] = *imm as i32 as i64;
                }
                DOp::LoadF { imm, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.fpr[*dst as usize] = *imm;
                }
                DOp::LoadAddr { addr, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.gpr[*dst as usize] = *addr;
                }
                DOp::IBin {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let a = st.cur.gpr[*lhs as usize];
                    let b = st.cur.gpr[*rhs as usize];
                    st.cur.gpr[*dst as usize] = ibin(*kind, a, b)?;
                }
                DOp::IBinI {
                    kind,
                    lhs,
                    imm,
                    dst,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let a = st.cur.gpr[*lhs as usize];
                    st.cur.gpr[*dst as usize] = ibin(*kind, a, *imm)?;
                }
                DOp::FBin {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let a = st.cur.fpr[*lhs as usize];
                    let b = st.cur.fpr[*rhs as usize];
                    st.cur.fpr[*dst as usize] = match kind {
                        FBinKind::Add => a + b,
                        FBinKind::Sub => a - b,
                        FBinKind::Mult => a * b,
                        FBinKind::Div => a / b,
                    };
                }
                DOp::ICmp {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let a = st.cur.gpr[*lhs as usize];
                    let b = st.cur.gpr[*rhs as usize];
                    st.cur.gpr[*dst as usize] = cmp(*kind, &a, &b);
                }
                DOp::FCmp {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let a = st.cur.fpr[*lhs as usize];
                    let b = st.cur.fpr[*rhs as usize];
                    st.cur.gpr[*dst as usize] = fcmp(*kind, a, b);
                }
                DOp::I2I { src, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.gpr[*dst as usize] = st.cur.gpr[*src as usize];
                }
                DOp::F2F { src, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.fpr[*dst as usize] = st.cur.fpr[*src as usize];
                }
                DOp::I2F { src, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.fpr[*dst as usize] = st.cur.gpr[*src as usize] as f64;
                }
                DOp::F2I { src, dst } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.gpr[*dst as usize] = st.cur.fpr[*src as usize] as i32 as i64;
                }

                // ---- main memory: mem_latency (or cache) ----------------
                DOp::Load { addr, off, dst } => {
                    let a = st.cur.gpr[*addr as usize] + off;
                    let v = self.read_i32(a)?;
                    let lat = self.mem_access(a, false);
                    st.cur.gpr[*dst as usize] = v as i64;
                    let lat = match self.cfg.load_delay {
                        Some(d) => {
                            st.cur.gpr_ready[*dst as usize] = self.metrics.cycles + 1 + d;
                            1
                        }
                        None => lat,
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                DOp::FLoad { addr, off, dst } => {
                    let a = st.cur.gpr[*addr as usize] + off;
                    let v = self.read_f64(a)?;
                    let lat = self.mem_access(a, false);
                    st.cur.fpr[*dst as usize] = v;
                    let lat = match self.cfg.load_delay {
                        Some(d) => {
                            st.cur.fpr_ready[*dst as usize] = self.metrics.cycles + 1 + d;
                            1
                        }
                        None => lat,
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                DOp::Store { val, addr, off } => {
                    let a = st.cur.gpr[*addr as usize] + off;
                    let v = st.cur.gpr[*val as usize] as i32;
                    self.write_i32(a, v)?;
                    let lat = match self.cfg.load_delay {
                        Some(_) => 1,
                        None => self.mem_access(a, true),
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                DOp::FStore { val, addr, off } => {
                    let a = st.cur.gpr[*addr as usize] + off;
                    let v = st.cur.fpr[*val as usize];
                    self.write_f64(a, v)?;
                    let lat = match self.cfg.load_delay {
                        Some(_) => 1,
                        None => self.mem_access(a, true),
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }

                // ---- CCM: ccm_latency, disjoint address space -----------
                DOp::CcmStore { val, off } => {
                    let v = st.cur.gpr[*val as usize] as i32;
                    self.ccm_check(*off, 4)?;
                    self.ccm[*off as usize..*off as usize + 4].copy_from_slice(&v.to_le_bytes());
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                DOp::CcmLoad { off, dst } => {
                    self.ccm_check(*off, 4)?;
                    let v = i32::from_le_bytes(
                        self.ccm[*off as usize..*off as usize + 4]
                            .try_into()
                            .expect("4 bytes"),
                    );
                    st.cur.gpr[*dst as usize] = v as i64;
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                DOp::CcmFStore { val, off } => {
                    let v = st.cur.fpr[*val as usize];
                    self.ccm_check(*off, 8)?;
                    self.ccm[*off as usize..*off as usize + 8].copy_from_slice(&v.to_le_bytes());
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                DOp::CcmFLoad { off, dst } => {
                    self.ccm_check(*off, 8)?;
                    let v = f64::from_le_bytes(
                        self.ccm[*off as usize..*off as usize + 8]
                            .try_into()
                            .expect("8 bytes"),
                    );
                    st.cur.fpr[*dst as usize] = v;
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }

                // ---- control flow: every arm ends the segment -----------
                DOp::Jump { target } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    st.cur.pc = *target;
                    return Ok(None);
                }
                DOp::Cbr {
                    cond,
                    taken,
                    not_taken,
                } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let c = st.cur.gpr[*cond as usize];
                    st.cur.pc = if c != 0 { *taken } else { *not_taken };
                    return Ok(None);
                }
                DOp::Call { call } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    self.metrics.calls += 1;
                    let c = &dec.calls[*call as usize];
                    let mut new = make_frame(
                        dec,
                        &mut st.pool,
                        &mut st.sp,
                        c.callee,
                        self.globals_end,
                        self.cfg.load_delay.is_some(),
                    )?;
                    for &(src, dst) in c.gpr_args.iter() {
                        new.gpr[dst as usize] = st.cur.gpr[src as usize];
                    }
                    for &(src, dst) in c.fpr_args.iter() {
                        new.fpr[dst as usize] = st.cur.fpr[src as usize];
                    }
                    let caller = std::mem::replace(&mut st.cur, new);
                    st.frames.push(caller);
                    self.metrics.max_depth = self.metrics.max_depth.max(st.depth());
                    return Ok(None);
                }
                DOp::Ret { vals } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    let vals = &dec.reg_lists[*vals as usize];
                    st.sp = st.cur.saved_sp;
                    match st.frames.pop() {
                        Some(caller) => {
                            let done = std::mem::replace(&mut st.cur, caller);
                            // The caller's PC already moved past its
                            // call, so the decoded call is the slot
                            // just behind.
                            let DOp::Call { call } = dec.code[st.cur.pc as usize - 1].op else {
                                unreachable!("frame above entry implies a decoded call")
                            };
                            let rets = &dec.calls[call as usize].rets;
                            for (v, dst) in vals.iter().zip(rets.iter()) {
                                if v.gpr {
                                    st.cur.gpr[dst.idx as usize] = done.gpr[v.idx as usize];
                                } else {
                                    st.cur.fpr[dst.idx as usize] = done.fpr[v.idx as usize];
                                }
                            }
                            st.pool.push(done);
                            return Ok(None);
                        }
                        None => {
                            // Entry function returned: collect values.
                            let mut out = RetValues::default();
                            for v in vals.iter() {
                                if v.gpr {
                                    out.ints.push(st.cur.gpr[v.idx as usize]);
                                } else {
                                    out.floats.push(st.cur.fpr[v.idx as usize]);
                                }
                            }
                            if let Some(c) = &self.cache {
                                self.metrics.cache = c.stats;
                            }
                            return Ok(Some(out));
                        }
                    }
                }

                // ---- decoded trap pseudo-ops ----------------------------
                DOp::TrapUnknownGlobal { sym, .. } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    return Err(SimError::UnknownGlobal(dec.syms[*sym as usize].clone()));
                }
                DOp::TrapUnknownFunction { sym, .. } => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                    self.metrics.calls += 1;
                    return Err(SimError::UnknownFunction(dec.syms[*sym as usize].clone()));
                }
                DOp::TrapPhi { .. } => return Err(SimError::PhiEncountered),
                DOp::TrapMissingTerminator => return Err(SimError::MissingTerminator),
                DOp::Nop => {
                    if PRECISE {
                        self.metrics.cycles += 1;
                    }
                }
            }
        }
    }
}

/// The pipelined model's readiness scan: the latest completion cycle of
/// any register this operation touches (uses and defs), mirroring the
/// AST engine's `visit_uses`/`visit_defs` walk.
fn ready_time(op: &DOp, dec: &DecodedModule, frame: &DFrame) -> u64 {
    let g = |i: u32| frame.gpr_ready[i as usize];
    let f = |i: u32| frame.fpr_ready[i as usize];
    match op {
        DOp::LoadI { dst, .. } | DOp::LoadAddr { dst, .. } => g(*dst),
        DOp::LoadF { dst, .. } => f(*dst),
        DOp::TrapUnknownGlobal { dst, .. } => g(*dst),
        DOp::IBin { lhs, rhs, dst, .. } | DOp::ICmp { lhs, rhs, dst, .. } => {
            g(*lhs).max(g(*rhs)).max(g(*dst))
        }
        DOp::IBinI { lhs, dst, .. } => g(*lhs).max(g(*dst)),
        DOp::FBin { lhs, rhs, dst, .. } => f(*lhs).max(f(*rhs)).max(f(*dst)),
        DOp::FCmp { lhs, rhs, dst, .. } => f(*lhs).max(f(*rhs)).max(g(*dst)),
        DOp::I2I { src, dst } => g(*src).max(g(*dst)),
        DOp::F2F { src, dst } => f(*src).max(f(*dst)),
        DOp::I2F { src, dst } => g(*src).max(f(*dst)),
        DOp::F2I { src, dst } => f(*src).max(g(*dst)),
        DOp::Load { addr, dst, .. } => g(*addr).max(g(*dst)),
        DOp::FLoad { addr, dst, .. } => g(*addr).max(f(*dst)),
        DOp::Store { val, addr, .. } => g(*val).max(g(*addr)),
        DOp::FStore { val, addr, .. } => f(*val).max(g(*addr)),
        DOp::CcmStore { val, .. } => g(*val),
        DOp::CcmLoad { dst, .. } => g(*dst),
        DOp::CcmFStore { val, .. } => f(*val),
        DOp::CcmFLoad { dst, .. } => f(*dst),
        DOp::Jump { .. } | DOp::TrapMissingTerminator | DOp::Nop => 0,
        DOp::Cbr { cond, .. } => g(*cond),
        DOp::Call { call } => {
            let c = &dec.calls[*call as usize];
            let mut t = 0u64;
            for &(src, _) in c.gpr_args.iter() {
                t = t.max(g(src));
            }
            for &(src, _) in c.fpr_args.iter() {
                t = t.max(f(src));
            }
            for r in c.rets.iter() {
                t = t.max(if r.gpr { g(r.idx) } else { f(r.idx) });
            }
            t
        }
        DOp::Ret { vals } => scan_list(&dec.reg_lists[*vals as usize], frame),
        DOp::TrapUnknownFunction { regs, .. } | DOp::TrapPhi { regs } => {
            scan_list(&dec.reg_lists[*regs as usize], frame)
        }
    }
}

fn scan_list(list: &[DReg], frame: &DFrame) -> u64 {
    let mut t = 0u64;
    for r in list {
        t = t.max(if r.gpr {
            frame.gpr_ready[r.idx as usize]
        } else {
            frame.fpr_ready[r.idx as usize]
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Engine, MachineConfig};
    use crate::machine::run_module;
    use iloc::builder::FuncBuilder;
    use iloc::{Global, Instr};

    fn engines() -> [MachineConfig; 2] {
        [
            MachineConfig {
                engine: Engine::Ast,
                ..MachineConfig::default()
            },
            MachineConfig {
                engine: Engine::Decoded,
                ..MachineConfig::default()
            },
        ]
    }

    /// Runs `m` under both engines and asserts identical observable
    /// outcome (values bit-for-bit, full metrics, or identical trap).
    fn assert_equivalent(m: &Module) {
        let [ast, dec] = engines();
        let a = run_module(m, ast, "main");
        let d = run_module(m, dec, "main");
        match (&a, &d) {
            (Ok((va, ma)), Ok((vd, md))) => {
                assert_eq!(va.ints, vd.ints);
                let fa: Vec<u64> = va.floats.iter().map(|x| x.to_bits()).collect();
                let fd: Vec<u64> = vd.floats.iter().map(|x| x.to_bits()).collect();
                assert_eq!(fa, fd, "float bits diverged");
                assert_eq!(ma, md, "metrics diverged");
            }
            (Err(ea), Err(ed)) => assert_eq!(ea, ed, "traps diverged"),
            _ => panic!("one engine trapped, the other returned: {a:?} vs {d:?}"),
        }
    }

    #[test]
    fn flat_layout_covers_all_blocks() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let machine = Machine::new(&m, MachineConfig::default());
        let dec = DecodedModule::decode(&m, &machine.globals);
        // Every block contributes its instructions; branch targets are
        // in range and the function is covered by one entry PC.
        assert!(!dec.is_empty());
        assert_eq!(dec.funcs.len(), 1);
        assert_eq!(dec.funcs[0].entry_pc, 0);
        for i in &dec.code {
            match i.op {
                DOp::Jump { target } => assert!((target as usize) < dec.len()),
                DOp::Cbr {
                    taken, not_taken, ..
                } => {
                    assert!((taken as usize) < dec.len());
                    assert!((not_taken as usize) < dec.len());
                }
                _ => {}
            }
        }
        assert_equivalent(&m);
    }

    #[test]
    fn unknown_global_decodes_to_runtime_trap() {
        let mut fb = FuncBuilder::new("main");
        let d = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadSym {
            sym: "nope".to_string(),
            dst: d,
        });
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        // Both engines trap with the same structured error...
        let [ast, dec] = engines();
        let ea = run_module(&m, ast, "main").unwrap_err();
        let ed = run_module(&m, dec, "main").unwrap_err();
        assert_eq!(ea, SimError::UnknownGlobal("nope".to_string()));
        assert_eq!(ea, ed);
        assert_equivalent(&m);
    }

    #[test]
    fn unknown_global_on_cold_path_does_not_trap() {
        // The bad loadSym sits in a block that never executes: decoding
        // must not fault eagerly (the AST engine wouldn't either).
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let one = fb.loadi(1);
        let hot = fb.block("hot");
        let cold = fb.block("cold");
        fb.cbr(one, hot, cold);
        fb.switch_to(cold);
        let d = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadSym {
            sym: "nope".to_string(),
            dst: d,
        });
        fb.ret(&[d]);
        fb.switch_to(hot);
        let r = fb.loadi(7);
        fb.ret(&[r]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let [_, dec] = engines();
        let (v, _) = run_module(&m, dec, "main").expect("cold trap must stay cold");
        assert_eq!(v.ints, vec![7]);
        assert_equivalent(&m);
    }

    #[test]
    fn unknown_callee_traps_identically() {
        let mut fb = FuncBuilder::new("main");
        fb.call("ghost", &[], &[]);
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let [ast, dec] = engines();
        let ea = run_module(&m, ast, "main").unwrap_err();
        let ed = run_module(&m, dec, "main").unwrap_err();
        assert_eq!(ea, SimError::UnknownFunction("ghost".to_string()));
        assert_eq!(ea, ed);
        assert_equivalent(&m);
    }

    #[test]
    fn missing_terminator_traps_at_same_instruction_count() {
        let mut f = iloc::Function::new("main");
        let e = f.entry();
        let v = f.new_vreg(RegClass::Gpr);
        f.block_mut(e)
            .instrs
            .push(Instr::new(Op::LoadI { imm: 1, dst: v }));
        // No terminator: both engines must fault after executing one
        // real instruction.
        let mut m = Module::new();
        m.push_function(f);
        let [ast, dec] = engines();
        let mut ma = Machine::new(&m, ast);
        let ea = ma.run("main").unwrap_err();
        let ia = ma.metrics.instrs;
        let mut md = Machine::new(&m, dec);
        let ed = md.run("main").unwrap_err();
        assert_eq!(ea, SimError::MissingTerminator);
        assert_eq!(ea, ed);
        assert_eq!(ia, md.metrics.instrs);
        assert_eq!(ma.metrics.cycles, md.metrics.cycles);
    }

    #[test]
    fn step_limit_fires_at_identical_instruction() {
        let mut fb = FuncBuilder::new("main");
        let spin = fb.block("spin");
        fb.jump(spin);
        fb.switch_to(spin);
        fb.jump(spin);
        let mut m = Module::new();
        m.push_function(fb.finish());
        for max_steps in [1, 2, 17, 1000] {
            let mk = |engine| MachineConfig {
                max_steps,
                engine,
                ..MachineConfig::default()
            };
            let mut a = Machine::new(&m, mk(Engine::Ast));
            let mut d = Machine::new(&m, mk(Engine::Decoded));
            assert_eq!(a.run("main").unwrap_err(), SimError::StepLimit);
            assert_eq!(d.run("main").unwrap_err(), SimError::StepLimit);
            assert_eq!(a.metrics, d.metrics, "max_steps={max_steps}");
        }
    }

    #[test]
    fn calls_and_recursion_equivalent() {
        let mut f = FuncBuilder::new("fact");
        let n = f.param(RegClass::Gpr);
        f.set_ret_classes(&[RegClass::Gpr]);
        let one = f.loadi(1);
        let c = f.icmp(CmpKind::Le, n, one);
        let base = f.block("base");
        let rec = f.block("rec");
        f.cbr(c, base, rec);
        f.switch_to(base);
        let r1 = f.loadi(1);
        f.ret(&[r1]);
        f.switch_to(rec);
        let nm1 = f.subi(n, 1);
        let sub = f.call("fact", &[nm1], &[RegClass::Gpr]);
        let r = f.mult(n, sub[0]);
        f.ret(&[r]);
        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        let five = main.loadi(7);
        let rets = main.call("fact", &[five], &[RegClass::Gpr]);
        main.ret(&[rets[0]]);
        let mut m = Module::new();
        m.push_function(f.finish());
        m.push_function(main.finish());
        assert_equivalent(&m);
        let [_, dec] = engines();
        let (v, _) = run_module(&m, dec, "main").unwrap();
        assert_eq!(v.ints, vec![5040]);
    }

    #[test]
    fn mixed_class_args_and_multi_rets_equivalent() {
        let mut callee = FuncBuilder::new("mix");
        let a = callee.param(RegClass::Gpr);
        let x = callee.param(RegClass::Fpr);
        let b = callee.param(RegClass::Gpr);
        callee.set_ret_classes(&[RegClass::Fpr, RegClass::Gpr]);
        let af = callee.i2f(a);
        let s = callee.fadd(af, x);
        let t = callee.add(a, b);
        callee.ret(&[s, t]);
        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Fpr, RegClass::Gpr]);
        let i = main.loadi(3);
        let j = main.loadi(4);
        let w = main.loadf(0.5);
        let rets = main.call("mix", &[i, w, j], &[RegClass::Fpr, RegClass::Gpr]);
        main.ret(&[rets[0], rets[1]]);
        let mut m = Module::new();
        m.push_function(callee.finish());
        m.push_function(main.finish());
        assert_equivalent(&m);
        let [_, dec] = engines();
        let (v, _) = run_module(&m, dec, "main").unwrap();
        assert_eq!(v.floats, vec![3.5]);
        assert_eq!(v.ints, vec![7]);
    }

    #[test]
    fn memory_ccm_and_globals_equivalent() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr, RegClass::Gpr]);
        let base = fb.loadsym("g");
        let x = fb.loadf(2.25);
        fb.fstoreai(x, base, 0);
        fb.emit(Op::CcmFStore { val: x, off: 8 });
        let a = fb.floadai(base, 0);
        let b = fb.vreg(RegClass::Fpr);
        fb.emit(Op::CcmFLoad { off: 8, dst: b });
        let s = fb.fadd(a, b);
        let i = fb.loadi(-3);
        fb.storeai(i, base, 8);
        let j = fb.loadai(base, 8);
        fb.ret(&[s, j]);
        let mut m = Module::new();
        m.push_global(Global::from_f64s("g", &[0.0, 0.0]));
        m.push_function(fb.finish());
        assert_equivalent(&m);
    }

    #[test]
    fn traps_equivalent_for_div_zero_mem_ccm_and_overflow() {
        // divide by zero
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let z = fb.loadi(0);
        let q = fb.idiv(a, z);
        fb.ret(&[q]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        assert_equivalent(&m);

        // memory out of bounds
        let mut fb = FuncBuilder::new("main");
        let a = fb.loadi(-5);
        let _ = fb.loadai(a, 0);
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        assert_equivalent(&m);

        // ccm out of bounds
        let mut fb = FuncBuilder::new("main");
        let a = fb.loadi(1);
        fb.emit(Op::CcmStore {
            val: a,
            off: 4 << 20,
        });
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        assert_equivalent(&m);
    }

    #[test]
    fn pipelined_model_equivalent() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let l = fb.loadai(base, 0);
        let r = fb.addi(l, 1);
        let l2 = fb.loadai(base, 4);
        let s = fb.add(r, l2);
        fb.ret(&[s]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        for delay in [1, 3, 7] {
            let mk = |engine| MachineConfig {
                load_delay: Some(delay),
                engine,
                ..MachineConfig::default()
            };
            let (va, ma) = run_module(&m, mk(Engine::Ast), "main").unwrap();
            let (vd, md) = run_module(&m, mk(Engine::Decoded), "main").unwrap();
            assert_eq!(va, vd);
            assert_eq!(ma, md, "delay={delay}");
            assert!(ma.stall_cycles > 0, "test must exercise stalls");
        }
    }

    #[test]
    fn cache_model_equivalent() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let a = fb.loadai(base, 0);
        let b = fb.loadai(base, 0);
        let c = fb.loadai(base, 256);
        let s1 = fb.add(a, b);
        let s = fb.add(s1, c);
        fb.ret(&[s]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 512));
        m.push_function(fb.finish());
        let mk = |engine| MachineConfig {
            cache: Some(crate::cache::CacheConfig::small_direct_mapped()),
            engine,
            ..MachineConfig::default()
        };
        let (_, ma) = run_module(&m, mk(Engine::Ast), "main").unwrap();
        let (_, md) = run_module(&m, mk(Engine::Decoded), "main").unwrap();
        assert_eq!(ma, md);
        assert!(ma.cache.misses > 0);
    }

    #[test]
    fn decoded_machine_reruns_are_independent() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let old = fb.loadai(base, 0);
        let v = fb.loadi(41);
        let v1 = fb.addi(v, 1);
        fb.storeai(v1, base, 0);
        let now = fb.loadai(base, 0);
        let s = fb.add(old, now);
        fb.ret(&[s]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        let mut machine = Machine::new(&m, MachineConfig::default());
        let r1 = machine.run("main").unwrap();
        let c1 = machine.metrics.cycles;
        // `old` must read 0 again on the second run: the dirty-range
        // reset re-zeroes exactly what the first run wrote.
        let r2 = machine.run("main").unwrap();
        assert_eq!(r1.ints, vec![42]);
        assert_eq!(r1, r2);
        assert_eq!(c1, machine.metrics.cycles);
    }

    #[test]
    fn phi_trap_equivalent() {
        let mut f = iloc::Function::new("main");
        let e = f.entry();
        let d = f.new_vreg(RegClass::Gpr);
        f.block_mut(e).instrs.push(Instr::new(Op::Phi {
            dst: d,
            args: vec![],
        }));
        f.block_mut(e)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        let mut m = Module::new();
        m.push_function(f);
        assert_equivalent(&m);
    }

    #[test]
    fn segment_table_is_consistent() {
        // Build something with branches, calls, and memory ops, then
        // check the per-PC suffix invariants the fast path relies on.
        let mut callee = FuncBuilder::new("leaf");
        callee.set_ret_classes(&[RegClass::Gpr]);
        let v = callee.loadi(3);
        callee.ret(&[v]);
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 5, 1, |fb, iv| {
            let c = fb.call("leaf", &[], &[RegClass::Gpr]);
            let t = fb.add(acc, c[0]);
            let t2 = fb.add(t, iv);
            fb.emit(Op::I2I { src: t2, dst: acc });
        });
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(callee.finish());
        m.push_function(fb.finish());
        let machine = Machine::new(&m, MachineConfig::default());
        let dec = DecodedModule::decode(&m, &machine.globals);

        assert_eq!(dec.segs.len(), dec.code.len());
        let mut saw_multi = false;
        for (pc, instr) in dec.code.iter().enumerate() {
            let s = dec.segs[pc];
            if ends_segment(&instr.op) {
                // A segment ender is a one-instruction segment.
                assert_eq!(s.len, 1, "pc {pc}");
                assert_eq!(s.cycles, fixed_cycles(&instr.op), "pc {pc}");
            } else {
                // A fall-through extends the suffix that follows it.
                let next = dec.segs[pc + 1];
                assert_eq!(s.len, next.len + 1, "pc {pc}");
                assert_eq!(s.cycles, next.cycles + fixed_cycles(&instr.op), "pc {pc}");
                saw_multi = true;
            }
        }
        assert!(saw_multi, "module must contain straight-line stretches");
        assert_equivalent(&m);
    }

    #[test]
    fn batched_and_precise_paths_agree_on_metrics() {
        // The same module run far from the step limit (batched fast
        // path) and stepped right at it (precise path) must report the
        // same totals on success: pick max_steps exactly equal to the
        // dynamic instruction count so every segment near the end runs
        // precise, then compare against an unconstrained run.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 9, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(fb.finish());

        let fast = MachineConfig {
            engine: Engine::Decoded,
            ..MachineConfig::default()
        };
        let (v1, m1) = run_module(&m, fast.clone(), "main").expect("fast run succeeds");
        let tight = MachineConfig {
            max_steps: m1.instrs,
            ..fast
        };
        let (v2, m2) = run_module(&m, tight, "main").expect("exact budget still succeeds");
        assert_eq!(v1, v2);
        assert_eq!(m1, m2, "fast and precise accounting diverged");
    }
}
