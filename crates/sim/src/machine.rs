//! The instruction-level simulator.
//!
//! Interprets a [`Module`] directly, counting cycles under the paper's
//! machine model. Globals are laid out at the bottom of main memory, the
//! stack at the top; the CCM is a **disjoint** byte array reached only by
//! `spill`/`restore` instructions, exactly as the paper's hardware sketch
//! prescribes. The simulator runs both pre-allocation code (virtual
//! registers) and allocated code (physical registers) — register files
//! are sized per function — which lets tests compare observable behavior
//! across every compilation configuration.

use std::collections::HashMap;
use std::fmt;

use iloc::{BlockId, FBinKind, Function, IBinKind, Module, Op, Reg, RegClass, SpillKind};

use crate::cache::Cache;
use crate::config::{Engine, MachineConfig};
use crate::decode::DecodedModule;
use crate::metrics::Metrics;

/// A simulator trap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Entry or callee not found.
    UnknownFunction(String),
    /// A `loadSym` referenced a global the module does not declare.
    UnknownGlobal(String),
    /// Main-memory access outside `[0, mem_size)`.
    MemOutOfBounds {
        /// The faulting byte address.
        addr: i64,
    },
    /// CCM access at or beyond the configured CCM size.
    CcmOutOfBounds {
        /// The faulting CCM offset.
        off: u32,
        /// The configured CCM size.
        size: u32,
    },
    /// Instruction budget exhausted.
    StepLimit,
    /// A φ-node was executed (the simulator requires non-SSA code).
    PhiEncountered,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The stack grew into the global data region.
    StackOverflow,
    /// A block fell through without a terminator.
    MissingTerminator,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            SimError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            SimError::MemOutOfBounds { addr } => write!(f, "memory access out of bounds at {addr}"),
            SimError::CcmOutOfBounds { off, size } => {
                write!(f, "ccm access at {off} beyond ccm size {size}")
            }
            SimError::StepLimit => write!(f, "instruction step limit exceeded"),
            SimError::PhiEncountered => write!(f, "phi executed (code not out of ssa)"),
            SimError::DivideByZero => write!(f, "integer divide by zero"),
            SimError::StackOverflow => write!(f, "stack overflow"),
            SimError::MissingTerminator => write!(f, "fell off the end of a block"),
        }
    }
}

impl std::error::Error for SimError {}

/// Values returned by the entry function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RetValues {
    /// Integer return values, in signature order.
    pub ints: Vec<i64>,
    /// Float return values, in signature order.
    pub floats: Vec<f64>,
}

struct Frame<'m> {
    func: usize,
    block: usize,
    idx: usize,
    gpr: Vec<i64>,
    fpr: Vec<f64>,
    /// Cycle at which each register's pending load completes (pipelined
    /// model only; empty otherwise).
    gpr_ready: Vec<u64>,
    fpr_ready: Vec<u64>,
    /// Caller registers receiving this activation's return values —
    /// borrowed from the caller's `Op::Call`, never cloned.
    ret_dsts: &'m [Reg],
    saved_sp: i64,
}

/// The machine: memory, CCM, and execution state.
pub struct Machine<'m> {
    pub(crate) module: &'m Module,
    pub(crate) cfg: MachineConfig,
    pub(crate) mem: Vec<u8>,
    pub(crate) ccm: Vec<u8>,
    pub(crate) globals: HashMap<String, i64>,
    pub(crate) globals_end: i64,
    pub(crate) cache: Option<Cache>,
    /// Execution counters, reset by [`Machine::run`].
    pub metrics: Metrics,
    /// Per-function (max gpr index, max fpr index).
    reg_limits: Vec<(u32, u32)>,
    /// Lazily built flat-PC lowering used by [`Engine::Decoded`].
    decoded: Option<DecodedModule>,
    /// Dirty main-memory watermarks: the byte range `[dirty_lo,
    /// dirty_hi)` written by stores since the last reset. [`Machine::run`]
    /// clears only this range instead of re-zeroing all of `mem`.
    pub(crate) dirty_lo: usize,
    pub(crate) dirty_hi: usize,
}

impl<'m> Machine<'m> {
    /// Creates a machine and lays out the module's globals.
    pub fn new(module: &'m Module, cfg: MachineConfig) -> Machine<'m> {
        let mut mem = vec![0u8; cfg.mem_size];
        let mut globals = HashMap::new();
        let mut next: i64 = 64; // keep address 0 unmapped
        for g in &module.globals {
            next = (next + 7) & !7;
            globals.insert(g.name.clone(), next);
            let base = next as usize;
            mem[base..base + g.init.len()].copy_from_slice(&g.init);
            next += g.size as i64;
        }
        let reg_limits = module
            .functions
            .iter()
            .map(|f| {
                let mut maxg = 0;
                let mut maxf = 0;
                f.for_each_reg(|r| match r.class() {
                    RegClass::Gpr => maxg = maxg.max(r.index()),
                    RegClass::Fpr => maxf = maxf.max(r.index()),
                });
                (maxg, maxf)
            })
            .collect();
        let cache = cfg.cache.clone().map(Cache::new);
        let ccm = vec![0u8; cfg.ccm_size as usize];
        Machine {
            module,
            cfg,
            mem,
            ccm,
            globals,
            globals_end: next,
            cache,
            metrics: Metrics::default(),
            reg_limits,
            decoded: None,
            dirty_lo: usize::MAX,
            dirty_hi: 0,
        }
    }

    /// The base address of global `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownGlobal`] if the module declares no such
    /// global — a structured trap, not a panic, so one bad module cannot
    /// abort a whole campaign.
    pub fn global_base(&self, name: &str) -> Result<i64, SimError> {
        self.globals
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownGlobal(name.to_string()))
    }

    /// The global symbol table this machine laid out: symbol → base
    /// address. This is the layout [`DecodedModule::decode`] bakes
    /// `loadSym` addresses from.
    pub fn globals_map(&self) -> &HashMap<String, i64> {
        &self.globals
    }

    /// Raw bytes of global `name` (after execution, reflects stores).
    /// Host-side inspection API: panics on an unknown name (runtime code
    /// goes through [`Machine::global_base`] instead).
    pub fn global_bytes(&self, name: &str) -> &[u8] {
        let base = self.global_base(name).expect("global exists") as usize;
        let size = self.module.global(name).expect("global exists").size as usize;
        &self.mem[base..base + size]
    }

    /// Reads the `index`-th f64 of global `name`.
    pub fn read_global_f64(&self, name: &str, index: usize) -> f64 {
        let b = self.global_bytes(name);
        f64::from_le_bytes(b[index * 8..index * 8 + 8].try_into().expect("in bounds"))
    }

    /// Reads the `index`-th i32 of global `name`.
    pub fn read_global_i32(&self, name: &str, index: usize) -> i32 {
        let b = self.global_bytes(name);
        i32::from_le_bytes(b[index * 4..index * 4 + 4].try_into().expect("in bounds"))
    }

    /// Runs `entry` (which must take no parameters) to completion.
    ///
    /// Dispatches on [`MachineConfig::engine`]. The decoded engine
    /// lowers the module once (cached across runs) and executes the
    /// flat-PC form; the AST engine interprets the module directly. Both
    /// are observationally identical: same return values, same
    /// [`Metrics`], same [`SimError`] on every trap.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on any trap; see the enum for conditions.
    pub fn run(&mut self, entry: &str) -> Result<RetValues, SimError> {
        self.reset_run();
        if inject::faultpoint!("sim.unknown_global") {
            return Err(SimError::UnknownGlobal("__injected__".to_string()));
        }
        match self.cfg.engine {
            Engine::Ast => self.run_ast(entry),
            Engine::Decoded => {
                // Decode once, reuse across runs; take/restore avoids
                // borrowing `self` while the loop mutates it.
                let dec = match self.decoded.take() {
                    Some(d) => d,
                    None => DecodedModule::decode(self.module, &self.globals),
                };
                let r = self.exec_decoded(&dec, entry);
                self.decoded = Some(dec);
                r
            }
        }
    }

    /// Per-run reset: metrics, the CCM, and only the *dirty* range of
    /// main memory (tracked by the store helpers), then re-initialized
    /// globals — repeated runs stay independent without an O(mem_size)
    /// clear or a CCM reallocation.
    fn reset_run(&mut self) {
        self.metrics = Metrics::default();
        self.ccm.fill(0);
        if self.dirty_hi > self.dirty_lo {
            self.mem[self.dirty_lo..self.dirty_hi].fill(0);
        }
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
        let module = self.module;
        for g in &module.globals {
            let base = self.globals[&g.name] as usize;
            self.mem[base..base + g.init.len()].copy_from_slice(&g.init);
        }
    }

    /// The tree-walking reference interpreter ([`Engine::Ast`]).
    fn run_ast(&mut self, entry: &str) -> Result<RetValues, SimError> {
        let findex = self.module.function_indices();
        let entry_idx = *findex
            .get(entry)
            .ok_or_else(|| SimError::UnknownFunction(entry.to_string()))?;

        let mut sp: i64 = self.cfg.mem_size as i64;
        let mut frames: Vec<Frame<'m>> = Vec::new();
        let first = self.new_frame(entry_idx, &mut sp, &[])?;
        frames.push(first);

        loop {
            self.metrics.instrs += 1;
            if self.metrics.instrs > self.cfg.max_steps || inject::faultpoint!("sim.budget") {
                return Err(SimError::StepLimit);
            }
            self.metrics.max_depth = self.metrics.max_depth.max(frames.len() as u64);

            let frame = frames.last_mut().expect("at least one frame");
            let func = &self.module.functions[frame.func];
            let block = &func.blocks[frame.block];
            let instr = block
                .instrs
                .get(frame.idx)
                .ok_or(SimError::MissingTerminator)?;
            frame.idx += 1;

            match instr.spill {
                SpillKind::Store(_) => self.metrics.spill_stores += 1,
                SpillKind::Restore(_) => self.metrics.spill_restores += 1,
                SpillKind::None => {}
            }

            // Pipelined-load model: stall until every register this
            // instruction touches is ready.
            if self.cfg.load_delay.is_some() {
                let mut ready = 0u64;
                let scan = |r: Reg, ready: &mut u64, frame: &Frame| {
                    let t = match r.class() {
                        RegClass::Gpr => frame.gpr_ready[r.index() as usize],
                        RegClass::Fpr => frame.fpr_ready[r.index() as usize],
                    };
                    *ready = (*ready).max(t);
                };
                instr.op.visit_uses(|r| scan(r, &mut ready, frame));
                instr.op.visit_defs(|r| scan(r, &mut ready, frame));
                if ready > self.metrics.cycles {
                    self.metrics.stall_cycles += ready - self.metrics.cycles;
                    self.metrics.cycles = ready;
                }
            }

            // Default cost; memory ops override below.
            let op = &instr.op;
            match op {
                // ---- constants / moves / arithmetic: 1 cycle -------------
                Op::LoadI { imm, dst } => {
                    self.metrics.cycles += 1;
                    frame.gpr[dst.index() as usize] = *imm as i32 as i64;
                }
                Op::LoadF { imm, dst } => {
                    self.metrics.cycles += 1;
                    frame.fpr[dst.index() as usize] = *imm;
                }
                Op::LoadSym { sym, dst } => {
                    self.metrics.cycles += 1;
                    frame.gpr[dst.index() as usize] = match self.globals.get(sym) {
                        Some(&base) => base,
                        None => return Err(SimError::UnknownGlobal(sym.clone())),
                    };
                }
                Op::IBin {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    self.metrics.cycles += 1;
                    let a = frame.gpr[lhs.index() as usize];
                    let b = frame.gpr[rhs.index() as usize];
                    frame.gpr[dst.index() as usize] = ibin(*kind, a, b)?;
                }
                Op::IBinI {
                    kind,
                    lhs,
                    imm,
                    dst,
                } => {
                    self.metrics.cycles += 1;
                    let a = frame.gpr[lhs.index() as usize];
                    frame.gpr[dst.index() as usize] = ibin(*kind, a, *imm)?;
                }
                Op::FBin {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    self.metrics.cycles += 1;
                    let a = frame.fpr[lhs.index() as usize];
                    let b = frame.fpr[rhs.index() as usize];
                    frame.fpr[dst.index() as usize] = match kind {
                        FBinKind::Add => a + b,
                        FBinKind::Sub => a - b,
                        FBinKind::Mult => a * b,
                        FBinKind::Div => a / b,
                    };
                }
                Op::ICmp {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    self.metrics.cycles += 1;
                    let a = frame.gpr[lhs.index() as usize];
                    let b = frame.gpr[rhs.index() as usize];
                    frame.gpr[dst.index() as usize] = cmp(*kind, &a, &b);
                }
                Op::FCmp {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    self.metrics.cycles += 1;
                    let a = frame.fpr[lhs.index() as usize];
                    let b = frame.fpr[rhs.index() as usize];
                    frame.gpr[dst.index() as usize] = fcmp(*kind, a, b);
                }
                Op::I2I { src, dst } => {
                    self.metrics.cycles += 1;
                    frame.gpr[dst.index() as usize] = frame.gpr[src.index() as usize];
                }
                Op::F2F { src, dst } => {
                    self.metrics.cycles += 1;
                    frame.fpr[dst.index() as usize] = frame.fpr[src.index() as usize];
                }
                Op::I2F { src, dst } => {
                    self.metrics.cycles += 1;
                    frame.fpr[dst.index() as usize] = frame.gpr[src.index() as usize] as f64;
                }
                Op::F2I { src, dst } => {
                    self.metrics.cycles += 1;
                    frame.gpr[dst.index() as usize] = frame.fpr[src.index() as usize] as i32 as i64;
                }

                // ---- main memory: mem_latency (or cache) ----------------
                Op::Load { addr, dst } | Op::LoadAI { addr, dst, .. } => {
                    let off = match op {
                        Op::LoadAI { off, .. } => *off,
                        _ => 0,
                    };
                    let a = frame.gpr[addr.index() as usize] + off;
                    let v = self.read_i32(a)?;
                    let lat = self.mem_access(a, false);
                    let delay = self.cfg.load_delay;
                    let frame = frames.last_mut().expect("frame");
                    frame.gpr[dst.index() as usize] = v as i64;
                    let lat = match delay {
                        Some(d) => {
                            frame.gpr_ready[dst.index() as usize] = self.metrics.cycles + 1 + d;
                            1
                        }
                        None => lat,
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                Op::FLoad { addr, dst } | Op::FLoadAI { addr, dst, .. } => {
                    let off = match op {
                        Op::FLoadAI { off, .. } => *off,
                        _ => 0,
                    };
                    let a = frame.gpr[addr.index() as usize] + off;
                    let v = self.read_f64(a)?;
                    let lat = self.mem_access(a, false);
                    let delay = self.cfg.load_delay;
                    let frame = frames.last_mut().expect("frame");
                    frame.fpr[dst.index() as usize] = v;
                    let lat = match delay {
                        Some(d) => {
                            frame.fpr_ready[dst.index() as usize] = self.metrics.cycles + 1 + d;
                            1
                        }
                        None => lat,
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                Op::Store { val, addr } | Op::StoreAI { val, addr, .. } => {
                    let off = match op {
                        Op::StoreAI { off, .. } => *off,
                        _ => 0,
                    };
                    let a = frame.gpr[addr.index() as usize] + off;
                    let v = frame.gpr[val.index() as usize] as i32;
                    self.write_i32(a, v)?;
                    let lat = match self.cfg.load_delay {
                        Some(_) => 1,
                        None => self.mem_access(a, true),
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }
                Op::FStore { val, addr } | Op::FStoreAI { val, addr, .. } => {
                    let off = match op {
                        Op::FStoreAI { off, .. } => *off,
                        _ => 0,
                    };
                    let a = frame.gpr[addr.index() as usize] + off;
                    let v = frame.fpr[val.index() as usize];
                    self.write_f64(a, v)?;
                    let lat = match self.cfg.load_delay {
                        Some(_) => 1,
                        None => self.mem_access(a, true),
                    };
                    self.metrics.cycles += lat;
                    self.metrics.mem_op_cycles += lat;
                    self.metrics.main_mem_ops += 1;
                }

                // ---- CCM: ccm_latency, disjoint address space -----------
                Op::CcmStore { val, off } => {
                    let v = frame.gpr[val.index() as usize] as i32;
                    self.ccm_check(*off, 4)?;
                    self.ccm[*off as usize..*off as usize + 4].copy_from_slice(&v.to_le_bytes());
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                Op::CcmLoad { off, dst } => {
                    self.ccm_check(*off, 4)?;
                    let v = i32::from_le_bytes(
                        self.ccm[*off as usize..*off as usize + 4]
                            .try_into()
                            .expect("4 bytes"),
                    );
                    frame.gpr[dst.index() as usize] = v as i64;
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                Op::CcmFStore { val, off } => {
                    let v = frame.fpr[val.index() as usize];
                    self.ccm_check(*off, 8)?;
                    self.ccm[*off as usize..*off as usize + 8].copy_from_slice(&v.to_le_bytes());
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }
                Op::CcmFLoad { off, dst } => {
                    self.ccm_check(*off, 8)?;
                    let v = f64::from_le_bytes(
                        self.ccm[*off as usize..*off as usize + 8]
                            .try_into()
                            .expect("8 bytes"),
                    );
                    frame.fpr[dst.index() as usize] = v;
                    self.metrics.cycles += self.cfg.ccm_latency;
                    self.metrics.mem_op_cycles += self.cfg.ccm_latency;
                    self.metrics.ccm_ops += 1;
                }

                // ---- control flow ---------------------------------------
                Op::Jump { target } => {
                    self.metrics.cycles += 1;
                    frame.block = target.index();
                    frame.idx = 0;
                }
                Op::Cbr {
                    cond,
                    taken,
                    not_taken,
                } => {
                    self.metrics.cycles += 1;
                    let c = frame.gpr[cond.index() as usize];
                    let t: BlockId = if c != 0 { *taken } else { *not_taken };
                    frame.block = t.index();
                    frame.idx = 0;
                }
                Op::Call { callee, args, rets } => {
                    self.metrics.cycles += 1;
                    self.metrics.calls += 1;
                    let callee_idx = *findex
                        .get(callee.as_str())
                        .ok_or_else(|| SimError::UnknownFunction(callee.clone()))?;
                    // Evaluate arguments in the caller's frame.
                    let mut int_args = Vec::new();
                    let mut float_args = Vec::new();
                    for a in args {
                        match a.class() {
                            RegClass::Gpr => int_args.push(frame.gpr[a.index() as usize]),
                            RegClass::Fpr => float_args.push(frame.fpr[a.index() as usize]),
                        }
                    }
                    let mut new = self.new_frame(callee_idx, &mut sp, rets)?;
                    // Bind arguments to the callee's parameter registers.
                    let callee_f = &self.module.functions[callee_idx];
                    let (mut ii, mut fi) = (0, 0);
                    for p in &callee_f.params {
                        match p.class() {
                            RegClass::Gpr => {
                                new.gpr[p.index() as usize] = int_args[ii];
                                ii += 1;
                            }
                            RegClass::Fpr => {
                                new.fpr[p.index() as usize] = float_args[fi];
                                fi += 1;
                            }
                        }
                    }
                    frames.push(new);
                }
                Op::Ret { vals } => {
                    self.metrics.cycles += 1;
                    let frame = frames.pop().expect("current frame");
                    sp = frame.saved_sp;
                    if let Some(caller) = frames.last_mut() {
                        for (v, dst) in vals.iter().zip(frame.ret_dsts) {
                            match v.class() {
                                RegClass::Gpr => {
                                    caller.gpr[dst.index() as usize] = frame.gpr[v.index() as usize]
                                }
                                RegClass::Fpr => {
                                    caller.fpr[dst.index() as usize] = frame.fpr[v.index() as usize]
                                }
                            }
                        }
                    } else {
                        // Entry function returned: collect values.
                        let mut out = RetValues::default();
                        for v in vals {
                            match v.class() {
                                RegClass::Gpr => out.ints.push(frame.gpr[v.index() as usize]),
                                RegClass::Fpr => out.floats.push(frame.fpr[v.index() as usize]),
                            }
                        }
                        if let Some(c) = &self.cache {
                            self.metrics.cache = c.stats;
                        }
                        return Ok(out);
                    }
                }

                Op::Phi { .. } => return Err(SimError::PhiEncountered),
                Op::Nop => {
                    self.metrics.cycles += 1;
                }
            }
        }
    }

    fn new_frame(
        &self,
        func_idx: usize,
        sp: &mut i64,
        ret_dsts: &'m [Reg],
    ) -> Result<Frame<'m>, SimError> {
        let f: &Function = &self.module.functions[func_idx];
        let size = f.frame.frame_size() as i64;
        let saved_sp = *sp;
        let new_sp = (*sp - size) & !7;
        if new_sp < self.globals_end {
            return Err(SimError::StackOverflow);
        }
        *sp = new_sp;
        let (maxg, maxf) = self.reg_limits[func_idx];
        let mut gpr = vec![0i64; maxg as usize + 1];
        let fpr = vec![0f64; maxf as usize + 1];
        gpr[Reg::RARP.index() as usize] = new_sp;
        let (gpr_ready, fpr_ready) = if self.cfg.load_delay.is_some() {
            (vec![0u64; maxg as usize + 1], vec![0u64; maxf as usize + 1])
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(Frame {
            func: func_idx,
            block: 0,
            idx: 0,
            gpr,
            fpr,
            gpr_ready,
            fpr_ready,
            ret_dsts,
            saved_sp,
        })
    }

    pub(crate) fn mem_access(&mut self, addr: i64, is_store: bool) -> u64 {
        match &mut self.cache {
            Some(c) => c.access(addr as u64, is_store),
            None => self.cfg.mem_latency,
        }
    }

    fn check_addr(&self, addr: i64, size: i64) -> Result<usize, SimError> {
        if addr < 0 || addr + size > self.cfg.mem_size as i64 {
            Err(SimError::MemOutOfBounds { addr })
        } else {
            Ok(addr as usize)
        }
    }

    pub(crate) fn ccm_check(&self, off: u32, size: u32) -> Result<(), SimError> {
        if off + size > self.cfg.ccm_size {
            Err(SimError::CcmOutOfBounds {
                off,
                size: self.cfg.ccm_size,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn read_i32(&self, addr: i64) -> Result<i32, SimError> {
        let a = self.check_addr(addr, 4)?;
        Ok(i32::from_le_bytes(
            self.mem[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn write_i32(&mut self, addr: i64, v: i32) -> Result<(), SimError> {
        let a = self.check_addr(addr, 4)?;
        self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes());
        self.dirty_lo = self.dirty_lo.min(a);
        self.dirty_hi = self.dirty_hi.max(a + 4);
        Ok(())
    }

    pub(crate) fn read_f64(&self, addr: i64) -> Result<f64, SimError> {
        let a = self.check_addr(addr, 8)?;
        Ok(f64::from_le_bytes(
            self.mem[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn write_f64(&mut self, addr: i64, v: f64) -> Result<(), SimError> {
        let a = self.check_addr(addr, 8)?;
        self.mem[a..a + 8].copy_from_slice(&v.to_le_bytes());
        self.dirty_lo = self.dirty_lo.min(a);
        self.dirty_hi = self.dirty_hi.max(a + 8);
        Ok(())
    }
}

/// Integer ALU semantics: the machine's general-purpose registers hold
/// 32-bit signed values (Fortran `INTEGER`), kept sign-extended in the
/// interpreter's 64-bit register file. Every result wraps to 32 bits, so
/// a value spilled through a 4-byte slot reloads bit-identically.
pub(crate) fn ibin(kind: IBinKind, a: i64, b: i64) -> Result<i64, SimError> {
    let (a, b) = (a as i32, b as i32);
    let r: i32 = match kind {
        IBinKind::Add => a.wrapping_add(b),
        IBinKind::Sub => a.wrapping_sub(b),
        IBinKind::Mult => a.wrapping_mul(b),
        IBinKind::Div => {
            if b == 0 {
                return Err(SimError::DivideByZero);
            }
            a.wrapping_div(b)
        }
        IBinKind::Rem => {
            if b == 0 {
                return Err(SimError::DivideByZero);
            }
            a.wrapping_rem(b)
        }
        IBinKind::And => a & b,
        IBinKind::Or => a | b,
        IBinKind::Xor => a ^ b,
        IBinKind::Shl => a.wrapping_shl(b as u32),
        IBinKind::Shr => a.wrapping_shr(b as u32),
    };
    Ok(r as i64)
}

pub(crate) fn cmp(kind: iloc::CmpKind, a: &i64, b: &i64) -> i64 {
    use iloc::CmpKind::*;
    (match kind {
        Lt => a < b,
        Le => a <= b,
        Gt => a > b,
        Ge => a >= b,
        Eq => a == b,
        Ne => a != b,
    }) as i64
}

pub(crate) fn fcmp(kind: iloc::CmpKind, a: f64, b: f64) -> i64 {
    use iloc::CmpKind::*;
    (match kind {
        Lt => a < b,
        Le => a <= b,
        Gt => a > b,
        Ge => a >= b,
        Eq => a == b,
        Ne => a != b,
    }) as i64
}

/// Convenience: build a machine, run `entry`, and return `(values,
/// metrics)`.
///
/// # Errors
///
/// Propagates any [`SimError`] from execution.
pub fn run_module(
    module: &Module,
    cfg: MachineConfig,
    entry: &str,
) -> Result<(RetValues, Metrics), SimError> {
    let mut m = Machine::new(module, cfg);
    let v = m.run(entry)?;
    Ok((v, m.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Global, Module, RegClass};

    fn module_of(fns: Vec<Function>, globals: Vec<Global>) -> Module {
        let mut m = Module::new();
        for g in globals {
            m.push_global(g);
        }
        for f in fns {
            m.push_function(f);
        }
        m.verify().unwrap();
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(6);
        let b = fb.loadi(7);
        let c = fb.mult(a, b);
        fb.ret(&[c]);
        let m = module_of(vec![fb.finish()], vec![]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![42]);
        assert_eq!(metrics.instrs, 4);
        assert_eq!(metrics.cycles, 4); // all single-cycle
        assert_eq!(metrics.mem_op_cycles, 0);
    }

    #[test]
    fn memory_ops_cost_two_cycles() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let v = fb.loadi(5);
        fb.storeai(v, base, 0);
        let r = fb.loadai(base, 0);
        fb.ret(&[r]);
        let m = module_of(vec![fb.finish()], vec![Global::zeroed("g", 8)]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![5]);
        // 3 single-cycle + 2 two-cycle memory ops = 7 cycles.
        assert_eq!(metrics.cycles, 7);
        assert_eq!(metrics.mem_op_cycles, 4);
        assert_eq!(metrics.main_mem_ops, 2);
    }

    #[test]
    fn ccm_ops_cost_one_cycle_and_are_disjoint() {
        // Write 11 to ccm[0] and 22 to main memory address of g; they must
        // not alias.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr, RegClass::Gpr]);
        let base = fb.loadsym("g");
        let a = fb.loadi(11);
        let b = fb.loadi(22);
        fb.emit(Op::CcmStore { val: a, off: 0 });
        fb.storeai(b, base, 0);
        let x = fb.vreg(RegClass::Gpr);
        fb.emit(Op::CcmLoad { off: 0, dst: x });
        let y = fb.loadai(base, 0);
        fb.ret(&[x, y]);
        let m = module_of(vec![fb.finish()], vec![Global::zeroed("g", 8)]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![11, 22]);
        assert_eq!(metrics.ccm_ops, 2);
        assert_eq!(metrics.main_mem_ops, 2);
        // CCM ops cost 1; memory ops cost 2.
        assert_eq!(metrics.mem_op_cycles, 2 + 2 * 2);
    }

    #[test]
    fn float_roundtrip_through_memory_and_ccm() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr, RegClass::Fpr]);
        let base = fb.loadsym("g");
        let x = fb.loadf(2.75);
        fb.fstoreai(x, base, 8);
        fb.emit(Op::CcmFStore { val: x, off: 16 });
        let a = fb.floadai(base, 8);
        let b = fb.vreg(RegClass::Fpr);
        fb.emit(Op::CcmFLoad { off: 16, dst: b });
        fb.ret(&[a, b]);
        let m = module_of(vec![fb.finish()], vec![Global::zeroed("g", 16)]);
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.floats, vec![2.75, 2.75]);
    }

    #[test]
    fn loop_sums_correctly() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let m = module_of(vec![fb.finish()], vec![]);
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![45]);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut callee = FuncBuilder::new("addmul");
        let p = callee.param(RegClass::Gpr);
        let q = callee.param(RegClass::Fpr);
        callee.set_ret_classes(&[RegClass::Fpr]);
        let pf = callee.i2f(p);
        let r = callee.fmult(pf, q);
        callee.ret(&[r]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Fpr]);
        let a = main.loadi(4);
        let x = main.loadf(2.5);
        let rets = main.call("addmul", &[a, x], &[RegClass::Fpr]);
        main.ret(&[rets[0]]);

        let m = module_of(vec![callee.finish(), main.finish()], vec![]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.floats, vec![10.0]);
        assert_eq!(metrics.calls, 1);
        assert_eq!(metrics.max_depth, 2);
    }

    #[test]
    fn recursion_works_with_separate_frames() {
        // fact(n) via recursion, each frame with its own registers.
        let mut f = FuncBuilder::new("fact");
        let n = f.param(RegClass::Gpr);
        f.set_ret_classes(&[RegClass::Gpr]);
        let one = f.loadi(1);
        let c = f.icmp(iloc::CmpKind::Le, n, one);
        let base = f.block("base");
        let rec = f.block("rec");
        f.cbr(c, base, rec);
        f.switch_to(base);
        let r1 = f.loadi(1);
        f.ret(&[r1]);
        f.switch_to(rec);
        let nm1 = f.subi(n, 1);
        let sub = f.call("fact", &[nm1], &[RegClass::Gpr]);
        let r = f.mult(n, sub[0]);
        f.ret(&[r]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        let five = main.loadi(5);
        let rets = main.call("fact", &[five], &[RegClass::Gpr]);
        main.ret(&[rets[0]]);

        let m = module_of(vec![f.finish(), main.finish()], vec![]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![120]);
        assert_eq!(metrics.max_depth, 6);
    }

    #[test]
    fn frame_locals_are_per_activation() {
        // Callee writes to its frame; caller's frame unaffected.
        let mut callee = FuncBuilder::new("scribble");
        callee.alloc_local(16);
        let v = callee.loadi(99);
        callee.storeai(v, Reg::RARP, 0);
        callee.ret(&[]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        main.alloc_local(16);
        let v = main.loadi(7);
        main.storeai(v, Reg::RARP, 0);
        main.call("scribble", &[], &[]);
        let r = main.loadai(Reg::RARP, 0);
        main.ret(&[r]);

        let m = module_of(vec![callee.finish(), main.finish()], vec![]);
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![7]);
    }

    #[test]
    fn ccm_out_of_bounds_traps() {
        let mut fb = FuncBuilder::new("main");
        let a = fb.loadi(1);
        fb.emit(Op::CcmStore { val: a, off: 1022 });
        fb.ret(&[]);
        let m = module_of(vec![fb.finish()], vec![]);
        let err = run_module(&m, MachineConfig::with_ccm(1024), "main").unwrap_err();
        assert!(matches!(err, SimError::CcmOutOfBounds { .. }));
    }

    #[test]
    fn memory_out_of_bounds_traps() {
        let mut fb = FuncBuilder::new("main");
        let a = fb.loadi(-5);
        let _ = fb.loadai(a, 0);
        fb.ret(&[]);
        let m = module_of(vec![fb.finish()], vec![]);
        let err = run_module(&m, MachineConfig::default(), "main").unwrap_err();
        assert!(matches!(err, SimError::MemOutOfBounds { .. }));
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let z = fb.loadi(0);
        let q = fb.idiv(a, z);
        fb.ret(&[q]);
        let m = module_of(vec![fb.finish()], vec![]);
        assert_eq!(
            run_module(&m, MachineConfig::default(), "main").unwrap_err(),
            SimError::DivideByZero
        );
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut fb = FuncBuilder::new("main");
        let spin = fb.block("spin");
        fb.jump(spin);
        fb.switch_to(spin);
        fb.jump(spin);
        let m = module_of(vec![fb.finish()], vec![]);
        let cfg = MachineConfig {
            max_steps: 1000,
            ..MachineConfig::default()
        };
        assert_eq!(
            run_module(&m, cfg, "main").unwrap_err(),
            SimError::StepLimit
        );
    }

    #[test]
    fn spill_tags_counted() {
        // Hand-write tagged spill code.
        let mut f = Function::new("main");
        f.ret_classes = vec![RegClass::Gpr];
        let slot = f.frame.new_slot(RegClass::Gpr);
        let off = f.frame.slot(slot).offset as i64;
        let e = f.entry();
        let v = f.new_vreg(RegClass::Gpr);
        let w = f.new_vreg(RegClass::Gpr);
        f.block_mut(e)
            .instrs
            .push(iloc::Instr::new(Op::LoadI { imm: 3, dst: v }));
        f.block_mut(e).instrs.push(iloc::Instr::spill_store(
            Op::StoreAI {
                val: v,
                addr: Reg::RARP,
                off,
            },
            slot,
        ));
        f.block_mut(e).instrs.push(iloc::Instr::spill_restore(
            Op::LoadAI {
                addr: Reg::RARP,
                off,
                dst: w,
            },
            slot,
        ));
        f.block_mut(e)
            .instrs
            .push(iloc::Instr::new(Op::Ret { vals: vec![w] }));
        let m = module_of(vec![f], vec![]);
        let (v, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![3]);
        assert_eq!(metrics.spill_stores, 1);
        assert_eq!(metrics.spill_restores, 1);
    }

    #[test]
    fn cache_model_changes_latency() {
        // Two loads of the same address: miss then hit.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let a = fb.loadai(base, 0);
        let b = fb.loadai(base, 0);
        let s = fb.add(a, b);
        fb.ret(&[s]);
        let m = module_of(vec![fb.finish()], vec![Global::zeroed("g", 8)]);
        let cfg = MachineConfig {
            cache: Some(crate::cache::CacheConfig::small_direct_mapped()),
            ..MachineConfig::default()
        };
        let (_, metrics) = run_module(&m, cfg, "main").unwrap();
        assert_eq!(metrics.cache.misses, 1);
        assert_eq!(metrics.cache.hits, 1);
        // loadsym(1) + miss(10) + hit(1) + add(1) + ret(1) = 14.
        assert_eq!(metrics.cycles, 14);
    }

    #[test]
    fn phi_execution_traps() {
        let mut f = Function::new("main");
        let e = f.entry();
        let d = f.new_vreg(RegClass::Gpr);
        f.block_mut(e).instrs.push(iloc::Instr::new(Op::Phi {
            dst: d,
            args: vec![],
        }));
        f.block_mut(e)
            .instrs
            .push(iloc::Instr::new(Op::Ret { vals: vec![] }));
        let mut m = Module::new();
        m.push_function(f);
        assert_eq!(
            run_module(&m, MachineConfig::default(), "main").unwrap_err(),
            SimError::PhiEncountered
        );
    }

    #[test]
    fn globals_are_initialized() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let base = fb.loadsym("w");
        let x = fb.floadai(base, 8);
        fb.ret(&[x]);
        let m = module_of(vec![fb.finish()], vec![Global::from_f64s("w", &[1.5, 2.5])]);
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.floats, vec![2.5]);
    }

    #[test]
    fn read_global_helpers() {
        let mut fb = FuncBuilder::new("main");
        let base = fb.loadsym("out");
        let v = fb.loadf(9.25);
        fb.fstoreai(v, base, 0);
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("out", 8));
        m.push_function(fb.finish());
        let mut machine = Machine::new(&m, MachineConfig::default());
        machine.run("main").unwrap();
        assert_eq!(machine.read_global_f64("out", 0), 9.25);
    }
}

#[cfg(test)]
mod ccm_semantics_tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Module, RegClass};

    /// The CCM is a single global resource: a value spilled by the caller
    /// is visible (and clobberable) during a callee's execution — exactly
    /// why the paper's interprocedural conventions exist.
    #[test]
    fn ccm_is_shared_across_activations() {
        // callee writes 99 into ccm[0]; caller wrote 7 there before the
        // call and reads it back after → must see 99, not 7.
        let mut callee = FuncBuilder::new("clobber");
        let v = callee.loadi(99);
        callee.emit(Op::CcmStore { val: v, off: 0 });
        callee.ret(&[]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        let s = main.loadi(7);
        main.emit(Op::CcmStore { val: s, off: 0 });
        main.call("clobber", &[], &[]);
        let r = main.vreg(RegClass::Gpr);
        main.emit(Op::CcmLoad { off: 0, dst: r });
        main.ret(&[r]);

        let mut m = Module::new();
        m.push_function(callee.finish());
        m.push_function(main.finish());
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![99], "CCM must be shared, not per-frame");
    }

    /// CCM contents are zeroed at program start and survive across calls
    /// that do not touch them.
    #[test]
    fn ccm_persists_across_nonclobbering_calls() {
        let mut callee = FuncBuilder::new("noop");
        callee.ret(&[]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr, RegClass::Gpr]);
        let zero_read = main.vreg(RegClass::Gpr);
        main.emit(Op::CcmLoad {
            off: 12,
            dst: zero_read,
        });
        let s = main.loadi(1234);
        main.emit(Op::CcmStore { val: s, off: 12 });
        main.call("noop", &[], &[]);
        let r = main.vreg(RegClass::Gpr);
        main.emit(Op::CcmLoad { off: 12, dst: r });
        main.ret(&[zero_read, r]);

        let mut m = Module::new();
        m.push_function(callee.finish());
        m.push_function(main.finish());
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![0, 1234]);
    }

    /// 32-bit integer semantics: multiplication wraps exactly as a spill
    /// round-trip through a 4-byte slot would, so the two always agree.
    #[test]
    fn integer_ops_wrap_to_32_bits() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr, RegClass::Gpr]);
        let big = fb.loadi(0x4000_0000); // 2^30
        let wrapped = fb.mult(big, big); // 2^60 wraps to 0 in 32 bits
                                         // And a spill-style memory round trip of a negative value.
        let neg = fb.loadi(-5);
        let g = fb.loadsym("g");
        fb.storeai(neg, g, 0);
        let back = fb.loadai(g, 0);
        fb.ret(&[wrapped, back]);
        let mut m = Module::new();
        m.push_global(iloc::Global::zeroed("g", 8));
        m.push_function(fb.finish());
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![0, -5]);
    }

    /// Deep recursion hits the stack-overflow guard rather than UB.
    #[test]
    fn runaway_recursion_traps_as_stack_overflow() {
        let mut f = FuncBuilder::new("down");
        f.alloc_local(1 << 16); // big frame to exhaust memory quickly
        f.call("down", &[], &[]);
        f.ret(&[]);
        let mut main = FuncBuilder::new("main");
        main.call("down", &[], &[]);
        main.ret(&[]);
        let mut m = Module::new();
        m.push_function(f.finish());
        m.push_function(main.finish());
        let err = run_module(&m, MachineConfig::default(), "main").unwrap_err();
        assert_eq!(err, SimError::StackOverflow);
    }

    /// NaN and infinities survive CCM and memory round trips bit-exactly.
    #[test]
    fn special_floats_round_trip() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr, RegClass::Fpr]);
        let zero = fb.loadf(0.0);
        let nan = fb.fdiv(zero, zero);
        let one = fb.loadf(1.0);
        let inf = fb.fdiv(one, zero);
        fb.emit(Op::CcmFStore { val: nan, off: 0 });
        fb.emit(Op::CcmFStore { val: inf, off: 8 });
        let a = fb.vreg(RegClass::Fpr);
        let b = fb.vreg(RegClass::Fpr);
        fb.emit(Op::CcmFLoad { off: 0, dst: a });
        fb.emit(Op::CcmFLoad { off: 8, dst: b });
        fb.ret(&[a, b]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let (v, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        assert!(v.floats[0].is_nan());
        assert_eq!(v.floats[1], f64::INFINITY);
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Global, Module, RegClass};

    fn pipelined(delay: u64) -> MachineConfig {
        MachineConfig {
            load_delay: Some(delay),
            ..MachineConfig::default()
        }
    }

    #[test]
    fn dependent_use_stalls_independent_does_not() {
        // load; use-immediately: the use stalls for the delay.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let l = fb.loadai(base, 0);
        let r = fb.addi(l, 1); // immediately dependent
        fb.ret(&[r]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        let (_, dependent) = run_module(&m, pipelined(3), "main").unwrap();
        assert!(dependent.stall_cycles >= 2, "{:?}", dependent.stall_cycles);

        // Same program with independent work between load and use.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let l = fb.loadai(base, 0);
        let a = fb.loadi(1);
        let b = fb.addi(a, 2);
        let c = fb.addi(b, 3);
        let r = fb.add(l, c);
        fb.ret(&[r]);
        let mut m2 = Module::new();
        m2.push_global(Global::zeroed("g", 8));
        m2.push_function(fb.finish());
        let (_, hidden) = run_module(&m2, pipelined(3), "main").unwrap();
        assert_eq!(hidden.stall_cycles, 0, "independent work hides the delay");
    }

    #[test]
    fn default_model_unchanged() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let l = fb.loadai(base, 0);
        let r = fb.addi(l, 1);
        fb.ret(&[r]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        let (_, metrics) = run_module(&m, MachineConfig::default(), "main").unwrap();
        // loadsym(1) + load(2) + add(1) + ret(1) = 5; no stalls.
        assert_eq!(metrics.cycles, 5);
        assert_eq!(metrics.stall_cycles, 0);
    }

    #[test]
    fn results_identical_across_models() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let base = fb.loadsym("g");
        let acc = fb.vreg(RegClass::Fpr);
        fb.emit(Op::LoadF { imm: 0.0, dst: acc });
        fb.counted_loop(0, 8, 1, |fb, iv| {
            let off = fb.shli(iv, 3);
            let at = fb.add(base, off);
            let v = fb.floadai(at, 0);
            let t = fb.fadd(acc, v);
            fb.emit(Op::F2F { src: t, dst: acc });
            fb.fstoreai(t, at, 0);
        });
        fb.ret(&[acc]);
        let mut m = Module::new();
        let vals: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
        m.push_global(Global::from_f64s("g", &vals));
        m.push_function(fb.finish());
        let (v0, _) = run_module(&m, MachineConfig::default(), "main").unwrap();
        let (v1, m1) = run_module(&m, pipelined(2), "main").unwrap();
        assert_eq!(
            v0, v1,
            "pipelining is a timing model, not a semantics change"
        );
        assert!(m1.cycles > 0);
    }

    #[test]
    fn waw_on_inflight_register_stalls() {
        // A load into r, then an immediate overwrite of r must wait for
        // the in-flight load (in-order completion).
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let r = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadAI {
            addr: base,
            off: 0,
            dst: r,
        });
        fb.emit(Op::LoadI { imm: 7, dst: r });
        fb.ret(&[r]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        let (v, metrics) = run_module(&m, pipelined(4), "main").unwrap();
        assert_eq!(v.ints, vec![7]);
        assert!(metrics.stall_cycles > 0);
    }
}
