//! Execution counters.

use crate::cache::CacheStats;

/// Dynamic execution metrics, the quantities the paper's tables report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total cycles executed.
    pub cycles: u64,
    /// Cycles spent in memory operations — main-memory accesses *plus*
    /// CCM accesses (the parenthesized numbers in Tables 2 and 3).
    pub mem_op_cycles: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Main-memory loads/stores executed.
    pub main_mem_ops: u64,
    /// CCM spills/restores executed.
    pub ccm_ops: u64,
    /// Executions of allocator-tagged spill stores.
    pub spill_stores: u64,
    /// Executions of allocator-tagged spill restores (reloads).
    pub spill_restores: u64,
    /// Call instructions executed.
    pub calls: u64,
    /// Deepest call-stack depth reached.
    pub max_depth: u64,
    /// Cycles lost waiting for in-flight loads (pipelined model only).
    pub stall_cycles: u64,
    /// Cache statistics (all zero when no cache model is configured).
    pub cache: CacheStats,
}

impl Metrics {
    /// Fraction of all cycles spent in memory operations.
    pub fn memory_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem_op_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_fraction_handles_zero() {
        assert_eq!(Metrics::default().memory_fraction(), 0.0);
        let m = Metrics {
            cycles: 10,
            mem_op_cycles: 4,
            ..Metrics::default()
        };
        assert!((m.memory_fraction() - 0.4).abs() < 1e-12);
    }
}
