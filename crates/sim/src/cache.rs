//! Cache, write-buffer, and victim-cache models for the §4.3 ablations.
//!
//! The paper's headline results use a fixed two-cycle memory; §4.3 asks
//! how a richer hierarchy would change the picture (better cache, write
//! buffer, victim cache). These models answer that question for our
//! workloads: a set-associative write-back LRU cache, an optional
//! FIFO write buffer that absorbs store latency, and an optional victim
//! cache that catches conflict evictions.

/// Cache geometry and timing.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency of a miss (fill from main memory), in cycles.
    pub miss_latency: u64,
    /// Entries in the write buffer (0 = none). A store that hits the
    /// buffer costs `hit_latency`; the buffer drains one entry per
    /// non-memory cycle; a store finding it full pays `miss_latency`.
    pub write_buffer: u32,
    /// Lines in the fully associative victim cache (0 = none). A miss
    /// that hits the victim cache costs `hit_latency + 1`.
    pub victim_lines: u32,
}

impl CacheConfig {
    /// An 8 KiB direct-mapped cache with 32-byte lines, 1-cycle hits and
    /// 10-cycle misses — a representative late-90s L1.
    pub fn small_direct_mapped() -> CacheConfig {
        CacheConfig {
            size: 8 * 1024,
            line: 32,
            assoc: 1,
            hit_latency: 1,
            miss_latency: 10,
            write_buffer: 0,
            victim_lines: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// Counters exposed by the memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed everywhere.
    pub misses: u64,
    /// Misses that were caught by the victim cache.
    pub victim_hits: u64,
    /// Stores absorbed by the write buffer.
    pub buffered_stores: u64,
    /// Lines evicted from the cache.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.victim_hits;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.victim_hits) as f64 / total as f64
        }
    }
}

/// A set-associative write-back LRU cache with optional victim cache and
/// write buffer.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    victims: Vec<Line>,
    buffer_occupancy: u32,
    tick: u64,
    /// Access counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `line * assoc`, or non-power-of-two line size).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.assoc >= 1, "associativity must be at least 1");
        let lines_total = cfg.size / cfg.line;
        assert!(
            lines_total.is_multiple_of(cfg.assoc) && lines_total > 0,
            "size must be divisible by line * assoc"
        );
        let n_sets = (lines_total / cfg.assoc) as usize;
        let sets = vec![
            vec![
                Line {
                    tag: 0,
                    valid: false,
                    lru: 0
                };
                cfg.assoc as usize
            ];
            n_sets
        ];
        let victims = vec![
            Line {
                tag: 0,
                valid: false,
                lru: 0
            };
            cfg.victim_lines as usize
        ];
        Cache {
            cfg,
            sets,
            victims,
            buffer_occupancy: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.cfg.line as u64;
        let set = (line_addr % self.sets.len() as u64) as usize;
        (set, line_addr)
    }

    /// Simulates one access; returns its latency in cycles.
    pub fn access(&mut self, addr: u64, is_store: bool) -> u64 {
        self.tick += 1;
        // The write buffer drains over time: model one free slot per access.
        if self.buffer_occupancy > 0 {
            self.buffer_occupancy -= 1;
        }

        let (set, tag) = self.set_and_tag(addr);
        // Probe the set.
        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            self.sets[set][way].lru = self.tick;
            self.stats.hits += 1;
            return self.cfg.hit_latency;
        }

        // Probe the victim cache.
        if let Some(v) = self.victims.iter().position(|l| l.valid && l.tag == tag) {
            // Swap the victim line back into the set.
            self.stats.victim_hits += 1;
            let evicted = self.install(set, tag);
            if let Some(e) = evicted {
                self.victims[v] = Line {
                    tag: e,
                    valid: true,
                    lru: self.tick,
                };
            } else {
                self.victims[v].valid = false;
            }
            return self.cfg.hit_latency + 1;
        }

        // Full miss. Stores may be absorbed by the write buffer.
        self.stats.misses += 1;
        if is_store && self.cfg.write_buffer > 0 && self.buffer_occupancy < self.cfg.write_buffer {
            self.buffer_occupancy += 1;
            self.stats.buffered_stores += 1;
            self.install_with_victim(set, tag);
            return self.cfg.hit_latency;
        }
        self.install_with_victim(set, tag);
        self.cfg.miss_latency
    }

    /// Installs `tag` into `set`, returning the evicted tag if any.
    fn install(&mut self, set: usize, tag: u64) -> Option<u64> {
        // Empty way?
        if let Some(way) = self.sets[set].iter().position(|l| !l.valid) {
            self.sets[set][way] = Line {
                tag,
                valid: true,
                lru: self.tick,
            };
            return None;
        }
        // Evict LRU.
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("nonempty set");
        let old = self.sets[set][way].tag;
        self.sets[set][way] = Line {
            tag,
            valid: true,
            lru: self.tick,
        };
        self.stats.evictions += 1;
        Some(old)
    }

    fn install_with_victim(&mut self, set: usize, tag: u64) {
        if let Some(evicted) = self.install(set, tag) {
            if !self.victims.is_empty() {
                // Replace the LRU victim entry.
                let v = self
                    .victims
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty victim cache");
                self.victims[v] = Line {
                    tag: evicted,
                    valid: true,
                    lru: self.tick,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32, victim: u32, wb: u32) -> Cache {
        Cache::new(CacheConfig {
            size: 128,
            line: 32,
            assoc,
            hit_latency: 1,
            miss_latency: 10,
            write_buffer: wb,
            victim_lines: victim,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny(1, 0, 0);
        assert_eq!(c.access(0, false), 10); // cold miss
        assert_eq!(c.access(4, false), 1); // same line
        assert_eq!(c.access(31, false), 1);
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = tiny(1, 0, 0);
        // 4 sets × 32B lines: addresses 0 and 128 map to set 0.
        c.access(0, false);
        c.access(128, false); // evicts 0
        assert_eq!(c.access(0, false), 10); // conflict miss
        assert_eq!(c.stats.misses, 3);
    }

    #[test]
    fn associativity_removes_conflicts() {
        let mut c = tiny(2, 0, 0);
        c.access(0, false);
        c.access(128, false); // same set, other way
        assert_eq!(c.access(0, false), 1);
        assert_eq!(c.access(128, false), 1);
    }

    #[test]
    fn victim_cache_catches_conflict_evictions() {
        let mut c = tiny(1, 2, 0);
        c.access(0, false);
        c.access(128, false); // 0 evicted into victim cache
        let lat = c.access(0, false);
        assert_eq!(lat, 2, "victim hit costs hit+1");
        assert_eq!(c.stats.victim_hits, 1);
    }

    #[test]
    fn write_buffer_absorbs_store_misses() {
        let mut c = tiny(1, 0, 4);
        assert_eq!(c.access(0, true), 1, "buffered store miss");
        assert_eq!(c.stats.buffered_stores, 1);
        // Loads are never buffered.
        assert_eq!(c.access(256, false), 10);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 0, 0);
        c.access(0, false); // set 0 way A
        c.access(128, false); // set 0 way B
        c.access(0, false); // touch 0 (B is now LRU)
        c.access(256, false); // evicts 128
        assert_eq!(c.access(0, false), 1, "0 must still be cached");
        assert_eq!(c.access(128, false), 10, "128 was evicted");
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = tiny(1, 0, 0);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        let r = c.stats.hit_rate();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}
