//! Dominators, dominator tree, and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy algorithm (*A Simple, Fast
//! Dominance Algorithm*) — fittingly, by the same authors as the paper
//! this repository reproduces.

use iloc::{BlockId, Function};

/// Dominator information for a function.
///
/// Unreachable blocks have no immediate dominator and are absent from the
/// dominator tree.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b` (`idom[entry] == entry`).
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Reverse postorder of reachable blocks.
    rpo: Vec<BlockId>,
    /// `rpo_number[b]` — position of `b` in `rpo` (usize::MAX if
    /// unreachable).
    rpo_number: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.blocks.len();
        let rpo = f.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i;
        }
        let preds = f.predecessors();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry().index()] = Some(f.entry());

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Find first processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if rpo_number[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in rpo.iter().skip(1) {
            if let Some(d) = idom[b.index()] {
                children[d.index()].push(b);
            }
        }

        Dominators {
            idom,
            children,
            rpo,
            rpo_number,
        }
    }

    /// The immediate dominator of `b` (`None` for entry / unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_number[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Whether `b` is reachable from entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_number[b.index()] != usize::MAX
    }

    /// Reverse postorder of reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Preorder walk of the dominator tree from the entry block.
    pub fn dom_tree_preorder(&self, entry: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Computes the dominance frontier of every block (Cytron's
    /// definition), used for φ-placement in SSA construction.
    pub fn dominance_frontiers(&self, f: &Function) -> Vec<Vec<BlockId>> {
        let n = f.blocks.len();
        let preds = f.predecessors();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in &self.rpo {
            if preds[b.index()].len() >= 2 {
                for &p in &preds[b.index()] {
                    if !self.is_reachable(p) {
                        continue;
                    }
                    let mut runner = p;
                    let stop = match self.idom(b) {
                        Some(d) => d,
                        None => continue,
                    };
                    while runner != stop {
                        if !df[runner.index()].contains(&b) {
                            df[runner.index()].push(b);
                        }
                        match self.idom(runner) {
                            Some(d) => runner = d,
                            None => break,
                        }
                    }
                }
            }
        }
        df
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_number: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;

    /// Builds the classic diamond: entry → {a, b} → join → exit.
    fn diamond() -> (Function, [BlockId; 5]) {
        let mut fb = FuncBuilder::new("f");
        let cond = fb.loadi(1);
        let a = fb.block("a");
        let b = fb.block("b");
        let join = fb.block("join");
        let exit = fb.block("exit");
        let entry = fb.entry();
        fb.cbr(cond, a, b);
        fb.switch_to(a);
        fb.jump(join);
        fb.switch_to(b);
        fb.jump(join);
        fb.switch_to(join);
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(&[]);
        (fb.finish(), [entry, a, b, join, exit])
    }

    use iloc::Function;

    #[test]
    fn diamond_idoms() {
        let (f, [entry, a, b, join, exit]) = diamond();
        let dom = Dominators::compute(&f);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(b), Some(entry));
        assert_eq!(dom.idom(join), Some(entry)); // not a or b!
        assert_eq!(dom.idom(exit), Some(join));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, [entry, a, _b, join, exit]) = diamond();
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(join, join));
        assert!(dom.dominates(join, exit));
        assert!(!dom.dominates(a, join));
        assert!(!dom.dominates(exit, entry));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, [entry, a, b, join, _exit]) = diamond();
        let dom = Dominators::compute(&f);
        let df = dom.dominance_frontiers(&f);
        assert_eq!(df[a.index()], vec![join]);
        assert_eq!(df[b.index()], vec![join]);
        assert!(df[entry.index()].is_empty());
        assert!(df[join.index()].is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let mut fb = FuncBuilder::new("f");
        fb.counted_loop(0, 4, 1, |_, _| {});
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        let df = dom.dominance_frontiers(&f);
        // Body's frontier contains the header (back edge target).
        let header = BlockId(1);
        let body = BlockId(2);
        assert!(df[body.index()].contains(&header));
        // And the header, dominating itself on the back edge path, has
        // itself in its frontier.
        assert!(df[header.index()].contains(&header));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut fb = FuncBuilder::new("f");
        let dead = fb.block("dead");
        fb.ret(&[]);
        fb.switch_to(dead);
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(f.entry(), dead));
    }

    #[test]
    fn dom_tree_preorder_starts_at_entry() {
        let (f, [entry, ..]) = diamond();
        let dom = Dominators::compute(&f);
        let pre = dom.dom_tree_preorder(entry);
        assert_eq!(pre[0], entry);
        assert_eq!(pre.len(), 5);
    }
}
