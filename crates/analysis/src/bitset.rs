//! A dense fixed-capacity bit set used by the dataflow analyses.

/// A fixed-universe bit set over `0..len`.
///
/// All dataflow facts in this crate (live registers, reaching definitions,
/// live spill slots) are represented as `BitSet`s over a dense numbering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with universe `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] = old | (1 << b);
        old & (1 << b) == 0
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] = old & !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self ← self ∪ other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ← self ∩ other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ← self \ other`; returns `true` if `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !*b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to fit the largest element (universe = max + 1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_intersect_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70, 99]);
        assert!(!a.union_with(&b)); // no change the second time
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![70, 99]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let s: BitSet = [63usize, 64, 65, 127, 128].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 65, 127, 128]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn oob_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    const U: usize = 200;

    fn arb_elems() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(0..U, 0..64)
    }

    proptest! {
        /// BitSet agrees with a HashSet model under union / intersect /
        /// subtract / insert / remove.
        #[test]
        fn matches_hashset_model(a in arb_elems(), b in arb_elems()) {
            let mut sa = BitSet::new(U);
            let mut ha: HashSet<usize> = HashSet::new();
            for &x in &a { sa.insert(x); ha.insert(x); }
            let mut sb = BitSet::new(U);
            let mut hb: HashSet<usize> = HashSet::new();
            for &x in &b { sb.insert(x); hb.insert(x); }

            let mut un = sa.clone();
            un.union_with(&sb);
            let hu: HashSet<usize> = ha.union(&hb).copied().collect();
            prop_assert_eq!(un.iter().collect::<HashSet<_>>(), hu);

            let mut ix = sa.clone();
            ix.intersect_with(&sb);
            let hi: HashSet<usize> = ha.intersection(&hb).copied().collect();
            prop_assert_eq!(ix.iter().collect::<HashSet<_>>(), hi);

            let mut df = sa.clone();
            df.subtract(&sb);
            let hd: HashSet<usize> = ha.difference(&hb).copied().collect();
            prop_assert_eq!(df.iter().collect::<HashSet<_>>(), hd);

            prop_assert_eq!(sa.count(), ha.len());
            prop_assert_eq!(sa.is_empty(), ha.is_empty());
        }

        /// The change-reporting booleans are accurate.
        #[test]
        fn change_reports_are_accurate(a in arb_elems(), b in arb_elems()) {
            let mut sa = BitSet::new(U);
            for &x in &a { sa.insert(x); }
            let mut sb = BitSet::new(U);
            for &x in &b { sb.insert(x); }
            let before = sa.clone();
            let changed = sa.union_with(&sb);
            prop_assert_eq!(changed, sa != before);
            // Union is idempotent: second application never changes.
            prop_assert!(!sa.clone().union_with(&sb));
            let mut again = sa.clone();
            prop_assert!(!again.union_with(&sb));
        }

        /// Iteration is strictly increasing and round-trips.
        #[test]
        fn iter_sorted_and_complete(a in arb_elems()) {
            let mut s = BitSet::new(U);
            for &x in &a { s.insert(x); }
            let items: Vec<usize> = s.iter().collect();
            let mut sorted = items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&items, &sorted);
            let rebuilt: BitSet = items.iter().copied().collect();
            for &x in &items {
                prop_assert!(rebuilt.contains(x));
            }
        }
    }
}
