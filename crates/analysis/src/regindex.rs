//! Dense numbering of the registers appearing in a function.

use std::collections::HashMap;

use iloc::{Function, Reg};

/// Maps every register mentioned in a function to a dense index
/// `0..len()`, so register sets can be [`BitSet`](crate::BitSet)s.
#[derive(Clone, Debug)]
pub struct RegIndex {
    to_id: HashMap<Reg, usize>,
    from_id: Vec<Reg>,
}

impl RegIndex {
    /// Builds the numbering from every register in `f` (params, uses,
    /// defs), in first-appearance order.
    pub fn build(f: &Function) -> RegIndex {
        let mut to_id = HashMap::new();
        let mut from_id = Vec::new();
        f.for_each_reg(|r| {
            to_id.entry(r).or_insert_with(|| {
                from_id.push(r);
                from_id.len() - 1
            });
        });
        RegIndex { to_id, from_id }
    }

    /// Number of distinct registers.
    pub fn len(&self) -> usize {
        self.from_id.len()
    }

    /// Whether the function mentions no registers at all.
    pub fn is_empty(&self) -> bool {
        self.from_id.is_empty()
    }

    /// The dense id of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not appear in the function the index was built
    /// from.
    pub fn id(&self, r: Reg) -> usize {
        *self
            .to_id
            .get(&r)
            .unwrap_or_else(|| panic!("register {r} not in index"))
    }

    /// The dense id of `r`, or `None` if unknown.
    pub fn get(&self, r: Reg) -> Option<usize> {
        self.to_id.get(&r).copied()
    }

    /// The register with dense id `id`.
    pub fn reg(&self, id: usize) -> Reg {
        self.from_id[id]
    }

    /// Iterates over `(id, reg)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Reg)> + '_ {
        self.from_id.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn numbering_is_dense_and_invertible() {
        let mut fb = FuncBuilder::new("f");
        let p = fb.param(RegClass::Gpr);
        let a = fb.loadi(1);
        let b = fb.add(p, a);
        fb.ret(&[]);
        let f = fb.finish();
        let idx = RegIndex::build(&f);
        assert_eq!(idx.len(), 3);
        for r in [p, a, b] {
            assert_eq!(idx.reg(idx.id(r)), r);
        }
        assert_eq!(idx.get(Reg::gpr(999)), None);
    }

    #[test]
    fn both_classes_coexist() {
        let mut fb = FuncBuilder::new("f");
        let x = fb.loadi(1);
        let y = fb.loadf(2.0);
        fb.ret(&[]);
        let f = fb.finish();
        let idx = RegIndex::build(&f);
        assert_eq!(idx.len(), 2);
        assert_ne!(idx.id(x), idx.id(y));
    }
}
