//! Natural-loop detection and loop-nesting depth.
//!
//! Loop depth drives spill-cost estimation in the allocator (a def or use
//! at depth *d* is weighted `10^d`, the classic Chaitin heuristic used by
//! the paper's allocator).

use iloc::{BlockId, Function};

use crate::dom::Dominators;

/// A natural loop: a back edge's target (header) plus the set of blocks
/// that can reach the back edge's source without passing through the
/// header.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

/// The loop forest of a function.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// All natural loops found (loops sharing a header are merged).
    pub loops: Vec<Loop>,
    /// `depth[b]` — number of loops containing block `b`.
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Detects natural loops using dominator-identified back edges and
    /// computes per-block nesting depth.
    pub fn compute(f: &Function, dom: &Dominators) -> LoopInfo {
        let n = f.blocks.len();
        // Collect back edges: s -> h where h dominates s.
        let mut by_header: std::collections::HashMap<BlockId, Vec<BlockId>> =
            std::collections::HashMap::new();
        for b in f.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.successors(b) {
                if dom.dominates(s, b) {
                    by_header.entry(s).or_default().push(b);
                }
            }
        }

        let preds = f.predecessors();
        let mut loops = Vec::new();
        let mut depth = vec![0u32; n];
        let mut headers: Vec<BlockId> = by_header.keys().copied().collect();
        headers.sort();
        for header in headers {
            let sources = &by_header[&header];
            // Standard natural-loop body computation: walk predecessors
            // backward from every back-edge source until the header.
            let mut in_loop = vec![false; n];
            in_loop[header.index()] = true;
            let mut stack: Vec<BlockId> = Vec::new();
            for &s in sources {
                if !in_loop[s.index()] {
                    in_loop[s.index()] = true;
                    stack.push(s);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if dom.is_reachable(p) && !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..n as u32)
                .map(BlockId)
                .filter(|b| in_loop[b.index()])
                .collect();
            for &b in &blocks {
                depth[b.index()] += 1;
            }
            loops.push(Loop { header, blocks });
        }

        LoopInfo { loops, depth }
    }

    /// Loop-nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The innermost loop containing `b`, if any (smallest body).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&b))
            .min_by_key(|l| l.blocks.len())
    }

    /// Chaitin's spill-cost weight for a reference in block `b`: `10^depth`.
    pub fn weight(&self, b: BlockId) -> f64 {
        10f64.powi(self.depth(b) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;

    #[test]
    fn single_loop_detected() {
        let mut fb = FuncBuilder::new("f");
        fb.counted_loop(0, 10, 1, |_, _| {});
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.loops.len(), 1);
        let header = BlockId(1);
        let body = BlockId(2);
        assert_eq!(li.loops[0].header, header);
        assert_eq!(li.depth(header), 1);
        assert_eq!(li.depth(body), 1);
        assert_eq!(li.depth(f.entry()), 0);
        assert_eq!(li.depth(BlockId(3)), 0); // exit
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let mut fb = FuncBuilder::new("f");
        fb.counted_loop(0, 4, 1, |fb, _| {
            fb.counted_loop(0, 4, 1, |_, _| {});
        });
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.loops.len(), 2);
        let max_depth = f.block_ids().map(|b| li.depth(b)).max().unwrap();
        assert_eq!(max_depth, 2);
        // Weight grows 10× per level.
        let inner_body = f
            .block_ids()
            .find(|b| li.depth(*b) == 2)
            .expect("an inner block");
        assert_eq!(li.weight(inner_body), 100.0);
        assert_eq!(li.weight(f.entry()), 1.0);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut fb = FuncBuilder::new("f");
        fb.loadi(1);
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert!(li.loops.is_empty());
        assert!(li.innermost_containing(f.entry()).is_none());
    }

    #[test]
    fn innermost_loop_is_smallest() {
        let mut fb = FuncBuilder::new("f");
        fb.counted_loop(0, 4, 1, |fb, _| {
            fb.counted_loop(0, 4, 1, |_, _| {});
        });
        fb.ret(&[]);
        let f = fb.finish();
        let dom = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        let deepest = f.block_ids().find(|b| li.depth(*b) == 2).unwrap();
        let inner = li.innermost_containing(deepest).unwrap();
        let outer = li.loops.iter().max_by_key(|l| l.blocks.len()).unwrap();
        assert!(inner.blocks.len() < outer.blocks.len());
    }
}
