//! Call graph construction, Tarjan SCC, and bottom-up traversal order.
//!
//! The interprocedural post-pass CCM allocator (§3.1 of the paper) walks
//! the call graph bottom-up (callees before callers) and conservatively
//! marks every routine on a call-graph cycle — i.e., in a nontrivial
//! strongly connected component — as using the entire CCM.

use std::collections::HashMap;

use iloc::Module;

/// The call graph of a module, over function indices into
/// [`Module::functions`].
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[i]` — indices of functions called by function `i`
    /// (deduplicated). Calls to unknown functions are ignored.
    pub callees: Vec<Vec<usize>>,
    /// `callers[i]` — inverse edges.
    pub callers: Vec<Vec<usize>>,
    /// Function names, parallel to the module.
    pub names: Vec<String>,
}

impl CallGraph {
    /// Builds the call graph for `m`.
    pub fn build(m: &Module) -> CallGraph {
        let index: HashMap<&str, usize> = m.function_indices();
        let n = m.functions.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for (i, f) in m.functions.iter().enumerate() {
            for callee in f.callees() {
                if let Some(&j) = index.get(callee) {
                    if !callees[i].contains(&j) {
                        callees[i].push(j);
                        callers[j].push(i);
                    }
                }
            }
        }
        CallGraph {
            callees,
            callers,
            names: m.functions.iter().map(|f| f.name.clone()).collect(),
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Computes strongly connected components with Tarjan's algorithm.
    /// Components are returned in *reverse topological order* (callees'
    /// components before callers'), which is exactly the bottom-up order
    /// the interprocedural CCM allocator needs.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        struct State<'a> {
            g: &'a CallGraph,
            index: Vec<Option<u32>>,
            lowlink: Vec<u32>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next: u32,
            out: Vec<Vec<usize>>,
        }

        // Iterative Tarjan to avoid deep recursion on long call chains.
        fn strongconnect(st: &mut State<'_>, v0: usize) {
            let mut work: Vec<(usize, usize)> = vec![(v0, 0)];
            while let Some(&mut (v, ref mut ci)) = work.last_mut() {
                if *ci == 0 {
                    st.index[v] = Some(st.next);
                    st.lowlink[v] = st.next;
                    st.next += 1;
                    st.stack.push(v);
                    st.on_stack[v] = true;
                }
                if *ci < st.g.callees[v].len() {
                    let w = st.g.callees[v][*ci];
                    *ci += 1;
                    if st.index[w].is_none() {
                        work.push((w, 0));
                    } else if st.on_stack[w] {
                        st.lowlink[v] = st.lowlink[v].min(st.index[w].unwrap());
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        st.lowlink[parent] = st.lowlink[parent].min(st.lowlink[v]);
                    }
                    if st.lowlink[v] == st.index[v].unwrap() {
                        let mut comp = Vec::new();
                        loop {
                            let w = st.stack.pop().expect("stack nonempty");
                            st.on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        st.out.push(comp);
                    }
                }
            }
        }

        let n = self.len();
        let mut st = State {
            g: self,
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in 0..n {
            if st.index[v].is_none() {
                strongconnect(&mut st, v);
            }
        }
        st.out
    }

    /// Function indices on a call-graph cycle (nontrivial SCC, or a
    /// self-recursive function).
    pub fn recursive_functions(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for comp in self.sccs() {
            if comp.len() > 1 {
                out.extend(comp);
            } else {
                let v = comp[0];
                if self.callees[v].contains(&v) {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A bottom-up processing order: every function appears after all
    /// functions it (transitively) calls, except within cycles, whose
    /// members appear in arbitrary relative order.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        self.sccs().into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::Module;

    fn call_only(name: &str, callees: &[&str]) -> iloc::Function {
        let mut fb = FuncBuilder::new(name);
        for c in callees {
            fb.call(*c, &[], &[]);
        }
        fb.ret(&[]);
        fb.finish()
    }

    fn module(fns: Vec<iloc::Function>) -> Module {
        let mut m = Module::new();
        for f in fns {
            m.push_function(f);
        }
        m
    }

    #[test]
    fn simple_chain_bottom_up() {
        // main → a → b
        let m = module(vec![
            call_only("main", &["a"]),
            call_only("a", &["b"]),
            call_only("b", &[]),
        ]);
        let g = CallGraph::build(&m);
        let order = g.bottom_up_order();
        let pos = |n: &str| order.iter().position(|&i| g.names[i] == n).unwrap();
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
        assert!(g.recursive_functions().is_empty());
    }

    #[test]
    fn mutual_recursion_detected() {
        let m = module(vec![
            call_only("main", &["even"]),
            call_only("even", &["odd"]),
            call_only("odd", &["even"]),
        ]);
        let g = CallGraph::build(&m);
        let rec = g.recursive_functions();
        assert_eq!(rec.len(), 2);
        let names: Vec<&str> = rec.iter().map(|&i| g.names[i].as_str()).collect();
        assert!(names.contains(&"even") && names.contains(&"odd"));
    }

    #[test]
    fn self_recursion_detected() {
        let m = module(vec![call_only("fact", &["fact"])]);
        let g = CallGraph::build(&m);
        assert_eq!(g.recursive_functions(), vec![0]);
    }

    #[test]
    fn diamond_call_graph_order() {
        // main → {l, r} → leaf
        let m = module(vec![
            call_only("main", &["l", "r"]),
            call_only("l", &["leaf"]),
            call_only("r", &["leaf"]),
            call_only("leaf", &[]),
        ]);
        let g = CallGraph::build(&m);
        let order = g.bottom_up_order();
        let pos = |n: &str| order.iter().position(|&i| g.names[i] == n).unwrap();
        assert!(pos("leaf") < pos("l"));
        assert!(pos("leaf") < pos("r"));
        assert!(pos("l") < pos("main"));
        assert!(pos("r") < pos("main"));
        // Callers table is the inverse of callees.
        assert_eq!(g.callers[3].len(), 2);
    }

    #[test]
    fn duplicate_calls_deduplicated() {
        let m = module(vec![call_only("main", &["f", "f"]), call_only("f", &[])]);
        let g = CallGraph::build(&m);
        assert_eq!(g.callees[0], vec![1]);
    }
}
