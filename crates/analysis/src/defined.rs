//! Must-be-defined registers: a forward/intersection instance of the
//! dataflow framework.
//!
//! A register is *definitely defined* at a point if every path from the
//! function entry to that point writes it first. The post-allocation
//! checker uses this to prove that allocated code never reads a physical
//! register before giving it a value; the analysis is phrased over the
//! generic [`DataflowProblem`] trait so it composes with the same solver
//! as liveness and reaching definitions.
//!
//! Transfer semantics: parameters and the activation-record pointer are
//! defined on entry; an ordinary definition adds its target; a call first
//! *kills* every caller-saved register (their contents are garbage after
//! the call) and then defines the call's return registers.

use iloc::{Function, Instr, Op, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{DataflowProblem, Direction, Meet};
use crate::regindex::RegIndex;

/// The must-be-defined-registers problem over a function's [`RegIndex`]
/// universe.
pub struct DefinedRegs<'a> {
    index: &'a RegIndex,
    params: Vec<Reg>,
    call_kills: Vec<Reg>,
}

impl<'a> DefinedRegs<'a> {
    /// Builds the problem for `f`. `call_kills` lists the registers whose
    /// contents do not survive a call (the caller-saved set; empty under
    /// the paper's default convention).
    pub fn new(f: &Function, index: &'a RegIndex, call_kills: Vec<Reg>) -> DefinedRegs<'a> {
        DefinedRegs {
            index,
            params: f.params.clone(),
            call_kills,
        }
    }

    /// Applies one instruction's effect to a defined set: call kills,
    /// then definitions. Registers outside the index are ignored.
    pub fn apply(&self, instr: &Instr, defined: &mut BitSet) {
        if matches!(instr.op, Op::Call { .. }) {
            for &r in &self.call_kills {
                if let Some(id) = self.index.get(r) {
                    defined.remove(id);
                }
            }
        }
        instr.op.visit_defs(|r| {
            if let Some(id) = self.index.get(r) {
                defined.insert(id);
            }
        });
    }
}

impl DataflowProblem for DefinedRegs<'_> {
    fn universe(&self) -> usize {
        self.index.len()
    }

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn meet(&self) -> Meet {
        Meet::Intersection
    }

    fn gen_set(&self, f: &Function, b: iloc::BlockId) -> BitSet {
        // Simulate the block: `gen` holds registers defined since entry,
        // `kill` those killed (by calls) and not since redefined. The
        // block's transfer is then out = gen ∪ (in − kill).
        let (gen, _) = self.block_transfer(f, b);
        gen
    }

    fn kill_set(&self, f: &Function, b: iloc::BlockId) -> BitSet {
        let (_, kill) = self.block_transfer(f, b);
        kill
    }

    fn boundary(&self) -> BitSet {
        let mut set = BitSet::new(self.index.len());
        if let Some(id) = self.index.get(Reg::RARP) {
            set.insert(id);
        }
        for &p in &self.params {
            if let Some(id) = self.index.get(p) {
                set.insert(id);
            }
        }
        set
    }
}

impl DefinedRegs<'_> {
    fn block_transfer(&self, f: &Function, b: iloc::BlockId) -> (BitSet, BitSet) {
        let n = self.index.len();
        let mut gen = BitSet::new(n);
        let mut kill = BitSet::new(n);
        for instr in &f.block(b).instrs {
            if matches!(instr.op, Op::Call { .. }) {
                for &r in &self.call_kills {
                    if let Some(id) = self.index.get(r) {
                        gen.remove(id);
                        kill.insert(id);
                    }
                }
            }
            instr.op.visit_defs(|r| {
                if let Some(id) = self.index.get(r) {
                    kill.remove(id);
                    gen.insert(id);
                }
            });
        }
        (gen, kill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::solve;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn params_and_rarp_defined_on_entry() {
        let mut fb = FuncBuilder::new("f");
        let p = fb.param(RegClass::Gpr);
        let x = fb.loadi(1);
        let y = fb.add(p, x);
        fb.ret(&[]);
        let f = fb.finish();
        let index = RegIndex::build(&f);
        let problem = DefinedRegs::new(&f, &index, Vec::new());
        let sol = solve(&f, &problem);
        let entry_in = &sol.in_[f.entry().index()];
        assert!(entry_in.contains(index.id(p)));
        assert!(!entry_in.contains(index.id(x)));
        let _ = y;
    }

    #[test]
    fn branch_join_keeps_only_common_defs() {
        // entry branches to two blocks; only one defines `x`. At the join,
        // `x` is not definitely defined.
        let mut fb = FuncBuilder::new("f");
        let c = fb.loadi(0);
        let x = fb.vreg(RegClass::Gpr);
        let then_b = fb.block("then");
        let else_b = fb.block("else");
        let join = fb.block("join");
        fb.cbr(c, then_b, else_b);
        fb.switch_to(then_b);
        fb.emit(Op::LoadI { imm: 1, dst: x });
        fb.jump(join);
        fb.switch_to(else_b);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let f = fb.finish();
        let index = RegIndex::build(&f);
        let problem = DefinedRegs::new(&f, &index, Vec::new());
        let sol = solve(&f, &problem);
        assert!(!sol.in_[join.index()].contains(index.id(x)));
        assert!(sol.in_[join.index()].contains(index.id(c)));
    }

    #[test]
    fn calls_kill_caller_saved() {
        let mut fb = FuncBuilder::new("f");
        let x = fb.loadi(1);
        fb.call("g", &[], &[]);
        fb.ret(&[]);
        let mut f = fb.finish();
        // Split so the call's effect crosses a block boundary: append a
        // block after the call.
        let index = RegIndex::build(&f);
        let problem = DefinedRegs::new(&f, &index, vec![x]);
        let sol = solve(&f, &problem);
        // Within-block semantics: replay with `apply`.
        let mut defined = sol.in_[f.entry().index()].clone();
        let e = f.entry();
        let instrs = std::mem::take(&mut f.block_mut(e).instrs);
        let mut after_call = None;
        for instr in &instrs {
            problem.apply(instr, &mut defined);
            if matches!(instr.op, Op::Call { .. }) {
                after_call = Some(defined.contains(index.id(x)));
            }
        }
        assert_eq!(after_call, Some(false));
    }
}
