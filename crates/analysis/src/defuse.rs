//! Def-use chains over a function body.

use std::collections::HashMap;

use iloc::{BlockId, Function, Reg};

/// A location in a function body: block plus instruction index.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstrRef {
    /// The containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub index: usize,
}

/// Definition and use sites of every register in a function.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    defs: HashMap<Reg, Vec<InstrRef>>,
    uses: HashMap<Reg, Vec<InstrRef>>,
}

impl DefUse {
    /// Builds the chains for `f`.
    pub fn build(f: &Function) -> DefUse {
        let mut du = DefUse::default();
        for b in f.block_ids() {
            for (i, instr) in f.block(b).instrs.iter().enumerate() {
                let site = InstrRef { block: b, index: i };
                instr.op.visit_defs(|r| {
                    du.defs.entry(r).or_default().push(site);
                });
                instr.op.visit_uses(|r| {
                    du.uses.entry(r).or_default().push(site);
                });
            }
        }
        du
    }

    /// Definition sites of `r` (empty slice if none).
    pub fn defs(&self, r: Reg) -> &[InstrRef] {
        self.defs.get(&r).map_or(&[], |v| v.as_slice())
    }

    /// Use sites of `r` (empty slice if none).
    pub fn uses(&self, r: Reg) -> &[InstrRef] {
        self.uses.get(&r).map_or(&[], |v| v.as_slice())
    }

    /// All registers with at least one def or use.
    pub fn registers(&self) -> impl Iterator<Item = Reg> + '_ {
        let mut regs: Vec<Reg> = self.defs.keys().chain(self.uses.keys()).copied().collect();
        regs.sort();
        regs.dedup();
        regs.into_iter()
    }

    /// Whether `r` is completely dead (defined but never used).
    pub fn is_dead(&self, r: Reg) -> bool {
        !self.defs(r).is_empty() && self.uses(r).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn chains_record_sites() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.add(a, a);
        fb.ret(&[b]);
        let f = fb.finish();
        let du = DefUse::build(&f);
        assert_eq!(du.defs(a).len(), 1);
        assert_eq!(du.uses(a).len(), 2); // both operands of the add
        assert_eq!(du.uses(b).len(), 1); // the ret
        assert_eq!(du.defs(b)[0].index, 1);
    }

    #[test]
    fn dead_detection() {
        let mut fb = FuncBuilder::new("f");
        let d = fb.loadi(1);
        fb.ret(&[]);
        let f = fb.finish();
        let du = DefUse::build(&f);
        assert!(du.is_dead(d));
    }

    #[test]
    fn registers_iterates_everything_once() {
        let mut fb = FuncBuilder::new("f");
        let a = fb.loadi(1);
        let b = fb.add(a, a);
        fb.ret(&[]);
        let f = fb.finish();
        let du = DefUse::build(&f);
        let regs: Vec<Reg> = du.registers().collect();
        assert_eq!(regs.len(), 2);
        assert!(regs.contains(&b));
    }
}
