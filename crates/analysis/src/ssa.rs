//! SSA construction and destruction.
//!
//! Construction is the classic Cytron-style algorithm with semi-pruned
//! φ-placement (Briggs): only *global* names — those live across a block
//! boundary — get φ-nodes, placed on the iterated dominance frontier of
//! their definition blocks, followed by a renaming walk over the
//! dominator tree.
//!
//! Destruction splits critical edges and lowers each block's φ-set as a
//! *parallel* copy, sequentialized with a temporary when the copies form a
//! cycle (the lost-copy and swap problems).

use std::collections::{HashMap, HashSet};

use iloc::{BlockId, Function, Instr, Op, Reg};

use crate::dom::Dominators;

/// Converts `f` to semi-pruned SSA form. Returns the number of φ-nodes
/// inserted.
pub fn to_ssa(f: &mut Function) -> usize {
    let dom = Dominators::compute(f);
    let df = dom.dominance_frontiers(f);

    // Find global names (used in some block without a prior def in that
    // block) and the set of blocks defining each name. Physical registers
    // (e.g. RARP) are never renamed.
    let mut globals: HashSet<Reg> = HashSet::new();
    let mut def_blocks: HashMap<Reg, Vec<BlockId>> = HashMap::new();
    for b in f.block_ids() {
        let mut killed: HashSet<Reg> = HashSet::new();
        for instr in &f.block(b).instrs {
            instr.op.visit_uses(|r| {
                if r.is_virtual() && !killed.contains(&r) {
                    globals.insert(r);
                }
            });
            instr.op.visit_defs(|r| {
                if r.is_virtual() {
                    killed.insert(r);
                    def_blocks.entry(r).or_default().push(b);
                }
            });
        }
    }
    for p in f.params.clone() {
        def_blocks.entry(p).or_default().push(f.entry());
    }

    // Place φ-nodes on the iterated dominance frontier of each global's
    // definition blocks.
    let mut phi_count = 0;
    let preds = f.predecessors();
    let mut names: Vec<Reg> = globals
        .iter()
        .copied()
        .filter(|r| def_blocks.contains_key(r))
        .collect();
    names.sort();
    for name in names {
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        let mut work: Vec<BlockId> = def_blocks[&name].clone();
        while let Some(d) = work.pop() {
            for &frontier in &df[d.index()] {
                if has_phi.insert(frontier) {
                    let args = preds[frontier.index()].iter().map(|&p| (p, name)).collect();
                    f.block_mut(frontier)
                        .instrs
                        .insert(0, Instr::new(Op::Phi { dst: name, args }));
                    phi_count += 1;
                    work.push(frontier);
                }
            }
        }
    }

    // Renaming walk over the dominator tree.
    let mut stacks: HashMap<Reg, Vec<Reg>> = HashMap::new();
    // Parameters are defined on entry as themselves.
    for p in f.params.clone() {
        stacks.entry(p).or_default().push(p);
    }
    rename_block(f, &dom, f.entry(), &mut stacks);
    f.reset_vreg_counter();
    phi_count
}

fn top_of(stacks: &HashMap<Reg, Vec<Reg>>, r: Reg) -> Reg {
    if !r.is_virtual() {
        return r;
    }
    stacks.get(&r).and_then(|s| s.last()).copied().unwrap_or(r)
}

fn rename_block(
    f: &mut Function,
    dom: &Dominators,
    b: BlockId,
    stacks: &mut HashMap<Reg, Vec<Reg>>,
) {
    let mut pushed: Vec<Reg> = Vec::new();

    // Rewrite instruction by instruction: uses first (except φ), then defs.
    let num_instrs = f.block(b).instrs.len();
    for i in 0..num_instrs {
        let is_phi = matches!(f.block(b).instrs[i].op, Op::Phi { .. });
        if !is_phi {
            let snapshot: HashMap<Reg, Reg> = {
                let mut m = HashMap::new();
                f.block(b).instrs[i].op.visit_uses(|r| {
                    m.insert(r, top_of(stacks, r));
                });
                m
            };
            f.block_mut(b).instrs[i].op.map_uses(|r| snapshot[&r]);
        }
        // New name for each def.
        let defs: Vec<Reg> = f.block(b).instrs[i]
            .op
            .defs()
            .into_iter()
            .filter(|r| r.is_virtual())
            .collect();
        let mut renames = HashMap::new();
        for d in defs {
            let fresh = f.new_vreg(d.class());
            stacks.entry(d).or_default().push(fresh);
            pushed.push(d);
            renames.insert(d, fresh);
        }
        f.block_mut(b).instrs[i]
            .op
            .map_defs(|r| renames.get(&r).copied().unwrap_or(r));
    }

    // Fill in φ arguments of successors for the edge b → s.
    for s in f.successors(b) {
        let phi_count = f.block(s).phi_count();
        for i in 0..phi_count {
            let mut snapshot: Option<Reg> = None;
            if let Op::Phi { args, .. } = &f.block(s).instrs[i].op {
                for (pb, r) in args {
                    if *pb == b {
                        snapshot = Some(top_of(stacks, *r));
                    }
                }
            }
            if let Some(new) = snapshot {
                if let Op::Phi { args, .. } = &mut f.block_mut(s).instrs[i].op {
                    for (pb, r) in args {
                        if *pb == b {
                            *r = new;
                        }
                    }
                }
            }
        }
    }

    // Recurse into dominator-tree children.
    for &c in dom.children(b).to_vec().iter() {
        rename_block(f, dom, c, stacks);
    }

    // Pop this block's definitions.
    for d in pushed {
        stacks.get_mut(&d).expect("pushed").pop();
    }
}

/// Splits every critical edge (from a block with multiple successors to a
/// block with multiple predecessors), updating φ-nodes. Returns the number
/// of edges split.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let mut split = 0;
    loop {
        let preds = f.predecessors();
        let mut found: Option<(BlockId, BlockId)> = None;
        'outer: for b in f.block_ids() {
            let succs = f.successors(b);
            if succs.len() < 2 {
                continue;
            }
            for s in succs {
                if preds[s.index()].len() >= 2 {
                    found = Some((b, s));
                    break 'outer;
                }
            }
        }
        let (from, to) = match found {
            Some(e) => e,
            None => return split,
        };
        let label = format!("split{}_{}_{}", split, from.index(), to.index());
        let mid = f.add_block(label);
        f.block_mut(mid)
            .instrs
            .push(Instr::new(Op::Jump { target: to }));
        // Retarget exactly the edges from → to through mid, and φ entries.
        if let Some(t) = f.block_mut(from).terminator_mut() {
            t.map_successors(|x| if x == to { mid } else { x });
        }
        let phis = f.block(to).phi_count();
        for i in 0..phis {
            if let Op::Phi { args, .. } = &mut f.block_mut(to).instrs[i].op {
                for (pb, _) in args {
                    if *pb == from {
                        *pb = mid;
                    }
                }
            }
        }
        split += 1;
    }
}

/// Converts out of SSA: splits critical edges, lowers φ-sets to parallel
/// copies in predecessors, and removes the φ-nodes. Returns the number of
/// copies inserted.
pub fn from_ssa(f: &mut Function) -> usize {
    split_critical_edges(f);
    let mut copies_inserted = 0;

    for b in f.block_ids().collect::<Vec<_>>() {
        let phi_count = f.block(b).phi_count();
        if phi_count == 0 {
            continue;
        }
        // Gather the per-predecessor parallel copy sets.
        let mut per_pred: HashMap<BlockId, Vec<(Reg, Reg)>> = HashMap::new();
        for i in 0..phi_count {
            if let Op::Phi { dst, args } = &f.block(b).instrs[i].op {
                for (p, src) in args {
                    per_pred.entry(*p).or_default().push((*src, *dst));
                }
            }
        }
        // Remove the φ-nodes.
        f.block_mut(b).instrs.drain(0..phi_count);

        // Emit each parallel copy at the end of its predecessor.
        let mut pred_ids: Vec<BlockId> = per_pred.keys().copied().collect();
        pred_ids.sort();
        for p in pred_ids {
            let seq = sequentialize_parallel_copy(f, per_pred[&p].clone());
            copies_inserted += seq.len();
            for (src, dst) in seq {
                let op = match src.class() {
                    iloc::RegClass::Gpr => Op::I2I { src, dst },
                    iloc::RegClass::Fpr => Op::F2F { src, dst },
                };
                f.block_mut(p).insert_before_terminator(Instr::new(op));
            }
        }
    }
    f.reset_vreg_counter();
    copies_inserted
}

/// Orders a parallel copy `{(src → dst)}` into a sequential list, breaking
/// cycles with fresh temporaries.
fn sequentialize_parallel_copy(f: &mut Function, mut copies: Vec<(Reg, Reg)>) -> Vec<(Reg, Reg)> {
    // Drop no-ops.
    copies.retain(|(s, d)| s != d);
    let mut out = Vec::new();
    while !copies.is_empty() {
        // A copy whose destination is not the source of any pending copy
        // can be emitted safely.
        if let Some(pos) = copies
            .iter()
            .position(|(_, d)| !copies.iter().any(|(s2, _)| s2 == d))
        {
            let c = copies.remove(pos);
            out.push(c);
        } else {
            // Every destination is also a pending source: a cycle. Break
            // it by saving one destination in a temporary.
            let (_, d) = copies[0];
            let temp = f.new_vreg(d.class());
            out.push((d, temp));
            for (s, _) in copies.iter_mut() {
                if *s == d {
                    *s = temp;
                }
            }
        }
    }
    out
}

/// Checks the defining property of strict SSA: every virtual register has
/// at most one definition. Returns the offending register if violated.
pub fn check_single_def(f: &Function) -> Result<(), Reg> {
    let mut seen: HashSet<Reg> = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            let mut bad = None;
            i.op.visit_defs(|r| {
                if r.is_virtual() && !seen.insert(r) {
                    bad = Some(r);
                }
            });
            if let Some(r) = bad {
                return Err(r);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, RegClass};

    /// entry: x=1; cbr → (a: x=2) / (b: x=3); join: use x.
    fn diamond_with_merge() -> Function {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 1, dst: x });
        let cond = fb.loadi(0);
        let a = fb.block("a");
        let b = fb.block("b");
        let join = fb.block("join");
        fb.cbr(cond, a, b);
        fb.switch_to(a);
        fb.emit(Op::LoadI { imm: 2, dst: x });
        fb.jump(join);
        fb.switch_to(b);
        fb.emit(Op::LoadI { imm: 3, dst: x });
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[x]);
        fb.finish()
    }

    #[test]
    fn construction_places_phi_at_join() {
        let mut f = diamond_with_merge();
        let phis = to_ssa(&mut f);
        assert_eq!(phis, 1);
        verify_function(&f).unwrap();
        check_single_def(&f).expect("strict SSA");
        // The φ must be at the head of the join block with two args.
        let join = BlockId(3);
        match &f.block(join).instrs[0].op {
            Op::Phi { args, .. } => assert_eq!(args.len(), 2),
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn loop_gets_phi_at_header() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let phis = to_ssa(&mut f);
        // acc and iv both merge at the header.
        assert!(phis >= 2, "expected ≥2 phis, got {phis}");
        verify_function(&f).unwrap();
        check_single_def(&f).expect("strict SSA");
    }

    #[test]
    fn round_trip_restores_phi_free_code() {
        let mut f = diamond_with_merge();
        to_ssa(&mut f);
        from_ssa(&mut f);
        verify_function(&f).unwrap();
        for b in &f.blocks {
            for i in &b.instrs {
                assert!(!matches!(i.op, Op::Phi { .. }), "leftover phi");
            }
        }
    }

    #[test]
    fn destruction_inserts_copies_on_both_arms() {
        let mut f = diamond_with_merge();
        to_ssa(&mut f);
        let copies = from_ssa(&mut f);
        assert!(copies >= 2, "expected a copy per arm, got {copies}");
    }

    #[test]
    fn critical_edge_splitting_preserves_structure() {
        // entry cbr → (join, other); other jump → join. The edge
        // entry→join is critical (entry has 2 succs, join has 2 preds).
        let mut fb = FuncBuilder::new("f");
        let cond = fb.loadi(1);
        let join = fb.block("join");
        let other = fb.block("other");
        fb.cbr(cond, join, other);
        fb.switch_to(other);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let mut f = fb.finish();
        let n = split_critical_edges(&mut f);
        assert_eq!(n, 1);
        verify_function(&f).unwrap();
        // Entry no longer branches straight to join.
        assert!(!f.successors(f.entry()).contains(&join));
    }

    #[test]
    fn parallel_copy_swap_uses_temp() {
        let mut f = Function::new("t");
        let a = f.new_vreg(RegClass::Gpr);
        let b = f.new_vreg(RegClass::Gpr);
        let seq = sequentialize_parallel_copy(&mut f, vec![(a, b), (b, a)]);
        // A swap requires three moves via a temporary.
        assert_eq!(seq.len(), 3);
        // Simulate the sequence and check the swap semantics.
        let mut env: HashMap<Reg, i64> = HashMap::new();
        env.insert(a, 1);
        env.insert(b, 2);
        for (s, d) in &seq {
            let v = env[s];
            env.insert(*d, v);
        }
        assert_eq!(env[&a], 2);
        assert_eq!(env[&b], 1);
    }

    #[test]
    fn parallel_copy_chain_ordering() {
        let mut f = Function::new("t");
        let a = f.new_vreg(RegClass::Gpr);
        let b = f.new_vreg(RegClass::Gpr);
        let c = f.new_vreg(RegClass::Gpr);
        // b→c must run before a→b.
        let seq = sequentialize_parallel_copy(&mut f, vec![(a, b), (b, c)]);
        assert_eq!(seq, vec![(b, c), (a, b)]);
    }

    #[test]
    fn ssa_renaming_keeps_rarp_untouched() {
        let mut fb = FuncBuilder::new("f");
        let v = fb.loadai(Reg::RARP, 8);
        fb.storeai(v, Reg::RARP, 16);
        fb.ret(&[]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        let mut saw_rarp = 0;
        f.for_each_reg(|r| {
            if r == Reg::RARP {
                saw_rarp += 1;
            }
        });
        assert_eq!(saw_rarp, 2, "RARP must not be renamed");
    }
}
