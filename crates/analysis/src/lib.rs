#![warn(missing_docs)]
//! Program analyses over the ILOC-like IR.
//!
//! This crate supplies the analysis substrate the register allocator and
//! the CCM passes are built on:
//!
//! * [`BitSet`] — dense bit sets for dataflow facts;
//! * [`dataflow`] — a generic gen/kill worklist solver;
//! * [`Dominators`] — Cooper–Harvey–Kennedy dominators, dominator tree,
//!   and dominance frontiers;
//! * [`Liveness`] — per-block and per-instruction register liveness;
//! * [`LoopInfo`] — natural loops and nesting depth (spill-cost weights);
//! * [`ssa`] — SSA construction (semi-pruned) and destruction (with
//!   parallel-copy sequentialization);
//! * [`ReachingDefs`] — reaching definitions (a framework instance);
//! * [`DefUse`] — def-use chains;
//! * [`CallGraph`] — call graph, Tarjan SCCs, bottom-up order for the
//!   interprocedural CCM allocator.
//!
//! # Example
//!
//! ```
//! use analysis::{Dominators, Liveness, LoopInfo};
//! use iloc::builder::FuncBuilder;
//! use iloc::RegClass;
//!
//! let mut fb = FuncBuilder::new("f");
//! fb.set_ret_classes(&[RegClass::Gpr]);
//! let acc = fb.vreg(RegClass::Gpr);
//! fb.emit(iloc::Op::LoadI { imm: 0, dst: acc });
//! fb.counted_loop(0, 10, 1, |fb, iv| {
//!     let t = fb.add(acc, iv);
//!     fb.emit(iloc::Op::I2I { src: t, dst: acc });
//! });
//! fb.ret(&[acc]);
//! let f = fb.finish();
//!
//! let dom = Dominators::compute(&f);
//! let loops = LoopInfo::compute(&f, &dom);
//! let live = Liveness::compute(&f);
//! assert_eq!(loops.loops.len(), 1);
//! assert!(live.max_pressure(&f, RegClass::Gpr) >= 2);
//! ```

pub mod bitset;
pub mod callgraph;
pub mod dataflow;
pub mod defined;
pub mod defuse;
pub mod dom;
pub mod liveness;
pub mod loops;
pub mod reaching;
pub mod regindex;
pub mod ssa;

pub use bitset::BitSet;
pub use callgraph::CallGraph;
pub use dataflow::{solve, DataflowProblem, Direction, Meet, Solution};
pub use defined::DefinedRegs;
pub use defuse::{DefUse, InstrRef};
pub use dom::Dominators;
pub use liveness::Liveness;
pub use loops::{Loop, LoopInfo};
pub use reaching::{DefSite, ReachingDefs};
pub use regindex::RegIndex;
pub use ssa::{check_single_def, from_ssa, split_critical_edges, to_ssa};
