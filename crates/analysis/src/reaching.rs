//! Reaching definitions — a forward/union instance of the generic
//! dataflow framework.

use iloc::{BlockId, Function, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, DataflowProblem, Direction, Meet};

/// A definition site: the `index`-th instruction of `block` defines `reg`
/// (a register may be defined by several sites in non-SSA code).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DefSite {
    /// The containing block.
    pub block: BlockId,
    /// The instruction index within the block.
    pub index: usize,
    /// The register defined.
    pub reg: Reg,
}

/// Reaching-definitions solution: which definition sites may reach the
/// top of each block.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites, in program order; dense ids index this list.
    pub sites: Vec<DefSite>,
    /// `reach_in[b]` — site ids that may reach the top of block `b`.
    pub reach_in: Vec<BitSet>,
    /// `reach_out[b]` — site ids that may reach the bottom of block `b`.
    pub reach_out: Vec<BitSet>,
}

struct Problem<'a> {
    sites: &'a [DefSite],
    /// For each block: ids of sites in it, in order.
    by_block: &'a [Vec<usize>],
}

impl DataflowProblem for Problem<'_> {
    fn universe(&self) -> usize {
        self.sites.len()
    }
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_set(&self, _f: &Function, b: BlockId) -> BitSet {
        // Downward-exposed defs: the last def of each register in b.
        let mut gen = BitSet::new(self.sites.len());
        let mut last: std::collections::HashMap<Reg, usize> = std::collections::HashMap::new();
        for &id in &self.by_block[b.index()] {
            last.insert(self.sites[id].reg, id);
        }
        for (_, id) in last {
            gen.insert(id);
        }
        gen
    }
    fn kill_set(&self, _f: &Function, b: BlockId) -> BitSet {
        // Every site (anywhere) defining a register that b redefines.
        let mut kill = BitSet::new(self.sites.len());
        let defined: std::collections::HashSet<Reg> = self.by_block[b.index()]
            .iter()
            .map(|&id| self.sites[id].reg)
            .collect();
        for (id, s) in self.sites.iter().enumerate() {
            if defined.contains(&s.reg) {
                kill.insert(id);
            }
        }
        kill
    }
}

impl ReachingDefs {
    /// Computes reaching definitions for `f`.
    pub fn compute(f: &Function) -> ReachingDefs {
        let mut sites = Vec::new();
        for b in f.block_ids() {
            for (i, instr) in f.block(b).instrs.iter().enumerate() {
                instr.op.visit_defs(|reg| {
                    sites.push(DefSite {
                        block: b,
                        index: i,
                        reg,
                    });
                });
            }
        }
        let mut by_block = vec![Vec::new(); f.blocks.len()];
        for (id, s) in sites.iter().enumerate() {
            by_block[s.block.index()].push(id);
        }
        let sol = solve(
            f,
            &Problem {
                sites: &sites,
                by_block: &by_block,
            },
        );
        ReachingDefs {
            sites,
            reach_in: sol.in_,
            reach_out: sol.out,
        }
    }

    /// The definition sites of `reg` that may reach the top of `b`.
    pub fn reaching(&self, b: BlockId, reg: Reg) -> Vec<DefSite> {
        self.reach_in[b.index()]
            .iter()
            .map(|id| self.sites[id])
            .filter(|s| s.reg == reg)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Op, RegClass};

    #[test]
    fn both_arms_of_a_diamond_reach_the_join() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: x }); // site 0 (killed on both arms)
        let cond = fb.loadi(1);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(cond, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 5, dst: x }); // site for arm t
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 9, dst: x }); // site for arm e
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(&[x]);
        let f = fb.finish();
        let rd = ReachingDefs::compute(&f);
        let reaching = rd.reaching(j, x);
        assert_eq!(
            reaching.len(),
            2,
            "both arm defs reach the join: {reaching:?}"
        );
        assert!(reaching.iter().all(|s| s.block == t || s.block == e));
    }

    #[test]
    fn redefinition_kills_upstream_def() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 1, dst: x });
        let mid = fb.block("mid");
        let end = fb.block("end");
        fb.jump(mid);
        fb.switch_to(mid);
        fb.emit(Op::LoadI { imm: 2, dst: x }); // kills the entry def
        fb.jump(end);
        fb.switch_to(end);
        fb.ret(&[x]);
        let f = fb.finish();
        let rd = ReachingDefs::compute(&f);
        let reaching = rd.reaching(end, x);
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].block, mid);
    }

    #[test]
    fn loop_defs_reach_their_own_header() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let f = fb.finish();
        let rd = ReachingDefs::compute(&f);
        let header = iloc::BlockId(1);
        // Both the entry def and the loop-body def of acc reach the header.
        assert_eq!(rd.reaching(header, acc).len(), 2);
    }

    #[test]
    fn multiple_defs_in_one_block_only_last_escapes() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 1, dst: x });
        fb.emit(Op::LoadI { imm: 2, dst: x });
        let next = fb.block("next");
        fb.jump(next);
        fb.switch_to(next);
        fb.ret(&[x]);
        let f = fb.finish();
        let rd = ReachingDefs::compute(&f);
        let reaching = rd.reaching(next, x);
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].index, 1, "only the second def escapes");
    }
}
