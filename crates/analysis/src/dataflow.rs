//! A generic iterative dataflow framework.
//!
//! Problems implement [`DataflowProblem`]; [`solve`] runs a worklist
//! iteration to the (unique, by monotonicity) fixed point. Block-level
//! facts are [`BitSet`]s; the framework handles direction, the meet over
//! CFG edges, and the worklist.

use iloc::{BlockId, Function};

use crate::bitset::BitSet;

/// Direction of propagation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g., reaching defs).
    Forward,
    /// Facts flow from successors to predecessors (e.g., liveness).
    Backward,
}

/// The meet operator combining facts from multiple CFG edges.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Meet {
    /// May-analysis: union of incoming facts.
    Union,
    /// Must-analysis: intersection of incoming facts.
    Intersection,
}

/// A gen/kill dataflow problem over bit sets.
pub trait DataflowProblem {
    /// Size of the fact universe.
    fn universe(&self) -> usize;
    /// Propagation direction.
    fn direction(&self) -> Direction;
    /// Meet operator.
    fn meet(&self) -> Meet;
    /// The GEN set of a block: facts created within it (downward-exposed
    /// for forward problems, upward-exposed for backward ones).
    fn gen_set(&self, f: &Function, b: BlockId) -> BitSet;
    /// The KILL set of a block: facts obliterated by it.
    fn kill_set(&self, f: &Function, b: BlockId) -> BitSet;
    /// The boundary fact (entry block for forward, exit blocks for
    /// backward). Defaults to the empty set.
    fn boundary(&self) -> BitSet {
        BitSet::new(self.universe())
    }
}

/// Per-block solution: the fact at block entry (`in_`) and exit (`out`).
///
/// For backward problems, `in_` is still "at the top of the block" and
/// `out` "at the bottom" — i.e., for liveness, `in_[b]` is LiveIn(b).
#[derive(Clone, Debug)]
pub struct Solution {
    /// Fact at the top of each block.
    pub in_: Vec<BitSet>,
    /// Fact at the bottom of each block.
    pub out: Vec<BitSet>,
}

/// Runs the worklist algorithm for `problem` over `f` and returns the
/// fixed point.
pub fn solve(f: &Function, problem: &impl DataflowProblem) -> Solution {
    let n = f.blocks.len();
    let u = problem.universe();
    let gens: Vec<BitSet> = f.block_ids().map(|b| problem.gen_set(f, b)).collect();
    let kills: Vec<BitSet> = f.block_ids().map(|b| problem.kill_set(f, b)).collect();
    let preds = f.predecessors();
    let mut in_ = vec![BitSet::new(u); n];
    let mut out = vec![BitSet::new(u); n];

    // Initialize must-analyses to ⊤ (full set) everywhere except boundary.
    if problem.meet() == Meet::Intersection {
        let mut top = BitSet::new(u);
        for i in 0..u {
            top.insert(i);
        }
        in_ = vec![top.clone(); n];
        out = vec![top; n];
    }

    // Seed order: RPO for forward, reverse RPO for backward — converges in
    // near-minimal passes for reducible CFGs.
    let mut order = f.reverse_postorder();
    if problem.direction() == Direction::Backward {
        order.reverse();
    }

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            match problem.direction() {
                Direction::Forward => {
                    // in[b] = meet over preds' out
                    let mut new_in = if preds[bi].is_empty() {
                        problem.boundary()
                    } else {
                        let mut acc = out[preds[bi][0].index()].clone();
                        for p in &preds[bi][1..] {
                            match problem.meet() {
                                Meet::Union => {
                                    acc.union_with(&out[p.index()]);
                                }
                                Meet::Intersection => {
                                    acc.intersect_with(&out[p.index()]);
                                }
                            }
                        }
                        acc
                    };
                    std::mem::swap(&mut in_[bi], &mut new_in);
                    // out[b] = gen ∪ (in − kill)
                    let mut new_out = in_[bi].clone();
                    new_out.subtract(&kills[bi]);
                    new_out.union_with(&gens[bi]);
                    if new_out != out[bi] {
                        out[bi] = new_out;
                        changed = true;
                    }
                }
                Direction::Backward => {
                    let succs = f.successors(b);
                    let mut new_out = if succs.is_empty() {
                        problem.boundary()
                    } else {
                        let mut acc = in_[succs[0].index()].clone();
                        for s in &succs[1..] {
                            match problem.meet() {
                                Meet::Union => {
                                    acc.union_with(&in_[s.index()]);
                                }
                                Meet::Intersection => {
                                    acc.intersect_with(&in_[s.index()]);
                                }
                            }
                        }
                        acc
                    };
                    std::mem::swap(&mut out[bi], &mut new_out);
                    let mut new_in = out[bi].clone();
                    new_in.subtract(&kills[bi]);
                    new_in.union_with(&gens[bi]);
                    if new_in != in_[bi] {
                        in_[bi] = new_in;
                        changed = true;
                    }
                }
            }
        }
    }
    Solution { in_, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    /// A toy forward problem: "block ids seen on some path so far".
    struct PathBlocks;

    impl DataflowProblem for PathBlocks {
        fn universe(&self) -> usize {
            16
        }
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn meet(&self) -> Meet {
            Meet::Union
        }
        fn gen_set(&self, _f: &Function, b: BlockId) -> BitSet {
            let mut s = BitSet::new(16);
            s.insert(b.index());
            s
        }
        fn kill_set(&self, _f: &Function, _b: BlockId) -> BitSet {
            BitSet::new(16)
        }
    }

    #[test]
    fn forward_union_accumulates_along_paths() {
        // entry -> a -> join, entry -> b -> join
        let mut fb = FuncBuilder::new("f");
        let cond = fb.loadi(1);
        let a = fb.block("a");
        let b = fb.block("b");
        let join = fb.block("join");
        fb.cbr(cond, a, b);
        fb.switch_to(a);
        fb.jump(join);
        fb.switch_to(b);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let f = fb.finish();

        let sol = solve(&f, &PathBlocks);
        let join_in: Vec<usize> = sol.in_[join.index()].iter().collect();
        // Blocks 0 (entry), 1 (a), 2 (b) all reach the join.
        assert_eq!(join_in, vec![0, 1, 2]);
    }

    /// The same graph under intersection only keeps facts true on *all*
    /// paths.
    struct MustPathBlocks;

    impl DataflowProblem for MustPathBlocks {
        fn universe(&self) -> usize {
            16
        }
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn meet(&self) -> Meet {
            Meet::Intersection
        }
        fn gen_set(&self, _f: &Function, b: BlockId) -> BitSet {
            let mut s = BitSet::new(16);
            s.insert(b.index());
            s
        }
        fn kill_set(&self, _f: &Function, _b: BlockId) -> BitSet {
            BitSet::new(16)
        }
    }

    #[test]
    fn intersection_keeps_only_common_facts() {
        let mut fb = FuncBuilder::new("f");
        let cond = fb.loadi(1);
        let a = fb.block("a");
        let b = fb.block("b");
        let join = fb.block("join");
        fb.cbr(cond, a, b);
        fb.switch_to(a);
        fb.jump(join);
        fb.switch_to(b);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let f = fb.finish();

        let sol = solve(&f, &MustPathBlocks);
        let join_in: Vec<usize> = sol.in_[join.index()].iter().collect();
        // Only the entry block is on *every* path to the join.
        assert_eq!(join_in, vec![0]);
    }

    #[test]
    fn loops_reach_fixed_point() {
        let mut fb = FuncBuilder::new("f");
        let _ = fb.vreg(RegClass::Gpr);
        fb.counted_loop(0, 10, 1, |_, _| {});
        fb.ret(&[]);
        let f = fb.finish();
        // Must terminate and include the loop blocks in facts at the exit.
        let sol = solve(&f, &PathBlocks);
        let exit = f.blocks.len() - 1;
        assert!(sol.in_[exit].count() >= 3);
    }
}
