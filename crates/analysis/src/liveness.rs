//! Register liveness analysis.

use iloc::{BlockId, Function, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, DataflowProblem, Direction, Meet};
use crate::regindex::RegIndex;

/// Per-block live-in / live-out register sets, with helpers to walk a
/// block backwards maintaining the live set per instruction — the pattern
/// interference-graph construction uses.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Dense register numbering the bit sets are expressed in.
    pub regs: RegIndex,
    /// `live_in[b]` — registers live at the top of block `b`.
    pub live_in: Vec<BitSet>,
    /// `live_out[b]` — registers live at the bottom of block `b`.
    pub live_out: Vec<BitSet>,
}

struct LiveProblem<'a> {
    regs: &'a RegIndex,
}

impl DataflowProblem for LiveProblem<'_> {
    fn universe(&self) -> usize {
        self.regs.len()
    }
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    /// Upward-exposed uses: used before any def within the block.
    fn gen_set(&self, f: &Function, b: BlockId) -> BitSet {
        let mut gen = BitSet::new(self.regs.len());
        let mut defined = BitSet::new(self.regs.len());
        for instr in &f.block(b).instrs {
            instr.op.visit_uses(|r| {
                let id = self.regs.id(r);
                if !defined.contains(id) {
                    gen.insert(id);
                }
            });
            instr.op.visit_defs(|r| {
                defined.insert(self.regs.id(r));
            });
        }
        gen
    }
    fn kill_set(&self, f: &Function, b: BlockId) -> BitSet {
        let mut kill = BitSet::new(self.regs.len());
        for instr in &f.block(b).instrs {
            instr.op.visit_defs(|r| {
                kill.insert(self.regs.id(r));
            });
        }
        kill
    }
}

impl Liveness {
    /// Computes liveness for `f`.
    ///
    /// φ-nodes are treated as ordinary instructions (uses at the φ); run
    /// liveness on non-SSA code, or use the results with that caveat.
    pub fn compute(f: &Function) -> Liveness {
        let regs = RegIndex::build(f);
        let sol = solve(f, &LiveProblem { regs: &regs });
        Liveness {
            regs,
            live_in: sol.in_,
            live_out: sol.out,
        }
    }

    /// Whether `r` is live at the top of `b`.
    pub fn is_live_in(&self, b: BlockId, r: Reg) -> bool {
        self.regs
            .get(r)
            .is_some_and(|id| self.live_in[b.index()].contains(id))
    }

    /// Whether `r` is live at the bottom of `b`.
    pub fn is_live_out(&self, b: BlockId, r: Reg) -> bool {
        self.regs
            .get(r)
            .is_some_and(|id| self.live_out[b.index()].contains(id))
    }

    /// Walks block `b` backwards, calling `visit(instr_index, live)` with
    /// the live set *after* each instruction (i.e., live-out of that
    /// instruction), then updating the set across it.
    pub fn for_each_instr_reverse(
        &self,
        f: &Function,
        b: BlockId,
        mut visit: impl FnMut(usize, &BitSet),
    ) {
        let mut live = self.live_out[b.index()].clone();
        let instrs = &f.block(b).instrs;
        for i in (0..instrs.len()).rev() {
            visit(i, &live);
            instrs[i].op.visit_defs(|r| {
                live.remove(self.regs.id(r));
            });
            instrs[i].op.visit_uses(|r| {
                live.insert(self.regs.id(r));
            });
        }
    }

    /// The maximum number of simultaneously live registers of the given
    /// class anywhere in the function (register pressure).
    pub fn max_pressure(&self, f: &Function, class: iloc::RegClass) -> usize {
        let mut max = 0;
        for b in f.block_ids() {
            self.for_each_instr_reverse(f, b, |_, live| {
                let count = live
                    .iter()
                    .filter(|&id| self.regs.reg(id).class() == class)
                    .count();
                max = max.max(count);
            });
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn params_live_through_straightline_use() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let a = fb.loadi(1);
        let s = fb.add(p, a);
        fb.ret(&[s]);
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        // Single block: p is upward-exposed → live-in.
        assert!(lv.is_live_in(f.entry(), p));
        // s is defined then used in the same block; never live-in.
        assert!(!lv.is_live_in(f.entry(), s));
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(iloc::Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(iloc::Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        let header = iloc::BlockId(1);
        let body = iloc::BlockId(2);
        assert!(lv.is_live_in(header, acc));
        assert!(lv.is_live_in(body, acc));
        assert!(lv.is_live_out(body, acc));
    }

    #[test]
    fn dead_def_not_live() {
        let mut fb = FuncBuilder::new("f");
        let d = fb.loadi(9); // never used
        fb.ret(&[]);
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        assert!(!lv.is_live_in(f.entry(), d));
        assert!(!lv.is_live_out(f.entry(), d));
    }

    #[test]
    fn per_instruction_walk_matches_block_sets() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.loadi(2);
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        let mut snapshots = Vec::new();
        lv.for_each_instr_reverse(&f, f.entry(), |i, live| {
            snapshots.push((i, live.count()));
        });
        // Visit order is reverse; after `ret` nothing is live; after `add`
        // only c; after `loadI 2` a and b.
        assert_eq!(snapshots[0], (3, 0));
        assert_eq!(snapshots[1], (2, 1));
        assert_eq!(snapshots[2], (1, 2));
    }

    #[test]
    fn pressure_counts_per_class() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let a = fb.loadf(1.0);
        let b = fb.loadf(2.0);
        let c = fb.loadf(3.0);
        let ab = fb.fadd(a, b);
        let abc = fb.fadd(ab, c);
        fb.ret(&[abc]);
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        assert_eq!(lv.max_pressure(&f, RegClass::Fpr), 3);
        assert_eq!(lv.max_pressure(&f, RegClass::Gpr), 0);
    }
}
