//! Basic-block dependence DAGs.
//!
//! Edges capture every ordering constraint a scheduler must respect:
//! register RAW/WAR/WAW, conservative memory ordering (a main-memory
//! store orders against every other main-memory access; loads may pass
//! loads), CCM ordering (same rules, but **only within the CCM** — the
//! disjoint address space means CCM traffic never orders against main
//! memory, one more way the architecture helps the scheduler), calls as
//! full barriers, and the terminator last.

use std::collections::HashMap;

use iloc::{Block, Op, Reg};

/// The dependence DAG of one basic block.
#[derive(Debug)]
pub struct Dag {
    /// `succs[i]` — instructions that must come after instruction `i`.
    pub succs: Vec<Vec<usize>>,
    /// Number of unscheduled predecessors per instruction.
    pub preds_remaining: Vec<usize>,
    /// Critical-path priority of each instruction (latency-weighted
    /// longest path to the end of the block).
    pub priority: Vec<u64>,
}

/// The latency model used for priorities: main-memory ops take
/// `mem_latency`, everything else one cycle.
pub fn latency(op: &Op, mem_latency: u64) -> u64 {
    if op.is_main_memory_op() {
        mem_latency
    } else {
        1
    }
}

impl Dag {
    /// Builds the DAG for `block`.
    pub fn build(block: &Block, mem_latency: u64) -> Dag {
        let n = block.instrs.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>| {
            debug_assert!(from < to);
            if !succs[from].contains(&to) {
                succs[from].push(to);
            }
        };

        // Register dependences: last def and last uses per register.
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut uses_since_def: HashMap<Reg, Vec<usize>> = HashMap::new();
        // Memory ordering state.
        let mut last_mem_store: Option<usize> = None;
        let mut mem_loads_since_store: Vec<usize> = Vec::new();
        let mut last_ccm_store: Option<usize> = None;
        let mut ccm_loads_since_store: Vec<usize> = Vec::new();
        let mut last_barrier: Option<usize> = None;

        for (i, instr) in block.instrs.iter().enumerate() {
            let op = &instr.op;

            // RAW: uses depend on the last def.
            op.visit_uses(|r| {
                if let Some(&d) = last_def.get(&r) {
                    edge(d, i, &mut succs);
                }
                uses_since_def.entry(r).or_default().push(i);
            });
            // WAR + WAW for each def.
            op.visit_defs(|r| {
                if let Some(us) = uses_since_def.get(&r) {
                    for &u in us {
                        if u < i {
                            edge(u, i, &mut succs);
                        }
                    }
                }
                if let Some(&d) = last_def.get(&r) {
                    edge(d, i, &mut succs);
                }
            });
            op.visit_defs(|r| {
                last_def.insert(r, i);
                uses_since_def.insert(r, Vec::new());
            });

            // Barriers: calls and terminators order against everything.
            let is_barrier = matches!(op, Op::Call { .. }) || op.is_terminator();
            if is_barrier {
                for j in 0..i {
                    edge(j, i, &mut succs);
                }
                last_barrier = Some(i);
                // Reset memory state (the barrier dominates it).
                last_mem_store = None;
                mem_loads_since_store.clear();
                last_ccm_store = None;
                ccm_loads_since_store.clear();
                continue;
            }
            if let Some(b) = last_barrier {
                edge(b, i, &mut succs);
            }

            // Main-memory ordering (conservative: no alias analysis).
            if op.is_main_memory_op() {
                if op.is_store() {
                    if let Some(s) = last_mem_store {
                        edge(s, i, &mut succs);
                    }
                    for &l in &mem_loads_since_store {
                        edge(l, i, &mut succs);
                    }
                    last_mem_store = Some(i);
                    mem_loads_since_store.clear();
                } else {
                    if let Some(s) = last_mem_store {
                        edge(s, i, &mut succs);
                    }
                    mem_loads_since_store.push(i);
                }
            }
            // CCM ordering — disjoint from main memory by construction.
            if op.is_ccm_op() {
                if op.is_store() {
                    if let Some(s) = last_ccm_store {
                        edge(s, i, &mut succs);
                    }
                    for &l in &ccm_loads_since_store {
                        edge(l, i, &mut succs);
                    }
                    last_ccm_store = Some(i);
                    ccm_loads_since_store.clear();
                } else {
                    if let Some(s) = last_ccm_store {
                        edge(s, i, &mut succs);
                    }
                    ccm_loads_since_store.push(i);
                }
            }
        }

        let mut preds_remaining = vec![0usize; n];
        for ss in &succs {
            for &t in ss {
                preds_remaining[t] += 1;
            }
        }

        // Critical-path priorities, computed bottom-up.
        let mut priority = vec![0u64; n];
        for i in (0..n).rev() {
            let lat = latency(&block.instrs[i].op, mem_latency);
            let best_succ = succs[i].iter().map(|&s| priority[s]).max().unwrap_or(0);
            priority[i] = lat + best_succ;
        }

        Dag {
            succs,
            preds_remaining,
            priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    fn block_of(build: impl FnOnce(&mut FuncBuilder)) -> Block {
        let mut fb = FuncBuilder::new("f");
        build(&mut fb);
        fb.ret(&[]);
        fb.finish().blocks[0].clone()
    }

    #[test]
    fn raw_dependence() {
        let b = block_of(|fb| {
            let a = fb.loadi(1); // 0
            let _ = fb.addi(a, 1); // 1 depends on 0
        });
        let dag = Dag::build(&b, 2);
        assert!(dag.succs[0].contains(&1));
        assert_eq!(dag.preds_remaining[0], 0);
    }

    #[test]
    fn war_and_waw_dependences() {
        let mut fb = FuncBuilder::new("f");
        let a = fb.vreg(RegClass::Gpr);
        let b = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 1, dst: a }); // 0
        fb.emit(Op::IBinI {
            kind: iloc::IBinKind::Add,
            lhs: a,
            imm: 1,
            dst: b,
        }); // 1 reads a
        fb.emit(Op::LoadI { imm: 2, dst: a }); // 2: WAR vs 1, WAW vs 0
        fb.ret(&[]);
        let blk = fb.finish().blocks[0].clone();
        let dag = Dag::build(&blk, 2);
        assert!(dag.succs[1].contains(&2), "WAR edge");
        assert!(dag.succs[0].contains(&2), "WAW edge");
    }

    #[test]
    fn loads_pass_loads_but_not_stores() {
        let b = block_of(|fb| {
            let base = fb.loadsym("g"); // 0
            let _l1 = fb.loadai(base, 0); // 1
            let _l2 = fb.loadai(base, 8); // 2: no edge from 1
            let v = fb.loadi(9); // 3
            fb.storeai(v, base, 0); // 4: ordered after 1 and 2
            let _l3 = fb.loadai(base, 0); // 5: ordered after 4
        });
        let dag = Dag::build(&b, 2);
        assert!(!dag.succs[1].contains(&2));
        assert!(dag.succs[1].contains(&4));
        assert!(dag.succs[2].contains(&4));
        assert!(dag.succs[4].contains(&5));
    }

    #[test]
    fn ccm_and_main_memory_do_not_order() {
        let b = block_of(|fb| {
            let base = fb.loadsym("g"); // 0
            let v = fb.loadi(1); // 1
            fb.storeai(v, base, 0); // 2: main-memory store
            fb.emit(Op::CcmStore { val: v, off: 0 }); // 3: CCM store
            let r = fb.vreg(RegClass::Gpr);
            fb.emit(Op::CcmLoad { off: 0, dst: r }); // 4: after 3 only
        });
        let dag = Dag::build(&b, 2);
        assert!(
            !dag.succs[2].contains(&3),
            "disjoint address spaces do not order"
        );
        assert!(dag.succs[3].contains(&4));
    }

    #[test]
    fn calls_are_full_barriers() {
        let b = block_of(|fb| {
            let base = fb.loadsym("g"); // 0
            let _l = fb.loadai(base, 0); // 1
            fb.call("h", &[], &[]); // 2: after everything
            let _l2 = fb.loadai(base, 0); // 3: after the call
        });
        let dag = Dag::build(&b, 2);
        assert!(dag.succs[0].contains(&2));
        assert!(dag.succs[1].contains(&2));
        assert!(dag.succs[2].contains(&3));
    }

    #[test]
    fn priorities_reflect_critical_path() {
        let b = block_of(|fb| {
            let base = fb.loadsym("g"); // 0
            let l = fb.loadai(base, 0); // 1 (latency 2)
            let _ = fb.addi(l, 1); // 2
        });
        let dag = Dag::build(&b, 2);
        // Path 0 → 1 → 2 → ret: priorities strictly decrease along it.
        assert!(dag.priority[0] > dag.priority[1]);
        assert!(dag.priority[1] > dag.priority[2]);
    }
}
