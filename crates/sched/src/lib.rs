#![warn(missing_docs)]
//! A local list scheduler for the ILOC-like IR.
//!
//! The paper stops short of studying scheduling (§4.3: it "can
//! simultaneously hide the memory latencies and cause added spilling due
//! to increased register pressure") — this crate builds the tool needed
//! to study it. [`schedule_function`] performs forward list scheduling
//! over each basic block's dependence [`Dag`], ordering ready
//! instructions by critical-path priority so long-latency loads issue as
//! early as their operands allow.
//!
//! Run it **before** register allocation and loads migrate toward the top
//! of the block, lengthening live ranges (the pressure effect the paper
//! warns about); run it **after** allocation and it fills load-delay
//! slots within the constraints of the assigned registers. The harness's
//! `--sched` experiment measures both on a pipelined machine model, and
//! shows the paper's §1 claim that CCM restores scheduling freedom: a
//! one-cycle `restore` needs no hiding at all.
//!
//! # Example
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use iloc::RegClass;
//!
//! // A load whose result is used immediately, with independent work
//! // below it: scheduling pulls the independent work between them.
//! let mut fb = FuncBuilder::new("f");
//! fb.set_ret_classes(&[RegClass::Gpr]);
//! let base = fb.loadsym("g");
//! let l = fb.loadai(base, 0);
//! let u = fb.addi(l, 1);
//! let indep = fb.loadi(5);
//! let s = fb.add(u, indep);
//! fb.ret(&[s]);
//! let mut f = fb.finish();
//!
//! let stats = sched::schedule_function(&mut f, 2);
//! assert!(stats.instrs_moved > 0);
//! iloc::verify_function(&f).unwrap();
//! ```

pub mod dag;

pub use dag::{latency, Dag};

use iloc::{Function, Module};

/// Statistics from scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Blocks whose instruction order changed.
    pub blocks_changed: usize,
    /// Instructions that moved from their original position.
    pub instrs_moved: usize,
}

/// List-schedules every block of `f` using a single-issue machine model
/// where main-memory operations take `mem_latency` cycles. The relative
/// order of dependent instructions is preserved exactly; independent
/// instructions are reordered by critical-path priority.
pub fn schedule_function(f: &mut Function, mem_latency: u64) -> SchedStats {
    let mut stats = SchedStats::default();
    for b in f.block_ids().collect::<Vec<_>>() {
        let block = f.block(b);
        let n = block.instrs.len();
        if n <= 2 {
            continue;
        }
        let dag = Dag::build(block, mem_latency);

        // Forward list scheduling on a 1-wide machine. `ready_at[i]` is
        // the earliest cycle instruction i may issue given its
        // predecessors' completion times.
        let mut preds_remaining = dag.preds_remaining.clone();
        let mut ready_at: Vec<u64> = vec![0; n];
        let mut ready: Vec<usize> = (0..n).filter(|&i| preds_remaining[i] == 0).collect();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut clock: u64 = 0;

        while order.len() < n {
            // Choose the highest-priority ready instruction that can issue
            // now; if none can, the one that becomes ready soonest.
            let pick_pos = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    (
                        ready_at[i].max(clock),     // earliest issue
                        u64::MAX - dag.priority[i], // then max priority
                        i,                          // then source order
                    )
                })
                .map(|(pos, _)| pos)
                .expect("acyclic DAG always has a ready instruction");
            let i = ready.swap_remove(pick_pos);
            clock = ready_at[i].max(clock);
            let finish = clock + latency(&f.block(b).instrs[i].op, mem_latency);
            clock += 1; // single issue
            order.push(i);
            for &s in &dag.succs[i] {
                ready_at[s] = ready_at[s].max(finish);
                preds_remaining[s] -= 1;
                if preds_remaining[s] == 0 {
                    ready.push(s);
                }
            }
        }

        let moved = order
            .iter()
            .enumerate()
            .filter(|(pos, &i)| *pos != i)
            .count();
        if moved > 0 {
            stats.blocks_changed += 1;
            stats.instrs_moved += moved;
            let old = std::mem::take(&mut f.block_mut(b).instrs);
            let mut new = Vec::with_capacity(n);
            let mut old: Vec<Option<iloc::Instr>> = old.into_iter().map(Some).collect();
            for i in order {
                new.push(old[i].take().expect("each index scheduled once"));
            }
            f.block_mut(b).instrs = new;
        }
    }
    stats
}

/// Schedules every function in the module.
pub fn schedule_module(m: &mut Module, mem_latency: u64) -> SchedStats {
    let mut total = SchedStats::default();
    for f in &mut m.functions {
        let s = schedule_function(f, mem_latency);
        total.blocks_changed += s.blocks_changed;
        total.instrs_moved += s.instrs_moved;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, Op, RegClass};

    #[test]
    fn schedule_preserves_dependences_and_semantics() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let init = fb.loadi(21);
        fb.storeai(init, base, 0);
        let l = fb.loadai(base, 0);
        let dbl = fb.multi(l, 2);
        let unrelated = fb.loadi(5);
        let s = fb.add(dbl, unrelated);
        fb.ret(&[s]);
        let mut m = iloc::Module::new();
        m.push_global(iloc::Global::zeroed("g", 8));
        m.push_function(fb.finish());

        let (v0, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        let stats = schedule_module(&mut m, 2);
        assert!(
            stats.instrs_moved > 0,
            "the independent loadI should move up"
        );
        verify_function(&m.functions[0]).unwrap();
        let (v1, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1);
        assert_eq!(v1.ints, vec![47]);
    }

    #[test]
    fn terminator_stays_last() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.loadi(2);
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        schedule_function(&mut f, 2);
        assert!(f.blocks[0].instrs.last().unwrap().op.is_terminator());
        verify_function(&f).unwrap();
    }

    #[test]
    fn loads_hoisted_above_independent_work() {
        // load; then 3 independent arithmetic ops; then a use of the load.
        // After scheduling, the load should still be first (it already is)
        // but the *use* should sink below the arithmetic because the load
        // needs 2 cycles. Build the reverse: arithmetic first, then load,
        // then use — the load should float up.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g"); // 0
        let a = fb.loadi(1); // 1
        let b = fb.addi(a, 2); // 2
        let c = fb.addi(b, 3); // 3
        let l = fb.loadai(base, 0); // 4: independent of 1-3
        let s = fb.add(c, l); // 5
        fb.ret(&[s]);
        let mut f = fb.finish();
        schedule_function(&mut f, 2);
        // Find positions of the load and the addi chain.
        let pos_of = |f: &iloc::Function, pred: &dyn Fn(&Op) -> bool| {
            f.blocks[0].instrs.iter().position(|i| pred(&i.op)).unwrap()
        };
        let load_pos = pos_of(&f, &|o| matches!(o, Op::LoadAI { .. }));
        let last_add = f.blocks[0]
            .instrs
            .iter()
            .rposition(|i| matches!(i.op, Op::IBinI { .. }))
            .unwrap();
        assert!(
            load_pos < last_add,
            "long-latency load should issue before the tail of the add chain:\n{f}"
        );
        verify_function(&f).unwrap();
    }

    #[test]
    fn scheduling_spilled_code_respects_slots() {
        // Allocate a spilling function, schedule post-RA, verify + rerun.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..12).map(|i| fb.loadi(i)).collect();
        let mut acc = vals[11];
        for v in vals[..11].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut m = iloc::Module::new();
        m.push_function(fb.finish());
        regalloc::allocate_module(&mut m, &regalloc::AllocConfig::tiny(3));
        let (v0, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        schedule_module(&mut m, 2);
        m.verify().unwrap();
        let (v1, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1);
    }

    #[test]
    fn prera_scheduling_can_raise_pressure() {
        // Several independent load/use pairs: unscheduled, pressure is ~2;
        // scheduled with latency, all loads hoist and pressure grows.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let mut acc = fb.loadi(0);
        for i in 0..6 {
            let l = fb.loadai(base, i * 4);
            acc = fb.add(acc, l);
        }
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let before = analysis::Liveness::compute(&f).max_pressure(&f, RegClass::Gpr);
        schedule_function(&mut f, 8); // long latency → aggressive hoisting
        let after = analysis::Liveness::compute(&f).max_pressure(&f, RegClass::Gpr);
        assert!(
            after > before,
            "scheduling should lengthen load ranges: {before} → {after}"
        );
    }
}
