#![warn(missing_docs)]
//! The synthetic workload suite.
//!
//! Stand-ins for the paper's 122 Fortran routines: each [`Kernel`]
//! reproduces the code shape of a named routine from the paper's tables
//! (FFTPACK radix passes, NAS LU jacobians, Forsythe's numerical methods,
//! `fpppp`-style straight-line blocks, …), with register pressure spanning
//! "never spills" to "spills heavily". [`programs()`] links kernels into
//! the 13 whole-program inputs of the Figure 3/4 experiments.
//!
//! Everything is seeded and deterministic.

pub mod gen;
pub mod kernels;
pub mod programs;

pub use gen::{checksum_and_ret, f64_global, float_net, i32_global, BuilderExt, Lcg};
pub use kernels::{kernel, kernels, Kernel};
pub use programs::{build_program, program, programs, Program};

use iloc::Module;

/// Builds a kernel's module and runs the standard scalar-optimization
/// pipeline on it, applying the kernel's unroll transformation if it is an
/// `X` variant. This is the "input code" every experiment starts from.
pub fn build_optimized(k: &Kernel) -> Module {
    let mut m = (k.build)();
    m.verify()
        .unwrap_or_else(|e| panic!("kernel {} fails verification before opt: {e}", k.name));
    let opts = opt::OptOptions {
        unroll: k.unroll,
        ..opt::OptOptions::default()
    };
    opt::optimize_module(&mut m, &opts);
    m.verify()
        .unwrap_or_else(|e| panic!("kernel {} fails verification after opt: {e}", k.name));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc::AllocConfig;

    #[test]
    fn all_kernels_build_and_verify() {
        for k in kernels() {
            let m = (k.build)();
            m.verify()
                .unwrap_or_else(|e| panic!("{} fails: {e}", k.name));
        }
    }

    #[test]
    fn kernel_names_unique() {
        let ks = kernels();
        let mut names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn x_variants_unroll_at_least_one_loop() {
        for k in kernels().into_iter().filter(|k| k.unroll.is_some()) {
            let mut m = (k.build)();
            let factor = k.unroll.unwrap();
            let n: usize = m
                .functions
                .iter_mut()
                .filter(|f| f.name != "main")
                .map(|f| opt::unroll_loops(f, factor))
                .sum();
            assert!(n >= 1, "{} did not unroll", k.name);
        }
    }

    #[test]
    fn optimized_kernels_run_and_match_unoptimized() {
        // Spot-check a representative sample (the full suite is covered by
        // the integration tests; this keeps unit-test time low).
        for name in [
            "radf5", "fpppp", "decomp", "zeroin", "urand", "efill", "radf4X",
        ] {
            let k = kernel(name).unwrap();
            let raw = (k.build)();
            let (v0, _) = sim::run_module(&raw, sim::MachineConfig::default(), "main").unwrap();
            let optd = build_optimized(&k);
            let (v1, m1) = sim::run_module(&optd, sim::MachineConfig::default(), "main").unwrap();
            assert_eq!(v0, v1, "{name}: optimization changed the checksum");
            assert!(m1.instrs > 0);
        }
    }

    #[test]
    fn suite_has_spilling_and_non_spilling_kernels() {
        let cfg = AllocConfig::default();
        let mut spilled = 0;
        let mut clean = 0;
        for name in ["fpppp", "radf5", "jacld", "efill", "getb", "putb"] {
            let k = kernel(name).unwrap();
            let mut m = build_optimized(&k);
            let stats = regalloc::allocate_module(&mut m, &cfg);
            if stats.total_spilled() > 0 {
                spilled += 1;
            } else {
                clean += 1;
            }
        }
        assert!(spilled >= 2, "heavy kernels must spill under 31/32 regs");
        assert!(clean >= 2, "copy kernels must not spill");
    }

    #[test]
    fn programs_reference_existing_kernels() {
        for p in programs() {
            for m in p.members {
                assert!(kernel(m).is_some(), "{}: unknown member {m}", p.name);
            }
        }
        assert_eq!(programs().len(), 13, "the paper evaluates 13 programs");
    }

    #[test]
    fn a_program_links_and_runs() {
        let p = program("pack").unwrap();
        let m = build_program(&p);
        let (v, metrics) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.floats.len(), 1);
        assert!(v.floats[0].is_finite());
        assert!(metrics.calls >= 3);
    }
}
