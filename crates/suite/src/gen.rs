//! Deterministic data generation and code-shape helpers for the kernels.

use iloc::builder::FuncBuilder;
use iloc::{Global, Reg, RegClass};

/// A small deterministic linear congruential generator. Every kernel's
/// input data derives from a fixed seed, so all experiments are
/// reproducible run-to-run and machine-to-machine.
#[derive(Clone, Debug)]
pub struct Lcg(u64);

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform float in `[-1, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 bits
        (bits as f64 / (1u64 << 52) as f64) - 1.0
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: u32) -> u32 {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as u32
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.next_range(100) < percent
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_range(items.len() as u32) as usize]
    }
}

/// A float-array global filled with seeded values in `[-1, 1)`.
pub fn f64_global(name: &str, len: usize, seed: u64) -> Global {
    let mut lcg = Lcg::new(seed);
    let vals: Vec<f64> = (0..len).map(|_| lcg.next_f64()).collect();
    Global::from_f64s(name, &vals)
}

/// An int-array global filled with seeded values in `[0, bound)`.
pub fn i32_global(name: &str, len: usize, bound: u32, seed: u64) -> Global {
    let mut lcg = Lcg::new(seed);
    let vals: Vec<i32> = (0..len).map(|_| lcg.next_range(bound) as i32).collect();
    Global::from_i32s(name, &vals)
}

/// Emits a float "register network": `width` values are loaded from
/// `src[block*width ..]`, then for `depth` rounds each value is updated
/// from itself and its neighbor (`vᵢ = vᵢ·cᵢ + vᵢ₊₁`), keeping all
/// `width` values simultaneously live; finally each is stored to
/// `dst[block*width ..]`.
///
/// This is the suite's register-pressure primitive: the maximum float
/// pressure is `width + O(1)`, so kernels can dial in exactly how hard
/// they press on the 32 floating-point registers.
pub fn float_net(
    fb: &mut FuncBuilder,
    src: Reg,
    dst: Reg,
    block_base: Reg,
    width: usize,
    depth: usize,
    seed: u64,
) {
    let mut lcg = Lcg::new(seed);
    let mut vals: Vec<Reg> = Vec::with_capacity(width);
    for j in 0..width {
        let v = fb.floadai_indexed(src, block_base, (j * 8) as i64);
        vals.push(v);
    }
    for _ in 0..depth {
        let mut next = Vec::with_capacity(width);
        for j in 0..width {
            let c = fb.loadf(0.5 + 0.01 * (lcg.next_f64().abs() + 0.001));
            let scaled = fb.fmult(vals[j], c);
            let neighbor = vals[(j + 1) % width];
            next.push(fb.fadd(scaled, neighbor));
        }
        vals = next;
    }
    for (j, v) in vals.iter().enumerate() {
        fb.fstoreai_indexed(dst, block_base, (j * 8) as i64, *v);
    }
}

/// Extension methods the generators use for indexed addressing
/// (`base + index + constant` in two instructions).
pub trait BuilderExt {
    /// `fload (base + idx) + off`.
    fn floadai_indexed(&mut self, base: Reg, idx: Reg, off: i64) -> Reg;
    /// `fstore val => (base + idx) + off`.
    fn fstoreai_indexed(&mut self, base: Reg, idx: Reg, off: i64, val: Reg);
    /// `load (base + idx) + off` (integer).
    fn loadai_indexed(&mut self, base: Reg, idx: Reg, off: i64) -> Reg;
    /// `store val => (base + idx) + off` (integer).
    fn storeai_indexed(&mut self, base: Reg, idx: Reg, off: i64, val: Reg);
}

impl BuilderExt for FuncBuilder {
    fn floadai_indexed(&mut self, base: Reg, idx: Reg, off: i64) -> Reg {
        let addr = self.add(base, idx);
        self.floadai(addr, off)
    }

    fn fstoreai_indexed(&mut self, base: Reg, idx: Reg, off: i64, val: Reg) {
        let addr = self.add(base, idx);
        self.fstoreai(val, addr, off);
    }

    fn loadai_indexed(&mut self, base: Reg, idx: Reg, off: i64) -> Reg {
        let addr = self.add(base, idx);
        self.loadai(addr, off)
    }

    fn storeai_indexed(&mut self, base: Reg, idx: Reg, off: i64, val: Reg) {
        let addr = self.add(base, idx);
        self.storeai(val, addr, off);
    }
}

/// Appends the standard checksum epilogue to `main`: sums `len` doubles
/// of global `out` into a float register and returns it. Every suite
/// module ends this way, giving the semantic-equivalence tests a single
/// observable to compare.
pub fn checksum_and_ret(fb: &mut FuncBuilder, out_name: &str, len: usize) {
    fb.set_ret_classes(&[RegClass::Fpr]);
    let base = fb.loadsym(out_name);
    let acc = fb.vreg(RegClass::Fpr);
    fb.emit(iloc::Op::LoadF { imm: 0.0, dst: acc });
    fb.counted_loop(0, len as i64, 1, |fb, iv| {
        let off = fb.shli(iv, 3);
        let v = fb.floadai_indexed(base, off, 0);
        let t = fb.fadd(acc, v);
        fb.emit(iloc::Op::F2F { src: t, dst: acc });
    });
    fb.ret(&[acc]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn lcg_floats_in_range() {
        let mut l = Lcg::new(7);
        for _ in 0..1000 {
            let v = l.next_f64();
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn chance_and_pick_stay_in_bounds() {
        let mut l = Lcg::new(11);
        assert!(!l.clone().chance(0), "0% must never fire");
        assert!(l.clone().chance(100), "100% must always fire");
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(l.pick(&items)));
        }
    }

    #[test]
    fn seeded_globals_reproducible() {
        let a = f64_global("x", 16, 3);
        let b = f64_global("x", 16, 3);
        assert_eq!(a, b);
        let c = f64_global("x", 16, 4);
        assert_ne!(a.init, c.init);
    }

    #[test]
    fn float_net_has_expected_pressure() {
        let mut fb = FuncBuilder::new("f");
        let src = fb.loadsym("a");
        let dst = fb.loadsym("b");
        let zero = fb.loadi(0);
        float_net(&mut fb, src, dst, zero, 10, 3, 1);
        fb.ret(&[]);
        let mut f = fb.finish();
        // Wrap into a module so verify passes (globals exist).
        let mut m = iloc::Module::new();
        m.push_global(f64_global("a", 10, 1));
        m.push_global(iloc::Global::zeroed("b", 80));
        f.ret_classes = vec![];
        m.push_function(f);
        m.verify().unwrap();
        let lv = analysis::Liveness::compute(&m.functions[0]);
        let p = lv.max_pressure(&m.functions[0], RegClass::Fpr);
        assert!(
            (10..=13).contains(&p),
            "pressure {p} should be near the width 10"
        );
    }
}
