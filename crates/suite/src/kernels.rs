//! The kernel generators: synthetic analogs of the paper's test routines.
//!
//! The paper's suite is 122 Fortran routines (Forsythe's numerical
//! methods, SPEC '89, SPEC '95), 59 of which spill. We cannot ship that
//! Fortran, so each kernel here reproduces the *code shape* that made its
//! namesake interesting to a register allocator: FFTPACK radix butterflies
//! (`radf5`, `radb4`, …) with their dense constant matrices, `fpppp`-style
//! enormous straight-line blocks, `tomcatv`-style stencils, Forsythe's
//! `decomp`/`solve`/`zeroin` with values live across calls, and so on.
//! Register pressure is dialed per kernel via the width of the value
//! network each iteration keeps live, spanning the same spectrum from
//! "no spills" to "heavy spilling" as the original suite. Kernels whose
//! namesakes were loop-transformed for prefetching (the `X` suffix in the
//! paper) are registered twice: once plain, once with the unrolling
//! transformation that stands in for those pressure-raising transforms.

use iloc::builder::FuncBuilder;
use iloc::{CmpKind, Global, Module, Op, Reg, RegClass};

use crate::gen::{checksum_and_ret, f64_global, float_net, BuilderExt, Lcg};

/// A suite entry: a named module generator plus metadata.
#[derive(Clone)]
pub struct Kernel {
    /// Routine name (paper-analog, e.g. `radf5`). `X`-suffixed entries are
    /// the loop-transformed high-pressure variants.
    pub name: &'static str,
    /// One-line description of which paper routine this stands in for.
    pub analog: &'static str,
    /// Unroll factor to apply during optimization (the `X` transform).
    pub unroll: Option<u32>,
    /// Builds the (unoptimized, unallocated) module. Entry is `main`,
    /// which returns a single float checksum.
    pub build: fn() -> Module,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("unroll", &self.unroll)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Generic shapes
// ---------------------------------------------------------------------------

/// A "value network" kernel: `phases` sequential loops, each of `blocks`
/// iterations loading `width` floats, mixing them for `depth` rounds
/// (everything simultaneously live), and storing them back in place.
/// Peak float pressure ≈ `width`. Separate phases create spill slots with
/// *disjoint* lifetimes — the raw material for Table 1's compaction.
fn net_kernel(width: usize, depth: usize, blocks: usize, phases: usize, seed: u64) -> Module {
    let len = width * blocks;
    let mut m = Module::new();
    m.push_global(f64_global("a", len, seed));

    let mut k = FuncBuilder::new("kern");
    let src = k.loadsym("a");
    for phase in 0..phases {
        k.counted_loop(0, blocks as i64, 1, |fb, iv| {
            let base = fb.multi(iv, (width * 8) as i64);
            float_net(
                fb,
                src,
                src,
                base,
                width,
                depth,
                seed ^ (phase as u64 * 0x9e37),
            );
        });
    }
    k.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("kern", &[], &[]);
    checksum_and_ret(&mut main, "a", len);

    m.push_function(k.finish());
    m.push_function(main.finish());
    m
}

/// Like [`net_kernel`], but each block calls a helper routine *mid-phase*
/// while all `width` network values are live — so the spilled values'
/// slots are live across the call. This is the shape where the paper's
/// three methods separate: the intraprocedural post-pass must leave the
/// call-crossing slots in main memory, the interprocedural variant places
/// them above the helper's CCM high-water mark, and the integrated
/// allocator (conservatively intraprocedural) behaves like the first.
/// The helper itself spills, so its high-water mark is nonzero.
fn net_call_kernel(
    width: usize,
    depth: usize,
    blocks: usize,
    phases: usize,
    helper_width: usize,
    seed: u64,
) -> Module {
    let len = width * blocks;
    let mut m = Module::new();
    m.push_global(f64_global("a", len, seed));
    m.push_global(f64_global("hc", helper_width, seed ^ 5));

    // aux(x): wide polynomial evaluation — spills on its own.
    let mut h = FuncBuilder::new("aux");
    let x = h.param(RegClass::Fpr);
    h.set_ret_classes(&[RegClass::Fpr]);
    // Normalize the argument to |xn| ≤ 1/2 so the polynomial below stays
    // bounded no matter how the caller's network values grow.
    let one = h.loadf(1.0);
    let xx = h.fmult(x, x);
    let denom0 = h.fadd(xx, one);
    let xn = h.fdiv(x, denom0);
    let cb = h.loadsym("hc");
    let mut terms = Vec::with_capacity(helper_width);
    for j in 0..helper_width {
        let c = h.floadai(cb, (j * 8) as i64);
        terms.push(h.fmult(c, xn));
    }
    let mut acc = h.loadf(0.0);
    for t in terms {
        let s2 = h.fmult(acc, xn);
        acc = h.fadd(s2, t);
    }
    let xn2 = h.fmult(xn, xn);
    let denom = h.fadd(xn2, one);
    let r = h.fdiv(acc, denom);
    h.ret(&[r]);

    let mut k = FuncBuilder::new("kern");
    let src = k.loadsym("a");
    let mut lcg = Lcg::new(seed ^ 0x77);
    for phase in 0..phases {
        let phase_seed = seed ^ (phase as u64 * 0x9e37);
        k.counted_loop(0, blocks as i64, 1, |fb, iv| {
            let base = fb.multi(iv, (width * 8) as i64);
            // Load the whole network.
            let mut vals: Vec<Reg> = (0..width)
                .map(|j| fb.floadai_indexed(src, base, (j * 8) as i64))
                .collect();
            let mut inner = Lcg::new(phase_seed ^ 0x51);
            let rounds_before = depth / 2;
            for _ in 0..rounds_before {
                let mut next = Vec::with_capacity(width);
                for j in 0..width {
                    let c = fb.loadf(0.5 + 0.01 * (inner.next_f64().abs() + 0.001));
                    let t = fb.fmult(vals[j], c);
                    next.push(fb.fadd(t, vals[(j + 1) % width]));
                }
                vals = next;
            }
            // Call the helper while everything is live.
            let r = fb.call("aux", &[vals[0]], &[RegClass::Fpr])[0];
            vals[0] = fb.fadd(vals[0], r);
            for _ in rounds_before..depth {
                let mut next = Vec::with_capacity(width);
                for j in 0..width {
                    let c = fb.loadf(0.5 + 0.01 * (inner.next_f64().abs() + 0.001));
                    let t = fb.fmult(vals[j], c);
                    next.push(fb.fadd(t, vals[(j + 1) % width]));
                }
                vals = next;
            }
            for (j, v) in vals.iter().enumerate() {
                fb.fstoreai_indexed(src, base, (j * 8) as i64, *v);
            }
        });
        let _ = lcg.next_u64();
    }
    k.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("kern", &[], &[]);
    checksum_and_ret(&mut main, "a", len);

    m.push_function(h.finish());
    m.push_function(k.finish());
    m.push_function(main.finish());
    m
}

/// An FFTPACK-style radix-`k` butterfly pass over `blocks` groups, each
/// holding `lanes` independent sets of `k` complex points (FFTPACK's
/// inner `ido` loop, unrolled). All lanes' inputs are loaded before any
/// output is computed, as FFTPACK does, so peak float pressure is about
/// `2·k·lanes` plus the accumulators.
fn radix_kernel(k: usize, lanes: usize, blocks: usize, forward: bool, seed: u64) -> Module {
    let group = 2 * k * lanes;
    let len = group * blocks;
    let mut m = Module::new();
    m.push_global(f64_global("a", len, seed));
    m.push_global(Global::zeroed("out", (len * 8) as u32));

    let mut f = FuncBuilder::new("pass");
    let src = f.loadsym("a");
    let dst = f.loadsym("out");
    let sign = if forward { -1.0 } else { 1.0 };
    f.counted_loop(0, blocks as i64, 1, |fb, iv| {
        let base = fb.multi(iv, (group * 8) as i64);
        // Load every lane's k complex inputs up front.
        let mut re = vec![Vec::with_capacity(k); lanes];
        let mut im = vec![Vec::with_capacity(k); lanes];
        for l in 0..lanes {
            for j in 0..k {
                let at = ((l * k + j) * 16) as i64;
                re[l].push(fb.floadai_indexed(src, base, at));
                im[l].push(fb.floadai_indexed(src, base, at + 8));
            }
        }
        // Dense DFT-style combination per lane.
        for l in 0..lanes {
            for j in 0..k {
                let mut acc_r = fb.loadf(0.0);
                let mut acc_i = fb.loadf(0.0);
                for i in 0..k {
                    let ang = sign * 2.0 * std::f64::consts::PI * (i * j) as f64 / k as f64;
                    let (xr, xi) = (re[l][i], im[l][i]);
                    let c = fb.loadf(ang.cos());
                    let sn = fb.loadf(ang.sin());
                    let t1 = fb.fmult(c, xr);
                    let t2 = fb.fmult(sn, xi);
                    let t3 = fb.fsub(t1, t2);
                    acc_r = fb.fadd(acc_r, t3);
                    let t4 = fb.fmult(sn, xr);
                    let t5 = fb.fmult(c, xi);
                    let t6 = fb.fadd(t4, t5);
                    acc_i = fb.fadd(acc_i, t6);
                }
                let at = ((l * k + j) * 16) as i64;
                fb.fstoreai_indexed(dst, base, at, acc_r);
                fb.fstoreai_indexed(dst, base, at + 8, acc_i);
            }
        }
    });
    f.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("pass", &[], &[]);
    checksum_and_ret(&mut main, "out", len);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

/// A 2-D 9-point stencil over an `n×n` grid (`tomcatv`/`smooth` shape).
fn stencil_kernel(n: usize, sweeps: usize, extra_terms: usize, seed: u64) -> Module {
    let len = n * n;
    let mut m = Module::new();
    m.push_global(f64_global("grid", len, seed));
    m.push_global(Global::zeroed("out", (len * 8) as u32));

    let mut f = FuncBuilder::new("relax");
    let src = f.loadsym("grid");
    let dst = f.loadsym("out");
    let mut lcg = Lcg::new(seed ^ 0xabcd);
    let coeffs: Vec<f64> = (0..9 + extra_terms).map(|_| lcg.next_f64() * 0.2).collect();
    for _ in 0..sweeps {
        f.counted_loop(1, (n - 1) as i64, 1, |fb, i| {
            let row = fb.multi(i, (n * 8) as i64);
            fb.counted_loop(1, (n - 1) as i64, 1, |fb, j| {
                let col = fb.shli(j, 3);
                let at = fb.add(row, col);
                // Load the whole 9-point neighborhood plus the extra
                // operands first (tomcatv computes several derived
                // quantities per point), then combine — everything stays
                // live simultaneously.
                let mut vals = Vec::new();
                for di in [-(n as i64), 0, n as i64] {
                    for dj in [-1i64, 0, 1] {
                        vals.push(fb.floadai_indexed(src, at, (di + dj) * 8));
                    }
                }
                for e in 0..extra_terms {
                    let off = ((e as i64 % 5) - 2) * 8;
                    vals.push(fb.floadai_indexed(src, at, off));
                }
                let mut terms = Vec::new();
                for (ci, v) in vals.iter().enumerate() {
                    let c = fb.loadf(coeffs[ci]);
                    terms.push(fb.fmult(*v, c));
                }
                let mut acc = fb.loadf(0.0);
                for t in terms {
                    acc = fb.fadd(acc, t);
                }
                fb.fstoreai_indexed(dst, at, 0, acc);
            });
        });
    }
    f.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("relax", &[], &[]);
    checksum_and_ret(&mut main, "out", len);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

/// Forsythe-style `decomp`: LU factorization with partial pivoting on an
/// `n×n` system, followed by `solve`. Exercises mixed int/float pressure
/// and multi-routine structure.
fn decomp_kernel(n: usize, seed: u64) -> Module {
    let mut m = Module::new();
    // Diagonally dominant matrix for stability.
    let mut lcg = Lcg::new(seed);
    let mut a = vec![0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = lcg.next_f64();
        }
        a[i * n + i] += n as f64;
    }
    let mut mat = Vec::new();
    for v in &a {
        mat.extend_from_slice(&v.to_le_bytes());
    }
    m.push_global(Global {
        name: "a".into(),
        size: (n * n * 8) as u32,
        init: mat,
    });
    m.push_global(f64_global("b", n, seed ^ 1));
    m.push_global(Global::zeroed("out", (n * 8) as u32));

    // decomp: in-place LU without pivot search (diagonally dominant).
    let mut d = FuncBuilder::new("decomp");
    let base = d.loadsym("a");
    d.counted_loop(0, n as i64 - 1, 1, |fb, kk| {
        let krow = fb.multi(kk, (n * 8) as i64);
        let kdiag_off = fb.shli(kk, 3);
        let kaddr = fb.add(krow, kdiag_off);
        let pivot = fb.floadai_indexed(base, kaddr, 0);
        fb.counted_loop(0, n as i64, 1, |fb, i| {
            // Only rows i > k update; guard with a branch.
            let cond = fb.icmp(CmpKind::Gt, i, kk);
            let do_row = fb.block(format!("row_{}", fb.current().index()));
            let skip = fb.block(format!("skip_{}", fb.current().index()));
            fb.cbr(cond, do_row, skip);
            fb.switch_to(do_row);
            let irow = fb.multi(i, (n * 8) as i64);
            let ikaddr = fb.add(irow, kdiag_off);
            let aik = fb.floadai_indexed(base, ikaddr, 0);
            let mult = fb.fdiv(aik, pivot);
            fb.fstoreai_indexed(base, ikaddr, 0, mult);
            fb.counted_loop(0, n as i64, 1, |fb, j| {
                let inner = fb.icmp(CmpKind::Gt, j, kk);
                let upd = fb.block(format!("upd_{}", fb.current().index()));
                let nop = fb.block(format!("nup_{}", fb.current().index()));
                fb.cbr(inner, upd, nop);
                fb.switch_to(upd);
                let joff = fb.shli(j, 3);
                let kjaddr = fb.add(krow, joff);
                let akj = fb.floadai_indexed(base, kjaddr, 0);
                let ijaddr = fb.add(irow, joff);
                let aij = fb.floadai_indexed(base, ijaddr, 0);
                let prod = fb.fmult(mult, akj);
                let newv = fb.fsub(aij, prod);
                fb.fstoreai_indexed(base, ijaddr, 0, newv);
                fb.jump(nop);
                fb.switch_to(nop);
            });
            fb.jump(skip);
            fb.switch_to(skip);
        });
    });
    d.ret(&[]);

    // solve: forward then back substitution into `out`.
    let mut s = FuncBuilder::new("solve");
    let abase = s.loadsym("a");
    let bbase = s.loadsym("b");
    let xbase = s.loadsym("out");
    // copy b into out
    s.counted_loop(0, n as i64, 1, |fb, i| {
        let off = fb.shli(i, 3);
        let v = fb.floadai_indexed(bbase, off, 0);
        fb.fstoreai_indexed(xbase, off, 0, v);
    });
    // forward: x[i] -= l[i][k] * x[k] for k < i
    s.counted_loop(0, n as i64, 1, |fb, i| {
        let irow = fb.multi(i, (n * 8) as i64);
        let ioff = fb.shli(i, 3);
        fb.counted_loop(0, n as i64, 1, |fb, kk| {
            let c = fb.icmp(CmpKind::Lt, kk, i);
            let go = fb.block(format!("fw_{}", fb.current().index()));
            let skip = fb.block(format!("fs_{}", fb.current().index()));
            fb.cbr(c, go, skip);
            fb.switch_to(go);
            let koff = fb.shli(kk, 3);
            let lik_addr = fb.add(irow, koff);
            let lik = fb.floadai_indexed(abase, lik_addr, 0);
            let xk = fb.floadai_indexed(xbase, koff, 0);
            let xi = fb.floadai_indexed(xbase, ioff, 0);
            let prod = fb.fmult(lik, xk);
            let nv = fb.fsub(xi, prod);
            fb.fstoreai_indexed(xbase, ioff, 0, nv);
            fb.jump(skip);
            fb.switch_to(skip);
        });
    });
    // backward: x[i] = (x[i] - Σ u[i][k] x[k]) / u[i][i], i from n-1 down
    s.counted_loop((n - 1) as i64, -1, -1, |fb, i| {
        let irow = fb.multi(i, (n * 8) as i64);
        let ioff = fb.shli(i, 3);
        fb.counted_loop(0, n as i64, 1, |fb, kk| {
            let c = fb.icmp(CmpKind::Gt, kk, i);
            let go = fb.block(format!("bw_{}", fb.current().index()));
            let skip = fb.block(format!("bs_{}", fb.current().index()));
            fb.cbr(c, go, skip);
            fb.switch_to(go);
            let koff = fb.shli(kk, 3);
            let uik_addr = fb.add(irow, koff);
            let uik = fb.floadai_indexed(abase, uik_addr, 0);
            let xk = fb.floadai_indexed(xbase, koff, 0);
            let xi = fb.floadai_indexed(xbase, ioff, 0);
            let prod = fb.fmult(uik, xk);
            let nv = fb.fsub(xi, prod);
            fb.fstoreai_indexed(xbase, ioff, 0, nv);
            fb.jump(skip);
            fb.switch_to(skip);
        });
        let diag_addr = fb.add(irow, ioff);
        let uii = fb.floadai_indexed(abase, diag_addr, 0);
        let xi = fb.floadai_indexed(xbase, ioff, 0);
        let nv = fb.fdiv(xi, uii);
        fb.fstoreai_indexed(xbase, ioff, 0, nv);
    });
    s.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("decomp", &[], &[]);
    main.call("solve", &[], &[]);
    checksum_and_ret(&mut main, "out", n);

    m.push_function(d.finish());
    m.push_function(s.finish());
    m.push_function(main.finish());
    m
}

/// `zeroin`/`fmin` shape: an iterative driver keeping several values live
/// across repeated calls to an evaluation routine. This is the stress
/// case for the conservative intraprocedural CCM rule.
fn caller_pressure_kernel(
    evals: usize,
    poly_width: usize,
    driver_width: usize,
    seed: u64,
) -> Module {
    let mut m = Module::new();
    m.push_global(f64_global("coef", poly_width.max(driver_width), seed));
    m.push_global(Global::zeroed("out", 16));

    // feval(x): a polynomial-network evaluation, itself fairly wide.
    let mut fe = FuncBuilder::new("feval");
    let x = fe.param(RegClass::Fpr);
    fe.set_ret_classes(&[RegClass::Fpr]);
    // Normalize to |xn| ≤ 1/2 so the iteration in the driver never
    // overflows, no matter how the interval wanders.
    let one = fe.loadf(1.0);
    let xx = fe.fmult(x, x);
    let denom0 = fe.fadd(xx, one);
    let xn = fe.fdiv(x, denom0);
    let cbase = fe.loadsym("coef");
    let mut vals = Vec::new();
    for j in 0..poly_width {
        let c = fe.floadai(cbase, (j * 8) as i64);
        vals.push(fe.fmult(c, xn));
    }
    // Horner-ish reduction keeping all terms live first.
    let mut acc = fe.loadf(0.0);
    for v in vals {
        let t = fe.fmult(acc, xn);
        acc = fe.fadd(t, v);
    }
    let xn2 = fe.fmult(xn, xn);
    let denom = fe.fadd(xn2, one);
    let out = fe.fdiv(acc, denom);
    fe.ret(&[out]);

    // Driver: secant-style iteration with many live-across-call values.
    let mut dr = FuncBuilder::new("driver");
    dr.set_ret_classes(&[]);
    let out = dr.loadsym("out");
    let mut lcg = Lcg::new(seed ^ 0xfeed);
    let a0 = dr.loadf(lcg.next_f64());
    let b0 = dr.loadf(lcg.next_f64() + 2.0);
    let av = dr.vreg(RegClass::Fpr);
    let bv = dr.vreg(RegClass::Fpr);
    dr.emit(Op::F2F { src: a0, dst: av });
    dr.emit(Op::F2F { src: b0, dst: bv });
    let tol = dr.loadf(1e-9);
    let half = dr.loadf(0.5);
    // Driver-resident state: `driver_width` values loaded once and kept
    // live across every call in the loop — the spill slots that the
    // intraprocedural CCM rule must refuse.
    let dcoef = dr.loadsym("coef");
    let resident: Vec<Reg> = (0..driver_width)
        .map(|j| dr.floadai(dcoef, (j * 8) as i64))
        .collect();
    dr.counted_loop(0, evals as i64, 1, |fb, _| {
        let fa = fb.call("feval", &[av], &[RegClass::Fpr])[0];
        let fbv = fb.call("feval", &[bv], &[RegClass::Fpr])[0];
        let sum = fb.fadd(av, bv);
        let mid = fb.fmult(sum, half);
        let fm = fb.call("feval", &[mid], &[RegClass::Fpr])[0];
        // new interval biased by fa/fb magnitudes (keeps fa, fb, tol,
        // half, av, bv live across the calls).
        let d1 = fb.fsub(fa, fm);
        let d2 = fb.fsub(fbv, fm);
        let w1 = fb.fmult(d1, tol);
        let w2 = fb.fmult(d2, tol);
        let na = fb.fadd(mid, w1);
        let nb = fb.fadd(mid, w2);
        // Mix the resident state into the interval update so it stays
        // live across the calls.
        let mut adj = fb.fmult(fm, tol);
        for v in &resident {
            let t = fb.fmult(*v, tol);
            adj = fb.fadd(adj, t);
        }
        let na2 = fb.fadd(na, adj);
        fb.emit(Op::F2F { src: na2, dst: av });
        fb.emit(Op::F2F { src: nb, dst: bv });
    });
    let diff = dr.fsub(bv, av);
    dr.fstoreai(diff, out, 0);
    dr.fstoreai(av, out, 8);
    dr.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("driver", &[], &[]);
    checksum_and_ret(&mut main, "out", 2);

    m.push_function(fe.finish());
    m.push_function(dr.finish());
    m.push_function(main.finish());
    m
}

/// Particle-push shape (`parmvr`/`parmve`): gather by index, update with
/// field values, scatter back.
fn particle_kernel(particles: usize, fields: usize, comps: usize, seed: u64) -> Module {
    let mut m = Module::new();
    m.push_global(f64_global("pos", particles, seed));
    m.push_global(f64_global("vel", particles, seed ^ 2));
    m.push_global(f64_global("fld", fields * comps, seed ^ 3));
    m.push_global(crate::gen::i32_global(
        "idx",
        particles,
        fields as u32,
        seed ^ 4,
    ));
    m.push_global(Global::zeroed("out", (particles * 8) as u32));

    let mut f = FuncBuilder::new("push");
    let pos = f.loadsym("pos");
    let vel = f.loadsym("vel");
    let fld = f.loadsym("fld");
    let idx = f.loadsym("idx");
    let out = f.loadsym("out");
    let dt = f.loadf(0.01);
    f.counted_loop(0, particles as i64, 1, |fb, i| {
        let i4 = fb.shli(i, 2);
        let cell = fb.loadai_indexed(idx, i4, 0);
        let cb = fb.multi(cell, (comps * 8) as i64);
        // Load every field component of this cell up front.
        let mut fvals = Vec::new();
        for c in 0..comps {
            fvals.push(fb.floadai_indexed(fld, cb, (c * 8) as i64));
        }
        let i8 = fb.shli(i, 3);
        let p = fb.floadai_indexed(pos, i8, 0);
        let v = fb.floadai_indexed(vel, i8, 0);
        // Force = weighted field mix (keeps all comps live).
        let mut force = fb.loadf(0.0);
        for (c, comp) in fvals.iter().enumerate() {
            let w = fb.loadf(0.1 + c as f64 * 0.05);
            let t = fb.fmult(*comp, w);
            force = fb.fadd(force, t);
        }
        let dv = fb.fmult(force, dt);
        let nv = fb.fadd(v, dv);
        let dx = fb.fmult(nv, dt);
        let np = fb.fadd(p, dx);
        fb.fstoreai_indexed(out, i8, 0, np);
    });
    f.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("push", &[], &[]);
    checksum_and_ret(&mut main, "out", particles);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

/// An integer-pressure kernel (`urand` + hashing shape): a network of
/// integer state registers updated for several rounds per element.
fn int_kernel(width: usize, rounds: usize, elems: usize, seed: u64) -> Module {
    let mut m = Module::new();
    m.push_global(crate::gen::i32_global("iv", width * elems, 1 << 30, seed));
    m.push_global(Global::zeroed("iout", (width * elems * 4) as u32));
    m.push_global(Global::zeroed("out", 8));

    let mut f = FuncBuilder::new("mix");
    let src = f.loadsym("iv");
    let dst = f.loadsym("iout");
    f.counted_loop(0, elems as i64, 1, |fb, e| {
        let base = fb.multi(e, (width * 4) as i64);
        let mut vals = Vec::new();
        for j in 0..width {
            vals.push(fb.loadai_indexed(src, base, (j * 4) as i64));
        }
        let mut lcg = Lcg::new(seed ^ 0x1234);
        for _ in 0..rounds {
            let mut next = Vec::new();
            for j in 0..width {
                let c = fb.loadi((lcg.next_range(997) + 3) as i64);
                let t = fb.mult(vals[j], c);
                next.push(fb.add(t, vals[(j + 1) % width]));
            }
            vals = next;
        }
        for (j, v) in vals.iter().enumerate() {
            fb.storeai_indexed(dst, base, (j * 4) as i64, *v);
        }
    });
    f.ret(&[]);

    // main sums iout as floats via conversion into `out`.
    let mut main = FuncBuilder::new("main");
    main.call("mix", &[], &[]);
    main.set_ret_classes(&[RegClass::Fpr]);
    let dst = main.loadsym("iout");
    let out = main.loadsym("out");
    let acc = main.vreg(RegClass::Fpr);
    main.emit(Op::LoadF { imm: 0.0, dst: acc });
    main.counted_loop(0, (width * elems) as i64, 1, |fb, i| {
        let off = fb.shli(i, 2);
        let v = fb.loadai_indexed(dst, off, 0);
        let vf = fb.i2f(v);
        let t = fb.fadd(acc, vf);
        fb.emit(Op::F2F { src: t, dst: acc });
    });
    main.fstoreai(acc, out, 0);
    main.ret(&[acc]);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

/// A "monolith" kernel: one enormous expression in which every loaded
/// value is live from the top of the block to near the bottom (each value
/// is used once early and once late, in reverse order, so every pair of
/// live ranges — and hence every pair of spill slots — overlaps at the
/// block's midpoint). These are the routines on which spill-memory
/// compaction can find nothing to share: the paper's `paroi`, `inisla`,
/// `energyx`, and `pdiagX`.
fn monolith_kernel(width: usize, blocks: usize, seed: u64) -> Module {
    let len = width * blocks;
    let mut m = Module::new();
    m.push_global(f64_global("a", len, seed));
    m.push_global(Global::zeroed("out", (blocks * 8) as u32));

    let mut f = FuncBuilder::new("kern");
    let src = f.loadsym("a");
    let dst = f.loadsym("out");
    f.counted_loop(0, blocks as i64, 1, |fb, iv| {
        let base = fb.multi(iv, (width * 8) as i64);
        let vals: Vec<Reg> = (0..width)
            .map(|j| fb.floadai_indexed(src, base, (j * 8) as i64))
            .collect();
        // First pass: forward reduction.
        let mut acc = fb.loadf(0.0);
        for v in &vals {
            acc = fb.fadd(acc, *v);
        }
        // Second pass: reverse-order products — every value stays live
        // until here.
        let scale = fb.loadf(1e-3);
        let small = fb.fmult(acc, scale);
        let mut acc2 = fb.loadf(1.0);
        for v in vals.iter().rev() {
            let t = fb.fadd(*v, small);
            let u = fb.fmult(acc2, scale);
            acc2 = fb.fadd(u, t);
        }
        let off = fb.shli(iv, 3);
        fb.fstoreai_indexed(dst, off, 0, acc2);
    });
    f.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("kern", &[], &[]);
    checksum_and_ret(&mut main, "out", blocks);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

/// A light copy/pack kernel (`getb`/`putb`/`efill` shape): little
/// pressure, no spills expected — the suite needs non-spilling routines
/// too (63 of the paper's 122 did not spill).
fn copy_kernel(elems: usize, stride: usize, seed: u64) -> Module {
    let mut m = Module::new();
    m.push_global(f64_global("a", elems * stride, seed));
    m.push_global(Global::zeroed("out", (elems * 8) as u32));

    let mut f = FuncBuilder::new("pack");
    let src = f.loadsym("a");
    let dst = f.loadsym("out");
    f.counted_loop(0, elems as i64, 1, |fb, i| {
        let soff = fb.multi(i, (stride * 8) as i64);
        let v = fb.floadai_indexed(src, soff, 0);
        let doff = fb.shli(i, 3);
        fb.fstoreai_indexed(dst, doff, 0, v);
    });
    f.ret(&[]);

    let mut main = FuncBuilder::new("main");
    main.call("pack", &[], &[]);
    checksum_and_ret(&mut main, "out", elems);

    m.push_function(f.finish());
    m.push_function(main.finish());
    m
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

macro_rules! kernel {
    ($name:literal, $analog:literal, $unroll:expr, $build:expr) => {
        Kernel {
            name: $name,
            analog: $analog,
            unroll: $unroll,
            build: $build,
        }
    };
}

/// All suite kernels, spanning heavy spillers, borderline cases, and
/// non-spilling routines — plus `X` variants of the kernels whose
/// namesakes were loop-transformed for prefetching.
pub fn kernels() -> Vec<Kernel> {
    vec![
        // ---- heavy spillers (fpppp, twldrv, deseco, jacld/jacu, …) ----
        kernel!(
            "fpppp",
            "SPEC fpppp: enormous straight-line float blocks",
            None,
            || { net_kernel(96, 4, 24, 4, 101) }
        ),
        kernel!(
            "twldrv",
            "SPEC wave5 twldrv: twiddle-factor driver",
            None,
            || { net_kernel(84, 4, 32, 3, 102) }
        ),
        kernel!(
            "deseco",
            "Perfect-club deseco: wide update network",
            None,
            || { net_call_kernel(36, 4, 28, 2, 40, 103) }
        ),
        kernel!(
            "jacld",
            "NAS LU jacld: jacobian assembly, huge blocks",
            None,
            || { net_kernel(88, 4, 24, 3, 104) }
        ),
        kernel!("jacu", "NAS LU jacu: upper-jacobian assembly", None, || {
            net_kernel(84, 4, 24, 3, 105)
        }),
        kernel!(
            "blts",
            "NAS LU blts: block lower-triangular solve",
            None,
            || { net_kernel(34, 4, 28, 2, 106) }
        ),
        kernel!(
            "buts",
            "NAS LU buts: block upper-triangular solve",
            None,
            || { net_kernel(35, 4, 28, 2, 107) }
        ),
        // ---- FFTPACK radix passes ----
        kernel!(
            "radf5",
            "FFTPACK radf5: radix-5 forward butterfly",
            None,
            || { radix_kernel(5, 3, 40, true, 108) }
        ),
        kernel!(
            "radb5",
            "FFTPACK radb5: radix-5 backward butterfly",
            None,
            || { radix_kernel(5, 3, 40, false, 109) }
        ),
        kernel!(
            "radf4",
            "FFTPACK radf4: radix-4 forward butterfly",
            None,
            || { radix_kernel(4, 3, 48, true, 110) }
        ),
        kernel!(
            "radf4X",
            "radf4 after pressure transform (paper's X suffix)",
            Some(4),
            || { radix_kernel(4, 3, 48, true, 110) }
        ),
        kernel!(
            "radb4",
            "FFTPACK radb4: radix-4 backward butterfly",
            None,
            || { radix_kernel(4, 3, 48, false, 111) }
        ),
        kernel!("radb4X", "radb4 after pressure transform", Some(4), || {
            radix_kernel(4, 3, 48, false, 111)
        }),
        kernel!("radf3X", "radix-3 butterfly, transformed", Some(4), || {
            radix_kernel(3, 3, 48, true, 112)
        }),
        kernel!("radb3X", "radix-3 backward, transformed", Some(4), || {
            radix_kernel(3, 3, 48, false, 113)
        }),
        kernel!("radf2X", "radix-2 butterfly, transformed", Some(8), || {
            radix_kernel(2, 4, 64, true, 114)
        }),
        kernel!("radb2X", "radix-2 backward, transformed", Some(8), || {
            radix_kernel(2, 4, 64, false, 115)
        }),
        // ---- medium float networks (erhs/rhs/supp/subb/…) ----
        kernel!(
            "erhs",
            "NAS LU erhs: flux-difference loop nests",
            None,
            || { net_kernel(34, 4, 32, 3, 116) }
        ),
        kernel!("rhs", "NAS LU rhs: right-hand-side assembly", None, || {
            net_kernel(33, 4, 32, 3, 117)
        }),
        kernel!(
            "supp",
            "Perfect-club supp: support-function evaluation",
            None,
            || { net_call_kernel(34, 4, 28, 2, 40, 118) }
        ),
        kernel!("subb", "Perfect-club subb: substitution pass", None, || {
            net_call_kernel(35, 4, 28, 2, 38, 119)
        }),
        kernel!(
            "saturr",
            "saturr: rational saturation per element",
            None,
            || { net_kernel(33, 3, 32, 2, 120) }
        ),
        kernel!("ddeflu", "ddeflu: deflation update", None, || {
            net_call_kernel(34, 3, 32, 2, 40, 121)
        }),
        kernel!("debflu", "debflu: flux balance", None, || {
            net_call_kernel(33, 3, 32, 1, 36, 122)
        }),
        kernel!("bilan", "bilan: energy balance reduction", None, || {
            net_call_kernel(34, 3, 28, 2, 42, 123)
        }),
        kernel!("pastem", "pastem: time-stepping update", None, || {
            net_call_kernel(33, 3, 32, 1, 36, 124)
        }),
        kernel!(
            "prophy",
            "prophy: physical-property evaluation",
            None,
            || { net_call_kernel(34, 4, 28, 2, 44, 125) }
        ),
        kernel!("colbur", "colbur: collision/burn kernel", None, || {
            net_call_kernel(33, 3, 32, 1, 36, 126)
        }),
        kernel!(
            "cosqf1",
            "FFTPACK cosqf1: cosine transform pass",
            None,
            || { net_kernel(32, 3, 36, 1, 127) }
        ),
        // ---- stencils ----
        kernel!("tomcatv", "SPEC tomcatv: mesh relaxation", None, || {
            stencil_kernel(20, 2, 24, 128)
        }),
        kernel!(
            "smoothX",
            "smooth after pressure transform",
            Some(2),
            || { stencil_kernel(18, 2, 14, 129) }
        ),
        kernel!("fieldX", "field update, transformed", Some(4), || {
            net_kernel(16, 3, 48, 2, 130)
        }),
        kernel!(
            "initX",
            "initialization sweep, transformed",
            Some(4),
            || { net_kernel(14, 2, 48, 1, 131) }
        ),
        kernel!(
            "vslv1pX",
            "vectorized solver pass, transformed",
            Some(4),
            || { net_kernel(24, 3, 40, 2, 132) }
        ),
        kernel!(
            "vslv1xX",
            "vectorized solver pass (variant), transformed",
            Some(4),
            || { net_kernel(25, 3, 40, 2, 133) }
        ),
        // ---- Forsythe numerical methods ----
        kernel!(
            "decomp",
            "Forsythe decomp+solve: LU with substitution",
            None,
            || { decomp_kernel(12, 134) }
        ),
        kernel!("svd", "Forsythe svd: rotation application", None, || {
            net_kernel(33, 4, 24, 2, 135)
        }),
        kernel!(
            "zeroin",
            "Forsythe zeroin: root finder, call-heavy",
            None,
            || { caller_pressure_kernel(48, 34, 34, 136) }
        ),
        kernel!("fmin", "Forsythe fmin: minimizer, call-heavy", None, || {
            caller_pressure_kernel(40, 30, 33, 137)
        }),
        // ---- particles / gather-scatter ----
        kernel!(
            "parmvr",
            "particle move (gather-update-scatter)",
            None,
            || { particle_kernel(96, 16, 20, 138) }
        ),
        kernel!("parmvrX", "particle move, transformed", Some(2), || {
            particle_kernel(96, 16, 20, 138)
        }),
        kernel!("parmveX", "particle exchange, transformed", Some(2), || {
            particle_kernel(96, 16, 12, 139)
        }),
        // ---- integer pressure ----
        kernel!("urand", "Forsythe urand: integer recurrences", None, || {
            int_kernel(36, 4, 32, 140)
        }),
        kernel!("ihash", "integer hashing network", None, || {
            int_kernel(40, 3, 28, 141)
        }),
        // ---- light, non-spilling routines ----
        kernel!("efill", "efill: strided fill", None, || copy_kernel(
            128, 2, 142
        )),
        kernel!("getb", "getb: block gather", None, || copy_kernel(
            96, 3, 143
        )),
        kernel!("putb", "putb: block scatter", None, || copy_kernel(
            96, 1, 144
        )),
        kernel!(
            "seval",
            "Forsythe seval: spline evaluation (light)",
            None,
            || { net_kernel(8, 2, 48, 1, 145) }
        ),
        // ---- remaining paper-table names ----
        kernel!("gamgen", "gamgen: gamma-table generation", None, || {
            net_kernel(33, 3, 30, 2, 146)
        }),
        kernel!("denptX", "density-update, transformed", Some(4), || {
            net_kernel(18, 3, 44, 2, 147)
        }),
        kernel!(
            "rffti1X",
            "FFTPACK rffti1 init, transformed",
            Some(4),
            || { net_kernel(17, 2, 44, 1, 148) }
        ),
        kernel!(
            "slv2xyX",
            "2-D xy solver pass, transformed",
            Some(2),
            || { net_kernel(22, 3, 38, 2, 149) }
        ),
        kernel!("debico", "debico: decomposition bookkeeping", None, || {
            net_call_kernel(33, 3, 30, 1, 36, 150)
        }),
        kernel!(
            "inideb",
            "inideb: initialization w/ helper calls",
            None,
            || { net_call_kernel(32, 3, 28, 1, 38, 151) }
        ),
        kernel!("heat", "heat: explicit diffusion step", None, || {
            stencil_kernel(18, 2, 20, 152)
        }),
        kernel!("drigl", "drigl: grid-line driver", None, || {
            net_kernel(32, 3, 30, 2, 153)
        }),
        kernel!("coeray", "coeray: ray-coefficient evaluation", None, || {
            net_kernel(33, 4, 26, 1, 154)
        }),
        kernel!("integr", "integr: panel integration (light)", None, || {
            net_kernel(12, 2, 40, 1, 155)
        }),
        kernel!(
            "orgpar",
            "orgpar: parameter organization (light)",
            None,
            || { copy_kernel(112, 2, 156) }
        ),
        kernel!("x21y21", "x21y21: coordinate transform", None, || {
            net_kernel(24, 3, 36, 1, 157)
        }),
        // The four routines the paper singles out as needing > 1000 bytes
        // of spill memory *without* compacting at all: one giant phase in
        // which every spill slot interferes with every other.
        kernel!(
            "paroi",
            "paroi: wall-interaction, one huge phase",
            None,
            || { monolith_kernel(164, 8, 158) }
        ),
        kernel!(
            "inisla",
            "inisla: slab initialization, one huge phase",
            None,
            || { monolith_kernel(160, 8, 159) }
        ),
        kernel!(
            "energyx",
            "energy evaluation, transformed, one huge phase",
            None,
            || { monolith_kernel(172, 8, 160) }
        ),
        kernel!(
            "pdiagX",
            "pressure diagnostic, transformed, one huge phase",
            None,
            || { monolith_kernel(168, 8, 161) }
        ),
    ]
}

/// Looks up a kernel by name.
pub fn kernel(name: &str) -> Option<Kernel> {
    kernels().into_iter().find(|k| k.name == name)
}
