//! Multi-routine programs for the whole-program experiments (Figures 3/4).
//!
//! The paper reports whole-program running times for 13 programs, six of
//! which improved under CCM spilling. Each program here links several
//! suite kernels into one module (globals and functions renamed apart), so
//! interprocedural CCM allocation sees a real call graph.

use iloc::{Module, Op, RegClass};

use crate::kernels::{kernel, Kernel};

/// A program: a named set of member kernels linked into one module.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name.
    pub name: &'static str,
    /// Member kernel names (must exist in [`crate::kernels::kernels`]).
    pub members: &'static [&'static str],
}

/// The 13 programs of the whole-program experiments.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "fftpack",
            members: &["radf4", "radb4", "radf5", "radb5", "cosqf1"],
        },
        Program {
            name: "fftpackX",
            members: &["radf4X", "radb4X", "radf3X", "radb3X", "radf2X", "radb2X"],
        },
        Program {
            name: "applu",
            members: &["jacld", "jacu", "blts", "buts", "erhs", "rhs"],
        },
        Program {
            name: "forsythe",
            members: &["decomp", "svd", "zeroin", "fmin", "urand"],
        },
        Program {
            name: "wave",
            members: &["twldrv", "fieldX", "initX", "parmvr"],
        },
        Program {
            name: "turb3d",
            members: &["ddeflu", "debflu", "bilan", "deseco", "pastem", "prophy"],
        },
        Program {
            name: "mesh",
            members: &["tomcatv", "smoothX", "vslv1pX", "vslv1xX"],
        },
        Program {
            name: "chem",
            members: &["fpppp", "supp", "subb", "saturr"],
        },
        Program {
            name: "pic",
            members: &["parmvr", "parmveX", "efill"],
        },
        Program {
            name: "pack",
            members: &["efill", "getb", "putb"],
        },
        Program {
            name: "hash",
            members: &["ihash", "urand"],
        },
        Program {
            name: "rotor",
            members: &["colbur", "svd", "cosqf1"],
        },
        Program {
            name: "spice",
            members: &["saturr", "ddeflu", "zeroin", "getb"],
        },
    ]
}

/// Looks up a program by name.
pub fn program(name: &str) -> Option<Program> {
    programs().into_iter().find(|p| p.name == name)
}

/// Renames every global and function of `m` with `prefix`, rewriting
/// `loadSym` and `call` references.
fn rename_module(m: &mut Module, prefix: &str) {
    for g in &mut m.globals {
        g.name = format!("{prefix}{}", g.name);
    }
    for f in &mut m.functions {
        f.name = format!("{prefix}{}", f.name);
        for b in 0..f.blocks.len() {
            for i in 0..f.blocks[b].instrs.len() {
                match &mut f.blocks[b].instrs[i].op {
                    Op::LoadSym { sym, .. } => *sym = format!("{prefix}{sym}"),
                    Op::Call { callee, .. } => *callee = format!("{prefix}{callee}"),
                    _ => {}
                }
            }
        }
    }
}

/// Builds a program module: each member kernel is built, optimized with
/// its own unroll setting, renamed apart, and merged; a fresh `main` calls
/// every member's entry in order and returns the combined checksum.
///
/// The returned module is already scalar-optimized — run register
/// allocation (and CCM passes) on it directly.
///
/// # Panics
///
/// Panics if a member name is unknown.
pub fn build_program(p: &Program) -> Module {
    let mut merged = Module::new();
    let mut entries = Vec::new();
    for (i, name) in p.members.iter().enumerate() {
        let k: Kernel = kernel(name).unwrap_or_else(|| panic!("unknown kernel {name}"));
        let mut m = crate::build_optimized(&k);
        let prefix = format!("{}{}_", name, i);
        rename_module(&mut m, &prefix);
        entries.push(format!("{prefix}main"));
        for g in m.globals {
            merged.push_global(g);
        }
        for f in m.functions {
            merged.push_function(f);
        }
    }

    let mut main = iloc::builder::FuncBuilder::new("main");
    main.set_ret_classes(&[RegClass::Fpr]);
    let acc = main.vreg(RegClass::Fpr);
    main.emit(Op::LoadF { imm: 0.0, dst: acc });
    for e in &entries {
        let r = main.call(e.clone(), &[], &[RegClass::Fpr]);
        let t = main.fadd(acc, r[0]);
        main.emit(Op::F2F { src: t, dst: acc });
    }
    main.ret(&[acc]);
    merged.push_function(main.finish());
    merged
        .verify()
        .unwrap_or_else(|e| panic!("program {} fails verification: {e}", p.name));
    merged
}
