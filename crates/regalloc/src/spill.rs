//! Spill-code insertion ("spill everywhere", the Chaitin discipline).
//!
//! Every spilled live range gets a storage location from a
//! [`SpillPlacer`]: the baseline placer uses a fresh activation-record
//! slot; the CCM-integrated placer (in the `ccm` crate) may instead pick a
//! compiler-controlled-memory offset, which is exactly the paper's §3.2
//! modification. Stores after defs and loads before uses are tagged with
//! their slot so downstream passes can identify spill traffic precisely.

use std::collections::{HashMap, HashSet};

use iloc::{Function, Instr, Op, Reg, RegClass, SlotId, SpillSlot};

use crate::igraph::InterferenceGraph;

/// Where a spilled live range lives.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Placement {
    /// A main-memory slot in the activation record.
    Frame(SlotId),
    /// A CCM location at the given byte offset (already recorded as an
    /// `in_ccm` slot in the frame).
    Ccm(SlotId),
}

impl Placement {
    /// The frame slot id backing this placement.
    pub fn slot(&self) -> SlotId {
        match self {
            Placement::Frame(s) | Placement::Ccm(s) => *s,
        }
    }
}

/// Chooses storage for spilled live ranges.
pub trait SpillPlacer {
    /// Picks a location for spilled register `v` (graph node `v_id`).
    ///
    /// Implementations may inspect `graph` for `v`'s interference with
    /// other live ranges and with CCM locations, and must create the
    /// backing [`SpillSlot`] in `f.frame`.
    fn place(
        &mut self,
        f: &mut Function,
        v: Reg,
        v_id: usize,
        graph: &InterferenceGraph,
    ) -> Placement;

    /// Called once after a round of spill insertion completes.
    fn end_round(&mut self) {}
}

/// The baseline placer: every spilled value gets a fresh slot in the
/// activation record (main memory), extending the frame as needed —
/// matching the paper's description of a traditional allocator.
#[derive(Debug, Default)]
pub struct FramePlacer;

impl SpillPlacer for FramePlacer {
    fn place(
        &mut self,
        f: &mut Function,
        v: Reg,
        _v_id: usize,
        _graph: &InterferenceGraph,
    ) -> Placement {
        Placement::Frame(f.frame.new_slot(v.class()))
    }
}

/// Inserts spill code for `spilled` registers. Returns the set of
/// temporaries created (they must get infinite spill cost next round).
pub fn insert_spill_code(
    f: &mut Function,
    spilled: &[Reg],
    placer: &mut dyn SpillPlacer,
    graph: &InterferenceGraph,
) -> HashSet<Reg> {
    let mut placements: HashMap<Reg, Placement> = HashMap::new();
    for &v in spilled {
        let v_id = graph.entities.id(crate::entity::Entity::Reg(v));
        let p = placer.place(f, v, v_id, graph);
        placements.insert(v, p);
    }

    let mut temps: HashSet<Reg> = HashSet::new();
    let spilled_set: HashSet<Reg> = spilled.iter().copied().collect();

    for b in f.block_ids().collect::<Vec<_>>() {
        let mut i = 0;
        while i < f.block(b).instrs.len() {
            let instr = f.block(b).instrs[i].clone();

            // Which spilled regs does it use / define?
            let mut used: Vec<Reg> = Vec::new();
            instr.op.visit_uses(|r| {
                if spilled_set.contains(&r) && !used.contains(&r) {
                    used.push(r);
                }
            });
            let mut defined: Vec<Reg> = Vec::new();
            instr.op.visit_defs(|r| {
                if spilled_set.contains(&r) && !defined.contains(&r) {
                    defined.push(r);
                }
            });
            if used.is_empty() && defined.is_empty() {
                i += 1;
                continue;
            }

            // Loads before: one fresh temp per spilled reg used here.
            let mut use_map: HashMap<Reg, Reg> = HashMap::new();
            for &v in &used {
                let t = f.new_vreg(v.class());
                temps.insert(t);
                use_map.insert(v, t);
                let load = load_instr(f, t, placements[&v]);
                f.block_mut(b).instrs.insert(i, load);
                i += 1;
            }
            // Stores after: fresh temp per def.
            let mut def_map: HashMap<Reg, Reg> = HashMap::new();
            for &v in &defined {
                let t = f.new_vreg(v.class());
                temps.insert(t);
                def_map.insert(v, t);
            }
            {
                let instr = &mut f.block_mut(b).instrs[i];
                instr.op.map_uses(|r| use_map.get(&r).copied().unwrap_or(r));
                instr.op.map_defs(|r| def_map.get(&r).copied().unwrap_or(r));
            }
            let mut after = i + 1;
            for &v in &defined {
                let store = store_instr_from(f, def_map[&v], placements[&v]);
                f.block_mut(b).instrs.insert(after, store);
                after += 1;
            }
            i = after;
        }
    }

    // Spilled parameters: store their incoming value at the very top of
    // the entry block (inserted last so the rewriting loop above never
    // mistakes these stores for ordinary uses).
    let entry = f.entry();
    let mut entry_stores: Vec<Instr> = Vec::new();
    for p in f.params.clone() {
        if let Some(&pl) = placements.get(&p) {
            entry_stores.push(store_instr(f, p, pl));
        }
    }
    for (k, instr) in entry_stores.into_iter().enumerate() {
        f.block_mut(entry).instrs.insert(k, instr);
    }

    placer.end_round();
    temps
}

/// Rewrites spilled-but-rematerializable live ranges: every use of `v`
/// is fed by a fresh clone of its constant definition placed immediately
/// before the use, and the original definition is deleted — no memory
/// traffic at all (Briggs). Returns the fresh temporaries (unspillable
/// next round).
pub fn rematerialize_spills(f: &mut Function, spilled: &[(Reg, Op)]) -> HashSet<Reg> {
    let mut temps = HashSet::new();
    let map: HashMap<Reg, Op> = spilled.iter().cloned().collect();
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut i = 0;
        while i < f.block(b).instrs.len() {
            // Delete original definitions of remat values.
            let defs = f.block(b).instrs[i].op.defs();
            if defs.len() == 1 && map.contains_key(&defs[0]) {
                f.block_mut(b).instrs.remove(i);
                continue;
            }
            // Re-issue the constant before each use.
            let mut used: Vec<Reg> = Vec::new();
            f.block(b).instrs[i].op.visit_uses(|r| {
                if map.contains_key(&r) && !used.contains(&r) {
                    used.push(r);
                }
            });
            for &v in &used {
                let t = f.new_vreg(v.class());
                temps.insert(t);
                let mut def = map[&v].clone();
                def.map_defs(|_| t);
                f.block_mut(b).instrs.insert(i, Instr::new(def));
                i += 1;
                f.block_mut(b).instrs[i]
                    .op
                    .map_uses(|r| if r == v { t } else { r });
            }
            i += 1;
        }
    }
    temps
}

/// Builds the tagged store of `value_reg` into placement `p`.
fn store_instr_from(f: &Function, value_reg: Reg, p: Placement) -> Instr {
    let slot_id = p.slot();
    let slot: SpillSlot = *f.frame.slot(slot_id);
    let op = match (p, value_reg.class()) {
        (Placement::Frame(_), RegClass::Gpr) => Op::StoreAI {
            val: value_reg,
            addr: Reg::RARP,
            off: slot.offset as i64,
        },
        (Placement::Frame(_), RegClass::Fpr) => Op::FStoreAI {
            val: value_reg,
            addr: Reg::RARP,
            off: slot.offset as i64,
        },
        (Placement::Ccm(_), RegClass::Gpr) => Op::CcmStore {
            val: value_reg,
            off: slot.offset,
        },
        (Placement::Ccm(_), RegClass::Fpr) => Op::CcmFStore {
            val: value_reg,
            off: slot.offset,
        },
    };
    Instr::spill_store(op, slot_id)
}

/// Store of the original register (used for parameter saves at entry).
fn store_instr(f: &Function, v: Reg, p: Placement) -> Instr {
    store_instr_from(f, v, p)
}

/// Builds the tagged reload into `temp` from placement `p`.
fn load_instr(f: &Function, temp: Reg, p: Placement) -> Instr {
    let slot_id = p.slot();
    let slot: SpillSlot = *f.frame.slot(slot_id);
    let op = match (p, temp.class()) {
        (Placement::Frame(_), RegClass::Gpr) => Op::LoadAI {
            addr: Reg::RARP,
            off: slot.offset as i64,
            dst: temp,
        },
        (Placement::Frame(_), RegClass::Fpr) => Op::FLoadAI {
            addr: Reg::RARP,
            off: slot.offset as i64,
            dst: temp,
        },
        (Placement::Ccm(_), RegClass::Gpr) => Op::CcmLoad {
            off: slot.offset,
            dst: temp,
        },
        (Placement::Ccm(_), RegClass::Fpr) => Op::CcmFLoad {
            off: slot.offset,
            dst: temp,
        },
    };
    Instr::spill_restore(op, slot_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityIndex;
    use iloc::builder::FuncBuilder;
    use iloc::SpillKind;

    fn graph(f: &Function) -> InterferenceGraph {
        InterferenceGraph::build(f, EntityIndex::build(f, RegClass::Gpr))
    }

    #[test]
    fn spill_everywhere_inserts_store_after_def_and_load_before_use() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(7);
        let b = fb.addi(a, 1);
        fb.ret(&[b]);
        let mut f = fb.finish();
        let g = graph(&f);
        let temps = insert_spill_code(&mut f, &[a], &mut FramePlacer, &g);
        iloc::verify_function(&f).unwrap();
        assert_eq!(temps.len(), 2); // one def temp + one use temp
        let instrs = &f.block(f.entry()).instrs;
        // loadI → store(tag) → load(tag) → add → ret
        assert!(matches!(instrs[0].op, Op::LoadI { .. }));
        assert!(matches!(instrs[1].spill, SpillKind::Store(_)));
        assert!(matches!(instrs[2].spill, SpillKind::Restore(_)));
        assert_eq!(f.frame.slots.len(), 1);
        assert_eq!(f.frame.spill_bytes(), 4);
    }

    #[test]
    fn spilled_param_stored_at_entry() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let r = fb.addi(p, 1);
        fb.ret(&[r]);
        let mut f = fb.finish();
        let g = graph(&f);
        insert_spill_code(&mut f, &[p], &mut FramePlacer, &g);
        iloc::verify_function(&f).unwrap();
        let first = &f.block(f.entry()).instrs[0];
        assert!(matches!(first.spill, SpillKind::Store(_)));
        assert!(matches!(first.op, Op::StoreAI { val, .. } if val == p));
    }

    #[test]
    fn float_spills_use_float_ops_and_eight_bytes() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let x = fb.loadf(1.5);
        let y = fb.fadd(x, x);
        fb.ret(&[y]);
        let mut f = fb.finish();
        let g = InterferenceGraph::build(&f, EntityIndex::build(&f, RegClass::Fpr));
        insert_spill_code(&mut f, &[x], &mut FramePlacer, &g);
        iloc::verify_function(&f).unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::FStoreAI { .. })));
        assert_eq!(f.frame.spill_bytes(), 8);
    }

    #[test]
    fn use_in_terminator_reloaded_before_it() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(3);
        fb.ret(&[a]);
        let mut f = fb.finish();
        let g = graph(&f);
        insert_spill_code(&mut f, &[a], &mut FramePlacer, &g);
        iloc::verify_function(&f).unwrap();
        let instrs = &f.block(f.entry()).instrs;
        let n = instrs.len();
        assert!(matches!(instrs[n - 2].spill, SpillKind::Restore(_)));
        assert!(instrs[n - 1].op.is_terminator());
    }

    #[test]
    fn double_use_in_one_instr_gets_one_reload() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(3);
        let s = fb.add(a, a);
        fb.ret(&[s]);
        let mut f = fb.finish();
        let g = graph(&f);
        insert_spill_code(&mut f, &[a], &mut FramePlacer, &g);
        let reloads = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.spill, SpillKind::Restore(_)))
            .count();
        assert_eq!(reloads, 1);
    }
}
