#![warn(missing_docs)]
//! A Chaitin-Briggs graph-coloring register allocator.
//!
//! Implements the allocator of Briggs' thesis as used by the paper:
//! interference-graph construction over live ranges, conservative
//! coalescing, `10^depth` spill costs, simplify/select with optimistic
//! coloring, and spill-everywhere code insertion — plus the paper's §3.2
//! extension points: CCM locations appear as first-class interference
//! graph [`Entity`]s, and spilled live ranges are placed through the
//! [`SpillPlacer`] trait so the CCM-integrated allocator can redirect them
//! into compiler-controlled memory.
//!
//! # Example
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use iloc::RegClass;
//! use regalloc::AllocConfig;
//!
//! // Twelve simultaneously-live values, four registers: spills happen.
//! let mut fb = FuncBuilder::new("f");
//! fb.set_ret_classes(&[RegClass::Gpr]);
//! let vals: Vec<_> = (0..12).map(|i| fb.loadi(i)).collect();
//! let mut acc = vals[11];
//! for v in vals[..11].iter().rev() {
//!     acc = fb.add(acc, *v);
//! }
//! fb.ret(&[acc]);
//! let mut f = fb.finish();
//!
//! let stats = regalloc::allocate_function(&mut f, &AllocConfig::tiny(4));
//! assert!(stats.total_spilled() > 0);
//! assert!(regalloc::no_virtual_regs(&f));
//! assert!(f.spill_instr_count() > 0); // tagged spill code was inserted
//! ```

pub mod allocator;
pub mod color;
pub mod config;
pub mod costs;
pub mod entity;
pub mod igraph;
pub mod spill;

pub use allocator::{
    allocate_function, allocate_function_with, allocate_module, check_register_bounds,
    no_virtual_regs, AllocStats,
};
pub use color::{color, Coloring};
pub use config::AllocConfig;
pub use costs::{SpillCosts, INFINITE};
pub use entity::{Entity, EntityIndex};
pub use igraph::{entity_liveness, InterferenceGraph};
pub use spill::{insert_spill_code, FramePlacer, Placement, SpillPlacer};
