//! Chaitin-style spill-cost estimation.

use std::collections::{HashMap, HashSet};

use analysis::{Dominators, LoopInfo};
use iloc::{Function, Reg};

/// Spill costs per register: the estimated dynamic cost of spilling the
/// live range, `Σ 10^loopdepth` over its definitions and uses.
#[derive(Clone, Debug)]
pub struct SpillCosts {
    costs: HashMap<Reg, f64>,
}

/// Cost value treated as unspillable (spill temporaries, tiny ranges).
pub const INFINITE: f64 = f64::INFINITY;

impl SpillCosts {
    /// Computes costs for every virtual register in `f`.
    ///
    /// `unspillable` registers (the short-lived temporaries created by
    /// earlier spill insertion) get infinite cost, as do "tiny" ranges
    /// whose def and sole use are adjacent — respilling those would
    /// generate as much traffic as it removes. Registers in `remat` (cheap
    /// to recompute) get half cost, biasing the allocator toward spilling
    /// them first, as in Briggs' allocator.
    pub fn compute_with_remat(
        f: &Function,
        unspillable: &HashSet<Reg>,
        remat: &HashSet<Reg>,
    ) -> SpillCosts {
        let dom = Dominators::compute(f);
        let loops = LoopInfo::compute(f, &dom);

        let mut costs: HashMap<Reg, f64> = HashMap::new();
        // (block, index) of single def / single use for tininess check.
        let mut sites: HashMap<Reg, Vec<(usize, usize, bool)>> = HashMap::new();

        for b in f.block_ids() {
            let w = loops.weight(b);
            for (i, instr) in f.block(b).instrs.iter().enumerate() {
                instr.op.visit_defs(|r| {
                    if r.is_virtual() {
                        *costs.entry(r).or_insert(0.0) += w;
                        sites.entry(r).or_default().push((b.index(), i, true));
                    }
                });
                instr.op.visit_uses(|r| {
                    if r.is_virtual() {
                        *costs.entry(r).or_insert(0.0) += w;
                        sites.entry(r).or_default().push((b.index(), i, false));
                    }
                });
            }
        }

        for (r, s) in &sites {
            if unspillable.contains(r) {
                costs.insert(*r, INFINITE);
                continue;
            }
            if remat.contains(r) {
                if let Some(c) = costs.get_mut(r) {
                    *c *= 0.5;
                }
                continue; // never "tiny": remat spilling is always cheap
            }
            // Tiny range: one def at (b, i), one use at (b, i+1).
            if s.len() == 2 {
                let def = s.iter().find(|x| x.2);
                let use_ = s.iter().find(|x| !x.2);
                if let (Some(&(db, di, _)), Some(&(ub, ui, _))) = (def, use_) {
                    if db == ub && ui == di + 1 {
                        costs.insert(*r, INFINITE);
                    }
                }
            }
        }

        SpillCosts { costs }
    }

    /// Computes costs with no rematerialization candidates.
    pub fn compute(f: &Function, unspillable: &HashSet<Reg>) -> SpillCosts {
        SpillCosts::compute_with_remat(f, unspillable, &HashSet::new())
    }

    /// The cost of spilling `r` (0 if the register never appears).
    pub fn cost(&self, r: Reg) -> f64 {
        self.costs.get(&r).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Op, RegClass};

    #[test]
    fn loop_references_cost_ten_times_more() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let outside = fb.loadi(1); // def at depth 0
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, _| {
            let t = fb.add(acc, outside); // use of `outside` at depth 1
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let f = fb.finish();
        let costs = SpillCosts::compute(&f, &HashSet::new());
        // outside: def (w=1) + one use at depth 1 (w=10) = 11.
        assert_eq!(costs.cost(outside), 11.0);
    }

    #[test]
    fn unspillable_set_is_infinite() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.addi(a, 1);
        let c = fb.add(b, b); // b used twice later → not tiny
        let d = fb.add(c, b);
        fb.ret(&[d]);
        let f = fb.finish();
        let mut unspillable = HashSet::new();
        unspillable.insert(b);
        let costs = SpillCosts::compute(&f, &unspillable);
        assert_eq!(costs.cost(b), INFINITE);
        // Without the unspillable mark, b's cost would be finite.
        let plain = SpillCosts::compute(&f, &HashSet::new());
        assert!(plain.cost(b).is_finite());
    }

    #[test]
    fn tiny_range_is_infinite() {
        // a defined then immediately consumed by the next instruction and
        // never touched again — spilling it cannot help.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.addi(a, 1); // immediate, only use of a
        let c = fb.addi(b, 1);
        let d = fb.add(c, b); // b used again later → b is NOT tiny
        fb.ret(&[d]);
        let f = fb.finish();
        let costs = SpillCosts::compute(&f, &HashSet::new());
        assert_eq!(costs.cost(a), INFINITE);
        assert!(costs.cost(b).is_finite());
    }
}
