//! Interference-graph construction over allocation entities.
//!
//! The graph is built per register class with the classic backward scan:
//! at each instruction, every entity defined there interferes with every
//! entity live after it (copies exempt their source, enabling
//! coalescing). CCM locations participate exactly like live ranges — a
//! CCM slot is defined by its `spill` and used by its `restore`s — giving
//! the §3.2 "CCM names in the interference graph" semantics.

use std::collections::HashSet;

use analysis::BitSet;
use iloc::{BlockId, Function, Op, Reg};

use crate::entity::{Entity, EntityIndex};

/// An interference graph over the entities of one class.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    /// Adjacency sets, indexed by dense entity id.
    adj: Vec<HashSet<usize>>,
    /// Entities that are live across at least one call site.
    crosses_call: Vec<bool>,
    /// Copy-related pairs `(min, max)` whose live ranges overlap: the
    /// builder suppressed their interference edge (the Chaitin copy
    /// exemption — both sides hold the same value, so sharing a
    /// *register* is harmless). Spill-placement must still keep their
    /// *slots* apart; see [`InterferenceGraph::slot_conflict`].
    copy_overlap: HashSet<(usize, usize)>,
    /// The dense numbering.
    pub entities: EntityIndex,
}

impl InterferenceGraph {
    /// Builds the graph for the class covered by `entities`.
    pub fn build(f: &Function, entities: EntityIndex) -> InterferenceGraph {
        let n = entities.len();
        let mut g = InterferenceGraph {
            adj: vec![HashSet::new(); n],
            crosses_call: vec![false; n],
            copy_overlap: HashSet::new(),
            entities,
        };
        if n == 0 {
            return g;
        }

        // Block-level liveness over the entity universe.
        let (live_in, _live_out) = entity_liveness(f, &g.entities);

        // Backward walk per block adding interference edges.
        for b in f.block_ids() {
            // live := live-out(b) = ∪ live-in(succ)
            let mut live = BitSet::new(n);
            for s in f.successors(b) {
                live.union_with(&live_in[s.index()]);
            }
            for instr in f.block(b).instrs.iter().rev() {
                let (uses, defs) = g.entities.uses_defs(&instr.op);
                // Copy: the source does not interfere with the target.
                let copy_src: Option<usize> = match &instr.op {
                    Op::I2I { src, .. } | Op::F2F { src, .. } => g.entities.get(Entity::Reg(*src)),
                    _ => None,
                };
                for &d in &defs {
                    for l in live.iter() {
                        if l == d {
                            continue;
                        }
                        if Some(l) == copy_src {
                            // Exempt from interference, but the ranges do
                            // overlap (src is live past the copy) — record
                            // it so spill placement keeps the slots apart.
                            g.copy_overlap.insert((d.min(l), d.max(l)));
                            continue;
                        }
                        g.add_edge(d, l);
                    }
                }
                // Values live across a call (live after it minus its defs).
                if matches!(instr.op, Op::Call { .. }) {
                    let mut across = live.clone();
                    for &d in &defs {
                        across.remove(d);
                    }
                    for l in across.iter() {
                        g.crosses_call[l] = true;
                    }
                }
                for &d in &defs {
                    live.remove(d);
                }
                for &u in &uses {
                    live.insert(u);
                }
            }
        }

        // Parameters are simultaneously defined at entry: make them
        // pairwise interfere so the call sequence can bind each to a
        // distinct register.
        let params: Vec<usize> = f
            .params
            .iter()
            .filter_map(|p| g.entities.get(Entity::Reg(*p)))
            .collect();
        for i in 0..params.len() {
            for j in i + 1..params.len() {
                g.add_edge(params[i], params[j]);
            }
        }
        g
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// Whether `a` and `b` may not share a spill location: they interfere,
    /// or they are a copy pair with overlapping live ranges. The copy
    /// exemption makes `interferes` the wrong oracle for storage reuse —
    /// copy-related values may share a *register* (same value) but their
    /// simultaneously-live spill slots still violate the checker's
    /// slot-overlap discipline (found by differential fuzzing under
    /// squeezed register files).
    pub fn slot_conflict(&self, a: usize, b: usize) -> bool {
        self.interferes(a, b) || self.copy_overlap.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbors of `a`.
    pub fn neighbors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[a].iter().copied()
    }

    /// Degree of `a`.
    pub fn degree(&self, a: usize) -> usize {
        self.adj[a].len()
    }

    /// Number of nodes (entities).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Whether entity `a` is live across some call.
    pub fn crosses_call(&self, a: usize) -> bool {
        self.crosses_call[a]
    }

    /// Merges node `b` into node `a` (coalescing): `a` inherits `b`'s
    /// edges and call-crossing flag; `b` becomes isolated.
    pub fn merge(&mut self, a: usize, b: usize) {
        debug_assert!(!self.interferes(a, b), "cannot merge interfering nodes");
        let bn: Vec<usize> = self.adj[b].iter().copied().collect();
        for n in bn {
            self.adj[n].remove(&b);
            self.add_edge(a, n);
        }
        self.adj[b].clear();
        if self.crosses_call[b] {
            self.crosses_call[a] = true;
        }
        // `b`'s copy-overlap pairs carry over to the merged node.
        let stale: Vec<(usize, usize)> = self
            .copy_overlap
            .iter()
            .filter(|&&(x, y)| x == b || y == b)
            .copied()
            .collect();
        for (x, y) in stale {
            self.copy_overlap.remove(&(x, y));
            let other = if x == b { y } else { x };
            if other != a {
                self.copy_overlap.insert((a.min(other), a.max(other)));
            }
        }
    }

    /// Briggs' conservative-coalescing test for merging `a` and `b` with
    /// `k` colors: the combined node must have fewer than `k` neighbors of
    /// significant degree (≥ k). CCM-location nodes take no color, so they
    /// are invisible here exactly as they are to the coloring phase —
    /// counting them used to block safe coalesces after integrated spill
    /// rounds, leaving dead copies behind (found by differential fuzzing).
    pub fn briggs_safe(&self, a: usize, b: usize, k: usize) -> bool {
        let mut significant = 0;
        let mut seen: HashSet<usize> = HashSet::new();
        for n in self.adj[a].iter().chain(self.adj[b].iter()) {
            if *n == a || *n == b || !seen.insert(*n) {
                continue;
            }
            if self.entities.entity(*n).is_ccm() {
                continue;
            }
            // A common neighbor of both loses one edge after the merge.
            let mut deg = self.color_degree(*n);
            if self.adj[a].contains(n) && self.adj[b].contains(n) {
                deg -= 1;
            }
            if deg >= k {
                significant += 1;
            }
        }
        significant < k
    }

    /// Degree of `a` counting only colorable (register) neighbors.
    pub fn color_degree(&self, a: usize) -> usize {
        self.adj[a]
            .iter()
            .filter(|&&n| !self.entities.entity(n).is_ccm())
            .count()
    }

    /// Interferers of `a` restricted to register entities.
    pub fn reg_neighbors(&self, a: usize) -> Vec<Reg> {
        self.neighbors(a)
            .filter_map(|n| self.entities.entity(n).as_reg())
            .collect()
    }

    /// Interferers of `a` restricted to CCM locations (byte offsets).
    pub fn ccm_neighbors(&self, a: usize) -> Vec<u32> {
        self.neighbors(a)
            .filter_map(|n| match self.entities.entity(n) {
                Entity::Ccm(off) => Some(off),
                Entity::Reg(_) => None,
            })
            .collect()
    }
}

/// Block-level liveness (live-in, live-out) over an entity universe.
pub fn entity_liveness(f: &Function, idx: &EntityIndex) -> (Vec<BitSet>, Vec<BitSet>) {
    let n_blocks = f.blocks.len();
    let n = idx.len();
    // gen/kill per block.
    let mut gens = vec![BitSet::new(n); n_blocks];
    let mut kills = vec![BitSet::new(n); n_blocks];
    for b in f.block_ids() {
        let bi = b.index();
        for instr in &f.block(b).instrs {
            let (uses, defs) = idx.uses_defs(&instr.op);
            for u in uses {
                if !kills[bi].contains(u) {
                    gens[bi].insert(u);
                }
            }
            for d in defs {
                kills[bi].insert(d);
            }
        }
    }
    let mut live_in = vec![BitSet::new(n); n_blocks];
    let mut live_out = vec![BitSet::new(n); n_blocks];
    let mut order: Vec<BlockId> = f.reverse_postorder();
    order.reverse();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            let mut out = BitSet::new(n);
            for s in f.successors(b) {
                out.union_with(&live_in[s.index()]);
            }
            let mut inn = out.clone();
            inn.subtract(&kills[bi]);
            inn.union_with(&gens[bi]);
            if out != live_out[bi] {
                live_out[bi] = out;
                changed = true;
            }
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    fn graph_for(f: &Function, class: RegClass) -> InterferenceGraph {
        InterferenceGraph::build(f, EntityIndex::build(f, class))
    }

    #[test]
    fn simultaneously_live_values_interfere() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.loadi(2);
        let c = fb.add(a, b); // a and b live together
        fb.ret(&[c]);
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        let (ia, ib) = (g.entities.id(Entity::Reg(a)), g.entities.id(Entity::Reg(b)));
        assert!(g.interferes(ia, ib));
        // c is defined when nothing else is live → no edges to a/b.
        let ic = g.entities.id(Entity::Reg(c));
        assert!(!g.interferes(ic, ia));
    }

    #[test]
    fn copy_source_does_not_interfere_with_target() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.copy(a); // copy: a ↛ b even though a may be live after
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        let (ia, ib) = (g.entities.id(Entity::Reg(a)), g.entities.id(Entity::Reg(b)));
        assert!(
            !g.interferes(ia, ib),
            "copy-related nodes must not interfere"
        );
    }

    #[test]
    fn copy_pair_with_overlapping_ranges_is_a_slot_conflict() {
        // Regression for a fuzzer finding: `b := a` with `a` live past
        // the copy. The copy exemption rightly omits the interference
        // edge (same value — a register can be shared), but if both spill
        // their slots must not share bytes, so `slot_conflict` still
        // reports the pair.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.copy(a); // a stays live: used again below
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        let (ia, ib) = (g.entities.id(Entity::Reg(a)), g.entities.id(Entity::Reg(b)));
        assert!(!g.interferes(ia, ib));
        assert!(g.slot_conflict(ia, ib));
        // No phantom conflicts: b dies at the add defining c, so the
        // non-copy pair (b, c) neither interferes nor overlaps.
        let ic = g.entities.id(Entity::Reg(c));
        assert!(!g.slot_conflict(ib, ic));
    }

    #[test]
    fn merge_carries_copy_overlap_pairs() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.copy(a);
        let c = fb.add(a, b);
        let d = fb.copy(c);
        fb.ret(&[d]);
        let f = fb.finish();
        let mut g = graph_for(&f, RegClass::Gpr);
        let (ia, ib, ic) = (
            g.entities.id(Entity::Reg(a)),
            g.entities.id(Entity::Reg(b)),
            g.entities.id(Entity::Reg(c)),
        );
        assert!(g.slot_conflict(ia, ib));
        // Merge b into c (they don't conflict): c inherits b's overlap
        // with a.
        assert!(!g.interferes(ib, ic));
        g.merge(ic, ib);
        assert!(g.slot_conflict(ia, ic));
    }

    #[test]
    fn ccm_location_interferes_with_values_live_over_it() {
        // spill a → ccm[0]; compute b while ccm[0] holds a; restore.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        fb.emit(Op::CcmStore { val: a, off: 0 });
        let b = fb.loadi(2); // live while ccm[0] is live
        let a2 = fb.vreg(RegClass::Gpr);
        fb.emit(Op::CcmLoad { off: 0, dst: a2 });
        let c = fb.add(a2, b);
        fb.ret(&[c]);
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        let islot = g.entities.id(Entity::Ccm(0));
        let ib = g.entities.id(Entity::Reg(b));
        assert!(g.interferes(islot, ib));
        // And the helper view exposes it from b's side.
        assert_eq!(g.ccm_neighbors(ib), vec![0]);
    }

    #[test]
    fn call_crossing_detected() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1); // live across the call
        let rets = fb.call("g", &[], &[RegClass::Gpr]);
        let c = fb.add(a, rets[0]);
        fb.ret(&[c]);
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        assert!(g.crosses_call(g.entities.id(Entity::Reg(a))));
        // The call's own result does not cross the call.
        assert!(!g.crosses_call(g.entities.id(Entity::Reg(rets[0]))));
    }

    #[test]
    fn params_pairwise_interfere() {
        let mut fb = FuncBuilder::new("f");
        let p = fb.param(RegClass::Gpr);
        let q = fb.param(RegClass::Gpr);
        fb.ret(&[]); // neither used
        let f = fb.finish();
        let g = graph_for(&f, RegClass::Gpr);
        assert!(g.interferes(g.entities.id(Entity::Reg(p)), g.entities.id(Entity::Reg(q))));
    }

    #[test]
    fn merge_transfers_edges() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.copy(a);
        let x = fb.loadi(9); // interferes with b (both live at add)
        let c = fb.add(b, x);
        fb.ret(&[c]);
        let f = fb.finish();
        let mut g = graph_for(&f, RegClass::Gpr);
        let (ia, ib, ix) = (
            g.entities.id(Entity::Reg(a)),
            g.entities.id(Entity::Reg(b)),
            g.entities.id(Entity::Reg(x)),
        );
        assert!(g.interferes(ib, ix));
        g.merge(ia, ib);
        assert!(g.interferes(ia, ix), "a inherits b's edge to x");
        assert_eq!(g.degree(ib), 0);
    }

    #[test]
    fn briggs_test_counts_significant_neighbors() {
        // Star: center interferes with 3 leaves; k = 2. Leaves have degree
        // 1 (< k) so merging two leaves is safe; merging… construct
        // directly on a hand-made graph.
        let mut fb = FuncBuilder::new("f");
        let r: Vec<_> = (0..4).map(|_| fb.loadi(0)).collect();
        fb.ret(&[]);
        let f = fb.finish();
        let mut g = graph_for(&f, RegClass::Gpr);
        let ids: Vec<usize> = r.iter().map(|x| g.entities.id(Entity::Reg(*x))).collect();
        // center = ids[0]; leaves = 1,2,3.
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[0], ids[3]);
        // Merging leaves 1 and 2 with k=2: combined neighbors = {center},
        // center degree 3 ≥ 2 → significant = 1 < 2 → safe.
        assert!(g.briggs_safe(ids[1], ids[2], 2));
        // With k=1: significant = 1 which is not < 1 → unsafe.
        assert!(!g.briggs_safe(ids[1], ids[2], 1));
    }

    #[test]
    fn briggs_test_ignores_ccm_location_nodes() {
        // Regression for a fuzzer finding: after an integrated spill round
        // the graph contains CCM-location entities. They take no color, so
        // they must not count toward the Briggs significant-neighbor test
        // (nor toward a neighbor's degree) — counting them blocked safe
        // coalesces and left dead copies in the integrated variant.
        let mut fb = FuncBuilder::new("f");
        let p0 = fb.param(RegClass::Gpr);
        let p1 = fb.param(RegClass::Gpr);
        fb.emit(iloc::Op::CcmStore { val: p0, off: 0 });
        fb.emit(iloc::Op::CcmStore { val: p1, off: 4 });
        let r: Vec<_> = (0..3).map(|_| fb.loadi(0)).collect();
        fb.ret(&[]);
        let f = fb.finish();
        let mut g = graph_for(&f, RegClass::Gpr);
        let ids: Vec<usize> = r.iter().map(|x| g.entities.id(Entity::Reg(*x))).collect();
        let ccm0 = g.entities.id(Entity::Ccm(0));
        let ccm4 = g.entities.id(Entity::Ccm(4));
        // a–center and b–center edges plus heavy CCM "interference".
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[1], ids[2]);
        for &i in &[ids[0], ids[1], ids[2]] {
            g.add_edge(i, ccm0);
            g.add_edge(i, ccm4);
        }
        // k = 2: center's colorable degree is 2 (≥ k) → 1 significant
        // neighbor < 2 → safe. With CCM nodes miscounted, the two CCM
        // neighbors would each look significant and the test would fail.
        assert!(g.briggs_safe(ids[0], ids[1], 2));
        assert_eq!(g.color_degree(ids[2]), 2);
        assert_eq!(g.degree(ids[2]), 4);
    }
}
