//! Allocation entities: live ranges of registers *and* CCM locations.
//!
//! Section 3.2 of the paper extends the Chaitin-Briggs interference graph
//! with a name space for CCM locations, so spill-code insertion can see
//! which CCM slots a value may not share. An [`Entity`] is either a
//! virtual register or a CCM location (identified by its byte offset).

use std::collections::HashMap;

use iloc::{Function, Op, Reg, RegClass};

/// A node identity in the interference graph.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Entity {
    /// A virtual register (candidate live range).
    Reg(Reg),
    /// A CCM location at the given byte offset.
    Ccm(u32),
}

impl Entity {
    /// Whether this entity is a CCM location.
    pub fn is_ccm(&self) -> bool {
        matches!(self, Entity::Ccm(_))
    }

    /// The register, if this is a register entity.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Entity::Reg(r) => Some(*r),
            Entity::Ccm(_) => None,
        }
    }
}

/// Dense numbering of the entities of one register class in a function:
/// its virtual registers plus the CCM offsets its spill code of that
/// class touches.
#[derive(Clone, Debug)]
pub struct EntityIndex {
    class: RegClass,
    to_id: HashMap<Entity, usize>,
    from_id: Vec<Entity>,
}

impl EntityIndex {
    /// Collects all entities of `class` appearing in `f`.
    pub fn build(f: &Function, class: RegClass) -> EntityIndex {
        let mut idx = EntityIndex {
            class,
            to_id: HashMap::new(),
            from_id: Vec::new(),
        };
        f.for_each_reg(|r| {
            if r.class() == class && r.is_virtual() {
                idx.intern(Entity::Reg(r));
            }
        });
        for b in &f.blocks {
            for i in &b.instrs {
                match &i.op {
                    Op::CcmStore { off, .. } | Op::CcmLoad { off, .. }
                        if class == RegClass::Gpr =>
                    {
                        idx.intern(Entity::Ccm(*off));
                    }
                    Op::CcmFStore { off, .. } | Op::CcmFLoad { off, .. }
                        if class == RegClass::Fpr =>
                    {
                        idx.intern(Entity::Ccm(*off));
                    }
                    _ => {}
                }
            }
        }
        idx
    }

    fn intern(&mut self, e: Entity) -> usize {
        *self.to_id.entry(e).or_insert_with(|| {
            self.from_id.push(e);
            self.from_id.len() - 1
        })
    }

    /// The class this index covers.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.from_id.len()
    }

    /// Whether there are no entities.
    pub fn is_empty(&self) -> bool {
        self.from_id.is_empty()
    }

    /// Dense id of `e`, if present.
    pub fn get(&self, e: Entity) -> Option<usize> {
        self.to_id.get(&e).copied()
    }

    /// Dense id of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` was not collected.
    pub fn id(&self, e: Entity) -> usize {
        self.get(e)
            .unwrap_or_else(|| panic!("entity {e:?} not in index"))
    }

    /// The entity with dense id `id`.
    pub fn entity(&self, id: usize) -> Entity {
        self.from_id[id]
    }

    /// Iterates `(id, entity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Entity)> + '_ {
        self.from_id.iter().copied().enumerate()
    }

    /// The entity uses/defs of `op` relevant to this index, as
    /// `(uses, defs)` id vectors. CCM loads *use* their location; CCM
    /// stores *define* it — the paper's §3.1 liveness definition for
    /// memory locations.
    pub fn uses_defs(&self, op: &Op) -> (Vec<usize>, Vec<usize>) {
        let mut uses = Vec::new();
        let mut defs = Vec::new();
        op.visit_uses(|r| {
            if let Some(id) = self.get(Entity::Reg(r)) {
                uses.push(id);
            }
        });
        op.visit_defs(|r| {
            if let Some(id) = self.get(Entity::Reg(r)) {
                defs.push(id);
            }
        });
        match op {
            Op::CcmStore { off, .. } if self.class == RegClass::Gpr => {
                defs.push(self.id(Entity::Ccm(*off)));
            }
            Op::CcmFStore { off, .. } if self.class == RegClass::Fpr => {
                defs.push(self.id(Entity::Ccm(*off)));
            }
            Op::CcmLoad { off, .. } if self.class == RegClass::Gpr => {
                uses.push(self.id(Entity::Ccm(*off)));
            }
            Op::CcmFLoad { off, .. } if self.class == RegClass::Fpr => {
                uses.push(self.id(Entity::Ccm(*off)));
            }
            _ => {}
        }
        (uses, defs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;

    #[test]
    fn collects_vregs_and_ccm_offsets_per_class() {
        let mut fb = FuncBuilder::new("f");
        let a = fb.loadi(1);
        let x = fb.loadf(2.0);
        fb.emit(Op::CcmStore { val: a, off: 0 });
        fb.emit(Op::CcmFStore { val: x, off: 8 });
        fb.ret(&[]);
        let f = fb.finish();

        let gi = EntityIndex::build(&f, RegClass::Gpr);
        assert_eq!(gi.len(), 2); // a + ccm[0]
        assert!(gi.get(Entity::Ccm(0)).is_some());
        assert!(gi.get(Entity::Ccm(8)).is_none()); // belongs to FPR index

        let fi = EntityIndex::build(&f, RegClass::Fpr);
        assert_eq!(fi.len(), 2); // x + ccm[8]
        assert!(fi.get(Entity::Ccm(8)).is_some());
    }

    #[test]
    fn ccm_store_defines_location_load_uses_it() {
        let mut fb = FuncBuilder::new("f");
        let a = fb.loadi(1);
        fb.emit(Op::CcmStore { val: a, off: 4 });
        let b = fb.vreg(RegClass::Gpr);
        fb.emit(Op::CcmLoad { off: 4, dst: b });
        fb.ret(&[]);
        let f = fb.finish();
        let gi = EntityIndex::build(&f, RegClass::Gpr);
        let store = &f.block(f.entry()).instrs[1].op;
        let (u, d) = gi.uses_defs(store);
        assert_eq!(u.len(), 1); // the value
        assert_eq!(d, vec![gi.id(Entity::Ccm(4))]);
        let load = &f.block(f.entry()).instrs[2].op;
        let (u, d) = gi.uses_defs(load);
        assert!(u.contains(&gi.id(Entity::Ccm(4))));
        assert_eq!(d, vec![gi.id(Entity::Reg(b))]);
    }

    #[test]
    fn physical_registers_excluded() {
        let mut fb = FuncBuilder::new("f");
        let v = fb.loadai(iloc::Reg::RARP, 0);
        fb.ret(&[v]);
        let mut f = fb.finish();
        f.ret_classes = vec![RegClass::Gpr];
        let gi = EntityIndex::build(&f, RegClass::Gpr);
        assert_eq!(gi.len(), 1);
        assert!(gi.get(Entity::Reg(iloc::Reg::RARP)).is_none());
    }
}
