//! Simplify/select graph coloring with optimistic spilling (Briggs).
//!
//! CCM-location nodes are present in the graph but invisible to coloring:
//! per §3.2, "the allocator ignores these edges during allocation and uses
//! them during spill code insertion".

use std::collections::HashMap;

use crate::costs::SpillCosts;
use crate::igraph::InterferenceGraph;

/// Result of one coloring attempt.
#[derive(Clone, Debug, Default)]
pub struct Coloring {
    /// Assigned colors, by dense entity id (register entities only).
    pub colors: HashMap<usize, u32>,
    /// Entity ids that could not be colored and must be spilled.
    pub spilled: Vec<usize>,
}

/// Colors the register entities of `g` with `k` colors.
///
/// Entities that are live across calls are denied colors below
/// `caller_saved` (0 disables the restriction). Spill choice follows the
/// classic cost/degree heuristic over [`SpillCosts`].
pub fn color(g: &InterferenceGraph, k: u32, caller_saved: u32, costs: &SpillCosts) -> Coloring {
    let n = g.len();
    // Only register entities participate.
    let is_node: Vec<bool> = (0..n).map(|i| !g.entities.entity(i).is_ccm()).collect();

    // Working degrees count only register-entity neighbors.
    let mut degree: Vec<usize> = (0..n)
        .map(|i| {
            if !is_node[i] {
                return 0;
            }
            g.neighbors(i).filter(|&x| is_node[x]).count()
        })
        .collect();

    let node_cost = |i: usize| -> f64 {
        match g.entities.entity(i).as_reg() {
            Some(r) => costs.cost(r),
            None => f64::INFINITY,
        }
    };

    let mut removed = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut remaining: usize = is_node.iter().filter(|&&b| b).count();

    while remaining > 0 {
        // Prefer any node with degree < k.
        let pick = (0..n)
            .filter(|&i| is_node[i] && !removed[i])
            .find(|&i| degree[i] < k as usize)
            .or_else(|| {
                // Optimistic spill candidate: minimum cost/degree. Infinite-
                // cost nodes are only chosen as a last resort.
                (0..n)
                    .filter(|&i| is_node[i] && !removed[i])
                    .min_by(|&a, &b| {
                        let ra = node_cost(a) / (degree[a].max(1) as f64);
                        let rb = node_cost(b) / (degree[b].max(1) as f64);
                        ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .expect("remaining > 0 implies a node exists");

        removed[pick] = true;
        stack.push(pick);
        remaining -= 1;
        for nb in g.neighbors(pick) {
            if is_node[nb] && !removed[nb] {
                degree[nb] -= 1;
            }
        }
    }

    // Select: pop and assign the lowest legal color.
    let mut out = Coloring::default();
    while let Some(i) = stack.pop() {
        let mut used = vec![false; k as usize];
        for nb in g.neighbors(i) {
            if let Some(&c) = out.colors.get(&nb) {
                used[c as usize] = true;
            }
        }
        let min_color = if g.crosses_call(i) { caller_saved } else { 0 };
        let choice = (min_color..k).find(|&c| !used[c as usize]);
        match choice {
            Some(c) => {
                out.colors.insert(i, c);
            }
            None => out.spilled.push(i),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, EntityIndex};
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;
    use std::collections::HashSet;

    /// Builds a function where `width` integer values are simultaneously
    /// live (a chain of loads followed by a reduction).
    fn wide_function(width: usize) -> (iloc::Function, Vec<iloc::Reg>) {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..width).map(|i| fb.loadi(i as i64)).collect();
        let mut acc = vals[0];
        for v in &vals[1..] {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        (fb.finish(), vals)
    }

    fn build(f: &iloc::Function) -> InterferenceGraph {
        InterferenceGraph::build(f, EntityIndex::build(f, RegClass::Gpr))
    }

    #[test]
    fn enough_colors_colors_everything() {
        let (f, _) = wide_function(6);
        let g = build(&f);
        let costs = SpillCosts::compute(&f, &HashSet::new());
        let c = color(&g, 8, 0, &costs);
        assert!(c.spilled.is_empty());
        // All register entities colored.
        for (id, e) in g.entities.iter() {
            if !e.is_ccm() {
                assert!(c.colors.contains_key(&id));
            }
        }
    }

    #[test]
    fn neighbors_get_distinct_colors() {
        let (f, _) = wide_function(5);
        let g = build(&f);
        let costs = SpillCosts::compute(&f, &HashSet::new());
        let c = color(&g, 8, 0, &costs);
        for (id, _) in g.entities.iter() {
            for nb in g.neighbors(id) {
                if let (Some(a), Some(b)) = (c.colors.get(&id), c.colors.get(&nb)) {
                    assert_ne!(a, b, "interfering nodes share a color");
                }
            }
        }
    }

    #[test]
    fn too_few_colors_spills() {
        let (f, _) = wide_function(8);
        let g = build(&f);
        let costs = SpillCosts::compute(&f, &HashSet::new());
        let c = color(&g, 3, 0, &costs);
        assert!(!c.spilled.is_empty());
    }

    #[test]
    fn caller_saved_restriction_respected() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        fb.call("g", &[], &[]);
        let r = fb.addi(a, 1);
        fb.ret(&[r]);
        let f = fb.finish();
        let g = build(&f);
        let costs = SpillCosts::compute(&f, &HashSet::new());
        let c = color(&g, 8, 4, &costs);
        let ia = g.entities.id(Entity::Reg(a));
        assert!(
            c.colors[&ia] >= 4,
            "call-crossing value must avoid caller-saved colors"
        );
    }

    #[test]
    fn optimistic_coloring_beats_pessimistic() {
        // A 4-cycle is 2-colorable even though every node has degree 2;
        // Chaitin's original (pessimistic) rule with k=2 would spill.
        let mut fb = FuncBuilder::new("f");
        let r: Vec<_> = (0..4).map(|_| fb.loadi(0)).collect();
        fb.ret(&[]);
        let f = fb.finish();
        let mut g = build(&f);
        let ids: Vec<usize> = r.iter().map(|x| g.entities.id(Entity::Reg(*x))).collect();
        // Clear incidental edges by construction: loads don't overlap here
        // (each dies immediately), so add exactly the 4-cycle.
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[2], ids[3]);
        g.add_edge(ids[3], ids[0]);
        let costs = SpillCosts::compute(&f, &HashSet::new());
        let c = color(&g, 2, 0, &costs);
        assert!(
            c.spilled.is_empty(),
            "optimistic coloring must 2-color a 4-cycle"
        );
    }
}
