//! Allocator configuration: the paper's machine model.

use iloc::{Reg, RegClass};

/// Register-allocation parameters.
///
/// The paper's abstract machine has 64 registers: 32 general-purpose and
/// 32 floating-point. One general-purpose register (`%r0`) is reserved as
/// the activation-record pointer, leaving 31 allocatable GPRs — the
/// standard ILOC convention.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AllocConfig {
    /// Allocatable general-purpose registers (colors). Default 31.
    pub gpr_k: u32,
    /// Allocatable floating-point registers (colors). Default 32.
    pub fpr_k: u32,
    /// Number of caller-saved colors per class. Live ranges that cross a
    /// call may not use colors `0..caller_saved`. The paper's model uses 0
    /// (its codes were measured without an explicit convention); nonzero
    /// values are used by the calling-convention ablation.
    pub caller_saved: u32,
    /// Enable Briggs conservative coalescing (default true). Disabling it
    /// is an ablation: copies survive to consume registers and raise
    /// pressure.
    pub coalesce: bool,
    /// Rematerialize spilled constants (Briggs): a spilled live range
    /// whose single definition is a `loadI`/`loadF`/`loadSym` is
    /// recomputed before each use instead of being stored and reloaded.
    /// Default false — the paper's evaluation does not use it; the
    /// design ablation measures its interaction with CCM spilling.
    pub rematerialize: bool,
}

impl Default for AllocConfig {
    fn default() -> AllocConfig {
        AllocConfig {
            gpr_k: 31,
            fpr_k: 32,
            caller_saved: 0,
            coalesce: true,
            rematerialize: false,
        }
    }
}

impl AllocConfig {
    /// Number of colors for `class`.
    pub fn k(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gpr => self.gpr_k,
            RegClass::Fpr => self.fpr_k,
        }
    }

    /// Maps a color to its physical register index. GPR color `c` becomes
    /// `%r(c+1)` (skipping the reserved `%r0`); FPR color `c` becomes
    /// `%f(c)`.
    pub fn physical_index(&self, class: RegClass, color: u32) -> u32 {
        match class {
            RegClass::Gpr => color + 1,
            RegClass::Fpr => color,
        }
    }

    /// Whether `r` is a physical register allocated code may legitimately
    /// contain under this configuration: the reserved RARP or one of the
    /// allocatable colors mapped through [`AllocConfig::physical_index`].
    pub fn is_valid_physical(&self, r: Reg) -> bool {
        match r.class() {
            RegClass::Gpr => r == Reg::RARP || (1..=self.gpr_k).contains(&r.index()),
            RegClass::Fpr => r.index() < self.fpr_k,
        }
    }

    /// The physical registers of `class` holding caller-saved colors
    /// (`0..caller_saved`); their contents are dead after every call.
    pub fn caller_saved_physical(&self, class: RegClass) -> Vec<Reg> {
        (0..self.caller_saved.min(self.k(class)))
            .map(|c| Reg::new(class, self.physical_index(class, c)))
            .collect()
    }

    /// A tiny configuration (few registers) used by tests to force
    /// spilling on small inputs.
    pub fn tiny(k: u32) -> AllocConfig {
        AllocConfig {
            gpr_k: k,
            fpr_k: k,
            caller_saved: 0,
            coalesce: true,
            rematerialize: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_machine() {
        let c = AllocConfig::default();
        assert_eq!(c.gpr_k + 1, 32); // 32 GPRs incl. the reserved RARP
        assert_eq!(c.fpr_k, 32);
        assert_eq!(c.caller_saved, 0);
    }

    #[test]
    fn physical_mapping_skips_rarp() {
        let c = AllocConfig::default();
        assert_eq!(c.physical_index(RegClass::Gpr, 0), 1);
        assert_eq!(c.physical_index(RegClass::Gpr, 30), 31);
        assert_eq!(c.physical_index(RegClass::Fpr, 0), 0);
    }
}
