//! The Chaitin-Briggs allocation driver.
//!
//! Per register class: build the interference graph, conservatively
//! coalesce copies (Briggs), estimate spill costs, simplify/select with
//! optimistic spilling, insert spill code for the losers, and repeat until
//! everything colors; finally rewrite virtual registers to physical ones.

use std::collections::{HashMap, HashSet};

use iloc::{Function, Module, Op, Reg, RegClass};

use crate::color::color;
use crate::config::AllocConfig;
use crate::costs::SpillCosts;
use crate::entity::{Entity, EntityIndex};
use crate::igraph::InterferenceGraph;
use crate::spill::{insert_spill_code, rematerialize_spills, FramePlacer, SpillPlacer};

/// Statistics from allocating one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Live ranges spilled, per class (GPR, FPR).
    pub spilled: [usize; 2],
    /// Copies coalesced, per class.
    pub coalesced: [usize; 2],
    /// Build-color-spill rounds, per class.
    pub rounds: [usize; 2],
    /// Spilled live ranges handled by rematerialization (no memory
    /// traffic), per class. Subset of `spilled`.
    pub rematerialized: [usize; 2],
}

impl AllocStats {
    /// Total live ranges spilled.
    pub fn total_spilled(&self) -> usize {
        self.spilled.iter().sum()
    }

    fn absorb(&mut self, other: &AllocStats) {
        for i in 0..2 {
            self.spilled[i] += other.spilled[i];
            self.coalesced[i] += other.coalesced[i];
            self.rounds[i] += other.rounds[i];
            self.rematerialized[i] += other.rematerialized[i];
        }
    }
}

/// Allocates registers for `f` with the baseline frame placer (all spills
/// go to main memory). See [`allocate_function_with`] for custom placers.
pub fn allocate_function(f: &mut Function, cfg: &AllocConfig) -> AllocStats {
    allocate_function_with(f, cfg, &mut FramePlacer)
}

/// Allocates registers for `f`, sending each spilled live range to
/// `placer` — the hook the CCM-integrated allocator plugs into.
pub fn allocate_function_with(
    f: &mut Function,
    cfg: &AllocConfig,
    placer: &mut dyn SpillPlacer,
) -> AllocStats {
    let mut stats = AllocStats::default();
    for class in RegClass::ALL {
        allocate_class(f, cfg, class, placer, &mut stats);
    }
    debug_assert!(no_virtual_regs(f), "allocation left virtual registers");
    stats
}

/// Allocates every function in the module with the baseline placer.
pub fn allocate_module(m: &mut Module, cfg: &AllocConfig) -> AllocStats {
    let mut total = AllocStats::default();
    for f in &mut m.functions {
        let s = allocate_function(f, cfg);
        total.absorb(&s);
    }
    total
}

fn allocate_class(
    f: &mut Function,
    cfg: &AllocConfig,
    class: RegClass,
    placer: &mut dyn SpillPlacer,
    stats: &mut AllocStats,
) {
    let k = cfg.k(class);
    let ci = class.index();
    let mut unspillable: HashSet<Reg> = HashSet::new();

    loop {
        stats.rounds[ci] += 1;

        // Build + coalesce to fixpoint.
        let mut graph;
        loop {
            let idx = EntityIndex::build(f, class);
            graph = InterferenceGraph::build(f, idx);
            if !cfg.coalesce {
                break;
            }
            let merged = coalesce_pass(f, &mut graph, k);
            stats.coalesced[ci] += merged;
            if merged == 0 {
                break;
            }
        }

        if graph.entities.is_empty() {
            return;
        }

        // Rematerialization candidates: single-def constants.
        let remat_defs: HashMap<Reg, Op> = if cfg.rematerialize {
            remat_candidates(f, class)
        } else {
            HashMap::new()
        };
        let remat_set: HashSet<Reg> = remat_defs.keys().copied().collect();
        let costs = SpillCosts::compute_with_remat(f, &unspillable, &remat_set);
        let coloring = color(&graph, k, cfg.caller_saved, &costs);

        if coloring.spilled.is_empty() {
            // Rewrite to physical registers.
            let mut map: HashMap<Reg, Reg> = HashMap::new();
            for (&id, &c) in &coloring.colors {
                if let Some(r) = graph.entities.entity(id).as_reg() {
                    map.insert(r, Reg::new(class, cfg.physical_index(class, c)));
                }
            }
            rewrite_regs(f, &map);
            return;
        }

        let spilled: Vec<Reg> = coloring
            .spilled
            .iter()
            .filter_map(|&id| graph.entities.entity(id).as_reg())
            .collect();
        stats.spilled[ci] += spilled.len();
        let (remat, heavy): (Vec<Reg>, Vec<Reg>) = spilled
            .into_iter()
            .partition(|v| remat_defs.contains_key(v));
        if !remat.is_empty() {
            stats.rematerialized[ci] += remat.len();
            let pairs: Vec<(Reg, Op)> = remat
                .into_iter()
                .map(|v| (v, remat_defs[&v].clone()))
                .collect();
            unspillable.extend(rematerialize_spills(f, &pairs));
        }
        if !heavy.is_empty() {
            let temps = insert_spill_code(f, &heavy, placer, &graph);
            unspillable.extend(temps);
        }
    }
}

/// One conservative-coalescing pass: merges every Briggs-safe copy it can,
/// applying merges to the graph incrementally, then rewrites the code.
/// Returns the number of copies coalesced.
fn coalesce_pass(f: &mut Function, graph: &mut InterferenceGraph, k: u32) -> usize {
    let mut rename: HashMap<Reg, Reg> = HashMap::new();
    let resolve = |rename: &HashMap<Reg, Reg>, mut r: Reg| -> Reg {
        while let Some(&n) = rename.get(&r) {
            if n == r {
                break;
            }
            r = n;
        }
        r
    };

    let mut merged = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        for i in 0..f.block(b).instrs.len() {
            let (src, dst) = match &f.block(b).instrs[i].op {
                Op::I2I { src, dst } if graph.entities.class() == RegClass::Gpr => (*src, *dst),
                Op::F2F { src, dst } if graph.entities.class() == RegClass::Fpr => (*src, *dst),
                _ => continue,
            };
            let (src, dst) = (resolve(&rename, src), resolve(&rename, dst));
            if src == dst {
                continue;
            }
            if !src.is_virtual() || !dst.is_virtual() {
                continue;
            }
            let (is_, id_) = match (
                graph.entities.get(Entity::Reg(src)),
                graph.entities.get(Entity::Reg(dst)),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            if graph.interferes(is_, id_) || !graph.briggs_safe(is_, id_, k as usize) {
                continue;
            }
            graph.merge(is_, id_);
            rename.insert(dst, src);
            merged += 1;
        }
    }

    if merged > 0 {
        // Rewrite registers and delete the now-trivial copies.
        for b in f.block_ids().collect::<Vec<_>>() {
            for i in 0..f.block(b).instrs.len() {
                let op = &mut f.block_mut(b).instrs[i].op;
                op.map_uses(|r| resolve(&rename, r));
                op.map_defs(|r| resolve(&rename, r));
            }
        }
        for p in &mut f.params {
            *p = resolve(&rename, *p);
        }
        f.remove_instrs(|i| match &i.op {
            Op::I2I { src, dst } | Op::F2F { src, dst } => src == dst,
            _ => false,
        });
    }
    merged
}

/// Finds single-definition constants of `class`: the Briggs
/// rematerialization candidates.
fn remat_candidates(f: &Function, class: RegClass) -> HashMap<Reg, Op> {
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    let mut def_op: HashMap<Reg, Op> = HashMap::new();
    for b in &f.blocks {
        for instr in &b.instrs {
            instr.op.visit_defs(|r| {
                *def_count.entry(r).or_insert(0) += 1;
            });
            if let Op::LoadI { dst, .. } | Op::LoadF { dst, .. } | Op::LoadSym { dst, .. } =
                &instr.op
            {
                if dst.class() == class && dst.is_virtual() {
                    def_op.insert(*dst, instr.op.clone());
                }
            }
        }
    }
    def_op.retain(|r, _| def_count.get(r) == Some(&1) && !f.params.contains(r));
    def_op
}

fn rewrite_regs(f: &mut Function, map: &HashMap<Reg, Reg>) {
    for b in f.block_ids().collect::<Vec<_>>() {
        for i in 0..f.block(b).instrs.len() {
            let op = &mut f.block_mut(b).instrs[i].op;
            op.map_uses(|r| map.get(&r).copied().unwrap_or(r));
            op.map_defs(|r| map.get(&r).copied().unwrap_or(r));
        }
    }
    for p in &mut f.params {
        if let Some(&n) = map.get(p) {
            *p = n;
        }
    }
}

/// Whether every register in `f` is physical (allocation is complete for
/// at least the classes already processed).
pub fn no_virtual_regs(f: &Function) -> bool {
    let mut ok = true;
    f.for_each_reg(|r| {
        if r.is_virtual() {
            ok = false;
        }
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, SpillKind};

    fn wide_int_function(width: usize) -> Function {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..width).map(|i| fb.loadi(i as i64)).collect();
        // Consume in reverse so everything stays live simultaneously.
        let mut acc = vals[width - 1];
        for v in vals[..width - 1].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        fb.finish()
    }

    #[test]
    fn no_spills_with_ample_registers() {
        let mut f = wide_int_function(8);
        let stats = allocate_function(&mut f, &AllocConfig::default());
        assert_eq!(stats.total_spilled(), 0);
        verify_function(&f).unwrap();
        assert!(no_virtual_regs(&f));
        assert_eq!(f.frame.slots.len(), 0);
    }

    #[test]
    fn spills_under_pressure_and_still_verifies() {
        let mut f = wide_int_function(12);
        let stats = allocate_function(&mut f, &AllocConfig::tiny(4));
        assert!(stats.total_spilled() > 0);
        verify_function(&f).unwrap();
        assert!(no_virtual_regs(&f));
        assert!(f.frame.spill_bytes() > 0);
        assert!(f.spill_instr_count() > 0);
    }

    #[test]
    fn physical_indices_respect_class_bounds() {
        let mut f = wide_int_function(12);
        let cfg = AllocConfig::tiny(4);
        allocate_function(&mut f, &cfg);
        f.for_each_reg(|r| {
            if r.class() == RegClass::Gpr && r != Reg::RARP {
                assert!(
                    (1..=cfg.gpr_k).contains(&r.index()),
                    "gpr index {} out of range",
                    r.index()
                );
            }
        });
    }

    #[test]
    fn copies_are_coalesced_away() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.copy(a);
        let c = fb.copy(b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        let stats = allocate_function(&mut f, &AllocConfig::default());
        assert_eq!(stats.coalesced[0], 2);
        // Both copies vanish.
        assert_eq!(f.instr_count(), 2);
        verify_function(&f).unwrap();
    }

    #[test]
    fn float_class_allocated_independently() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let xs: Vec<_> = (0..6).map(|i| fb.loadf(i as f64)).collect();
        let mut acc = xs[5];
        for x in xs[..5].iter().rev() {
            acc = fb.fadd(acc, *x);
        }
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let stats = allocate_function(&mut f, &AllocConfig::tiny(3));
        assert!(stats.spilled[1] > 0);
        assert_eq!(stats.spilled[0], 0);
        verify_function(&f).unwrap();
        assert!(no_virtual_regs(&f));
    }

    #[test]
    fn spill_code_is_tagged() {
        let mut f = wide_int_function(12);
        allocate_function(&mut f, &AllocConfig::tiny(3));
        let tagged = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.spill != SpillKind::None)
            .count();
        assert!(tagged > 0);
        // Every tagged instruction is a main-memory access through RARP.
        for b in &f.blocks {
            for i in &b.instrs {
                if i.spill != SpillKind::None {
                    assert!(i.op.is_main_memory_op());
                }
            }
        }
    }

    #[test]
    fn params_allocated_to_distinct_registers() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let q = fb.param(RegClass::Gpr);
        let s = fb.add(p, q);
        fb.ret(&[s]);
        let mut f = fb.finish();
        allocate_function(&mut f, &AllocConfig::default());
        assert_ne!(f.params[0], f.params[1]);
        verify_function(&f).unwrap();
    }

    #[test]
    fn loop_heavy_function_allocates() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 100, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        allocate_function(&mut f, &AllocConfig::tiny(3));
        verify_function(&f).unwrap();
        assert!(no_virtual_regs(&f));
    }
}

#[cfg(test)]
mod knob_tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::verify_function;

    /// With coalescing disabled the copies survive into the allocated
    /// code (as physical-register moves) and behavior is unchanged.
    #[test]
    fn no_coalesce_keeps_copies_and_stays_correct() {
        let build = || {
            let mut fb = FuncBuilder::new("main");
            fb.set_ret_classes(&[RegClass::Gpr]);
            let a = fb.loadi(5);
            let b = fb.copy(a);
            let c = fb.copy(b);
            let d = fb.addi(c, 1);
            fb.ret(&[d]);
            let mut m = iloc::Module::new();
            m.push_function(fb.finish());
            m
        };
        let mut with = build();
        let mut without = build();
        let cfg_on = AllocConfig::default();
        let cfg_off = AllocConfig {
            coalesce: false,
            ..AllocConfig::default()
        };
        let s_on = allocate_module(&mut with, &cfg_on);
        let s_off = allocate_module(&mut without, &cfg_off);
        assert!(s_on.coalesced[0] >= 2);
        assert_eq!(s_off.coalesced[0], 0);
        assert!(with.instr_count() < without.instr_count());
        for m in [&with, &without] {
            verify_function(&m.functions[0]).unwrap();
        }
        let cfg = sim::MachineConfig::default();
        let (va, _) = sim::run_module(&with, cfg.clone(), "main").unwrap();
        let (vb, _) = sim::run_module(&without, cfg, "main").unwrap();
        assert_eq!(va, vb);
    }

    /// Caller-saved restrictions can turn a colorable function into a
    /// spilling one — and the result still runs correctly.
    #[test]
    fn caller_saved_can_force_spills() {
        let build = || {
            let mut callee = FuncBuilder::new("leaf");
            callee.set_ret_classes(&[RegClass::Gpr]);
            let x = callee.loadi(100);
            callee.ret(&[x]);
            let mut fb = FuncBuilder::new("main");
            fb.set_ret_classes(&[RegClass::Gpr]);
            // Five values live across the call.
            let vals: Vec<_> = (0..5).map(|i| fb.loadi(i)).collect();
            let r = fb.call("leaf", &[], &[RegClass::Gpr]);
            let mut acc = r[0];
            for v in &vals {
                acc = fb.add(acc, *v);
            }
            fb.ret(&[acc]);
            let mut m = iloc::Module::new();
            m.push_function(callee.finish());
            m.push_function(fb.finish());
            m
        };
        // 6 colors, 4 caller-saved → only 2 callee-saved colors for the 5
        // call-crossing values.
        let mut m = build();
        let stats = allocate_module(
            &mut m,
            &AllocConfig {
                gpr_k: 6,
                fpr_k: 6,
                caller_saved: 4,
                ..AllocConfig::default()
            },
        );
        assert!(stats.total_spilled() > 0);
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![100 + (0..5).sum::<i64>()]);

        // Without the convention the same program colors cleanly.
        let mut m2 = build();
        let stats2 = allocate_module(&mut m2, &AllocConfig::tiny(6));
        assert_eq!(stats2.total_spilled(), 0);
    }
}

#[cfg(test)]
mod remat_tests {
    use super::*;
    use iloc::builder::FuncBuilder;

    fn const_heavy() -> iloc::Module {
        // Many constants alive at once: prime remat material.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let consts: Vec<_> = (0..10).map(|i| fb.loadi(i * 7 + 1)).collect();
        let p = fb.loadsym("g");
        let x = fb.loadai(p, 0);
        let mut acc = x;
        for c in &consts {
            acc = fb.add(acc, *c);
            acc = fb.mult(acc, *c);
        }
        fb.ret(&[acc]);
        let mut m = iloc::Module::new();
        m.push_global(iloc::Global::from_i32s("g", &[3]));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn remat_eliminates_spill_memory_traffic() {
        let mut plain = const_heavy();
        let mut remat = const_heavy();
        let cfg = AllocConfig::tiny(4);
        let s_plain = allocate_module(&mut plain, &cfg);
        let s_remat = allocate_module(
            &mut remat,
            &AllocConfig {
                rematerialize: true,
                ..cfg
            },
        );
        assert!(s_plain.total_spilled() > 0, "setup must spill");
        assert!(
            s_remat.rematerialized.iter().sum::<usize>() > 0,
            "constants must be rematerialized"
        );
        // Remat removes memory traffic relative to plain spilling.
        let mcfg = sim::MachineConfig::default();
        let (v0, m0) = sim::run_module(&plain, mcfg.clone(), "main").unwrap();
        let (v1, m1) = sim::run_module(&remat, mcfg, "main").unwrap();
        assert_eq!(v0, v1, "rematerialization preserves results");
        assert!(
            m1.main_mem_ops < m0.main_mem_ops,
            "remat must reduce memory ops: {} vs {}",
            m1.main_mem_ops,
            m0.main_mem_ops
        );
        assert!(m1.cycles < m0.cycles);
    }

    #[test]
    fn remat_handles_float_and_symbol_constants() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let consts: Vec<_> = (0..8).map(|i| fb.loadf(i as f64 + 0.5)).collect();
        let base = fb.loadsym("g");
        let x = fb.floadai(base, 0);
        let mut acc = x;
        for c in &consts {
            acc = fb.fadd(acc, *c);
            acc = fb.fmult(acc, *c);
        }
        // base reused late: loadSym is also a remat candidate.
        let y = fb.floadai(base, 8);
        acc = fb.fadd(acc, y);
        fb.ret(&[acc]);
        let mut m = iloc::Module::new();
        m.push_global(iloc::Global::from_f64s("g", &[1.25, 2.5]));
        m.push_function(fb.finish());
        let (v0, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        let stats = allocate_module(
            &mut m,
            &AllocConfig {
                rematerialize: true,
                ..AllocConfig::tiny(3)
            },
        );
        assert!(stats.rematerialized.iter().sum::<usize>() > 0);
        m.verify().unwrap();
        let (v1, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1);
    }

    #[test]
    fn multiply_defined_values_never_rematerialized() {
        // A value defined by loadI on one path and arithmetic on another
        // must go through normal spilling.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        let cond = fb.loadi(1);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(cond, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 5, dst: x });
        fb.jump(j);
        fb.switch_to(e);
        let nine = fb.loadi(9);
        fb.emit(Op::I2I { src: nine, dst: x });
        fb.jump(j);
        fb.switch_to(j);
        // Pad with pressure so x spills.
        let vals: Vec<_> = (0..8).map(|i| fb.loadi(i)).collect();
        let mut acc = x;
        for v in &vals {
            acc = fb.add(acc, *v);
        }
        let out = fb.add(acc, x);
        fb.ret(&[out]);
        let mut m = iloc::Module::new();
        m.push_function(fb.finish());
        let (v0, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        allocate_module(
            &mut m,
            &AllocConfig {
                rematerialize: true,
                ..AllocConfig::tiny(3)
            },
        );
        m.verify().unwrap();
        let (v1, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1);
    }
}

/// Checks that allocated code respects the configuration's register
/// bounds: every GPR index is RARP or in `1..=gpr_k`, every FPR index in
/// `0..fpr_k`. Returns the first offending register.
pub fn check_register_bounds(f: &Function, cfg: &AllocConfig) -> Result<(), Reg> {
    let mut bad = None;
    f.for_each_reg(|r| {
        if bad.is_none() && !cfg.is_valid_physical(r) {
            bad = Some(r);
        }
    });
    match bad {
        Some(r) => Err(r),
        None => Ok(()),
    }
}

#[cfg(test)]
mod bounds_tests {
    use super::*;
    use iloc::builder::FuncBuilder;

    #[test]
    fn bounds_hold_after_allocation() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..20).map(|i| fb.loadi(i)).collect();
        let mut acc = vals[19];
        for v in vals[..19].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let cfg = AllocConfig::tiny(4);
        allocate_function(&mut f, &cfg);
        check_register_bounds(&f, &cfg).expect("all registers within bounds");
    }

    #[test]
    fn bounds_detect_violations() {
        let mut fb = FuncBuilder::new("f");
        let bad = iloc::Reg::gpr(50); // beyond tiny(4)'s bound
        fb.emit(Op::LoadI { imm: 0, dst: bad });
        fb.ret(&[]);
        let f = fb.finish();
        assert_eq!(check_register_bounds(&f, &AllocConfig::tiny(4)), Err(bad));
    }
}
