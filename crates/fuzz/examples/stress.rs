//! Stress hunt driver: long fuzzing campaigns under squeezed register
//! files, beyond what CI's fixed-seed smoke run covers. Not part of any
//! test path — run it when changing the allocators:
//!
//! ```console
//! $ cargo run --release -p fuzz --example stress -- 512 7
//! ```
//!
//! Arguments are `[cases] [seed]` (defaults 512 and 7). Each failing
//! case prints a minimized parseable-ILOC reproducer suitable for
//! `tests/corpus/`.

use fuzz::{campaign_report, OracleConfig};
use regalloc::AllocConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    for (label, alloc) in [
        ("default", AllocConfig::default()),
        ("tiny(8)", AllocConfig::tiny(8)),
        ("tiny(4)", AllocConfig::tiny(4)),
        ("tiny(3)", AllocConfig::tiny(3)),
    ] {
        let cfg = OracleConfig {
            ccm_sizes: vec![16, 64, 256, 1024],
            alloc,
            ..OracleConfig::default()
        };
        let rep = campaign_report(n, seed, exec::default_jobs(), &cfg);
        println!("=== alloc {label}: {}", rep.text);
    }
}
