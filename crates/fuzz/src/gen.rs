//! Seeded random ILOC module generator.
//!
//! [`gen_module`] maps a 64-bit seed to a complete, verifier-clean module
//! that is guaranteed to terminate and run trap-free on the simulator:
//!
//! * **CFG shapes** — straight-line runs, if/else diamonds, counted loops
//!   (bounded trip counts), and an irreducible region (a two-block cycle
//!   with two distinct entry edges) that no structured builder helper can
//!   produce.
//! * **Calls** — up to three helper functions in a DAG, plus (sometimes)
//!   a self-recursive helper whose depth is bounded by a strictly
//!   decreasing integer argument, putting a nontrivial SCC into the call
//!   graph for the interprocedural CCM pass.
//! * **Register pressure** — every function keeps a pool of integer and
//!   float "variables" live from its prologue to its checksum epilogue;
//!   float pools range up to well past the 32 FPRs, so modules routinely
//!   spill under the default [`regalloc::AllocConfig`].
//! * **Data** — seeded f64 / i32 array globals plus a zeroed scratch
//!   region that statements store to and the epilogue reads back, so
//!   stores are observable in the checksum.
//!
//! Why generated programs cannot trap: every loop is counted with an
//! immediate bound, recursion decrements its depth argument toward a
//! tested base case, every divisor is forced odd (`orI x, 1`), shifts are
//! masked by the simulator, and every address is a global base plus a
//! statically in-bounds offset.
//!
//! Determinism: all decisions come from one [`Lcg`] stream seeded by the
//! case seed, so `gen_module(s)` is byte-identical across runs, hosts,
//! and `--jobs` counts.

use iloc::builder::FuncBuilder;
use iloc::{CmpKind, FBinKind, IBinKind, Module, Op, Reg, RegClass};
use suite::Lcg;

/// Size of the zeroed scratch global statements store into.
const SCRATCH_BYTES: u32 = 256;

/// Everything a caller needs to know to call a generated helper.
#[derive(Clone, Debug)]
struct Callee {
    name: String,
    iparams: usize,
    fparams: usize,
    rets: Vec<RegClass>,
}

/// A data global the generator may address, with enough layout
/// information to keep every access in bounds.
#[derive(Clone, Debug)]
struct GlobalInfo {
    name: String,
    bytes: u32,
    float: bool,
}

struct Gen {
    lcg: Lcg,
    globals: Vec<GlobalInfo>,
    labels: u32,
}

/// Per-function generation state: the variable pools and callable set.
struct FnCtx {
    ints: Vec<Reg>,
    floats: Vec<Reg>,
    callees: Vec<Callee>,
}

/// Generates the module for `seed`. The result always verifies, always
/// terminates, and never traps under [`sim::run_module`]; `main` returns
/// one integer and one float checksum over every variable pool, helper
/// return value, and scratch store.
pub fn gen_module(seed: u64) -> Module {
    let mut g = Gen {
        lcg: Lcg::new(seed ^ 0x9e37_79b9_7f4a_7c15),
        globals: Vec::new(),
        labels: 0,
    };
    let mut m = Module::new();

    let f_elems = 8 + g.lcg.next_range(24);
    let i_elems = 8 + g.lcg.next_range(24);
    m.push_global(suite::f64_global("gfa", f_elems as usize, seed ^ 1));
    m.push_global(suite::i32_global("gia", i_elems as usize, 100, seed ^ 2));
    m.push_global(iloc::Global::zeroed("gsc", SCRATCH_BYTES));
    g.globals = vec![
        GlobalInfo {
            name: "gfa".into(),
            bytes: f_elems * 8,
            float: true,
        },
        GlobalInfo {
            name: "gia".into(),
            bytes: i_elems * 4,
            float: false,
        },
        GlobalInfo {
            name: "gsc".into(),
            bytes: SCRATCH_BYTES,
            float: g.lcg.chance(50),
        },
    ];

    // Helpers f1..fk, generated deepest-first so fi may call fj for j > i.
    let n_helpers = g.lcg.next_range(4) as usize;
    let mut callable: Vec<Callee> = Vec::new();
    for i in (1..=n_helpers).rev() {
        let recursive = g.lcg.chance(35);
        let sig = Callee {
            name: format!("f{i}"),
            // A recursive helper spends its first int param on depth.
            iparams: 1 + g.lcg.next_range(2) as usize,
            fparams: g.lcg.next_range(3) as usize,
            rets: match g.lcg.next_range(3) {
                0 => vec![RegClass::Gpr],
                1 => vec![RegClass::Fpr],
                _ => vec![RegClass::Gpr, RegClass::Fpr],
            },
        };
        let f = g.gen_function(&sig, &callable, recursive);
        callable.push(sig);
        m.functions.insert(0, f);
    }

    let main_sig = Callee {
        name: "main".into(),
        iparams: 0,
        fparams: 0,
        rets: vec![RegClass::Gpr, RegClass::Fpr],
    };
    let main = g.gen_function(&main_sig, &callable, false);
    m.push_function(main);

    m.verify()
        .unwrap_or_else(|e| panic!("generated module (seed {seed}) failed verify: {e}"));
    m
}

impl Gen {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}{}", self.labels)
    }

    fn gen_function(
        &mut self,
        sig: &Callee,
        callable: &[Callee],
        recursive: bool,
    ) -> iloc::Function {
        let mut fb = FuncBuilder::new(&sig.name);
        let ip: Vec<Reg> = (0..sig.iparams).map(|_| fb.param(RegClass::Gpr)).collect();
        let fp: Vec<Reg> = (0..sig.fparams).map(|_| fb.param(RegClass::Fpr)).collect();
        fb.set_ret_classes(&sig.rets);

        // Variable pools: fixed (multiply-defined) vregs, initialized in
        // the prologue and all read by the epilogue, so each stays live
        // across the whole body. `main` dials float pressure past the 32
        // FPRs often enough that most modules spill.
        let nf = if sig.name == "main" {
            3 + self.lcg.next_range(38) as usize
        } else {
            2 + self.lcg.next_range(16) as usize
        };
        let ni = 3 + self.lcg.next_range(10) as usize;
        let mut cx = FnCtx {
            ints: (0..ni).map(|_| fb.vreg(RegClass::Gpr)).collect(),
            floats: (0..nf).map(|_| fb.vreg(RegClass::Fpr)).collect(),
            callees: callable.to_vec(),
        };
        for &dst in &cx.ints {
            if !ip.is_empty() && self.lcg.chance(30) {
                let src = *self.lcg.pick(&ip);
                fb.emit(Op::I2I { src, dst });
            } else {
                let imm = self.lcg.next_range(2000) as i64 - 1000;
                fb.emit(Op::LoadI { imm, dst });
            }
        }
        for &dst in &cx.floats {
            if !fp.is_empty() && self.lcg.chance(30) {
                let src = *self.lcg.pick(&fp);
                fb.emit(Op::F2F { src, dst });
            } else if self.lcg.chance(25) {
                let src = self.gen_float_load(&mut fb);
                fb.emit(Op::F2F { src, dst });
            } else {
                let imm = self.lcg.next_f64() * 4.0;
                fb.emit(Op::LoadF { imm, dst });
            }
        }

        // Bounded self-recursion: if depth (first int param) is positive,
        // recurse with depth - 1 and fold the results into the pools.
        if recursive {
            let depth = ip[0];
            let zero = fb.loadi(0);
            let cond = fb.icmp(CmpKind::Gt, depth, zero);
            let bt = fb.block(self.fresh_label("rec"));
            let bj = fb.block(self.fresh_label("recjoin"));
            fb.cbr(cond, bt, bj);
            fb.switch_to(bt);
            let next = fb.subi(depth, 1);
            let mut args = vec![next];
            args.extend(ip.iter().skip(1).copied());
            for _ in 0..sig.fparams {
                args.push(*self.lcg.pick(&cx.floats));
            }
            let rets = fb.call(&sig.name, &args, &sig.rets);
            self.absorb_values(&mut fb, &mut cx, &rets);
            fb.jump(bj);
            fb.switch_to(bj);
        }

        let budget = 6 + self.lcg.next_range(14) as usize;
        self.gen_stmts(&mut fb, &mut cx, budget, 0);

        self.gen_epilogue(&mut fb, &cx, sig);
        fb.finish()
    }

    /// Copies freshly produced values (call returns) into random pool
    /// slots so they feed the checksum.
    fn absorb_values(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx, vals: &[Reg]) {
        for &v in vals {
            match v.class() {
                RegClass::Gpr => {
                    let dst = *self.lcg.pick(&cx.ints);
                    fb.emit(Op::I2I { src: v, dst });
                }
                RegClass::Fpr => {
                    let dst = *self.lcg.pick(&cx.floats);
                    fb.emit(Op::F2F { src: v, dst });
                }
            }
        }
    }

    /// Emits `budget` statements into the current block (and any control
    /// flow they open). `depth` bounds nesting.
    fn gen_stmts(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx, budget: usize, depth: usize) {
        let mut left = budget;
        while left > 0 {
            let roll = self.lcg.next_range(100);
            if roll < 42 || depth >= 2 {
                self.gen_straight(fb, cx);
                left -= 1;
            } else if roll < 55 {
                self.gen_mem(fb, cx);
                left -= 1;
            } else if roll < 65 && !cx.callees.is_empty() {
                self.gen_call(fb, cx);
                left = left.saturating_sub(2);
            } else if roll < 80 {
                self.gen_diamond(fb, cx, depth);
                left = left.saturating_sub(4);
            } else if roll < 93 {
                self.gen_loop(fb, cx, depth);
                left = left.saturating_sub(5);
            } else {
                self.gen_irreducible(fb, cx);
                left = left.saturating_sub(6);
            }
        }
    }

    /// One straight-line arithmetic / compare / conversion statement.
    fn gen_straight(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx) {
        match self.lcg.next_range(8) {
            0 => {
                // Integer three-address op, divisors forced odd.
                let kinds = [
                    IBinKind::Add,
                    IBinKind::Sub,
                    IBinKind::Mult,
                    IBinKind::And,
                    IBinKind::Or,
                    IBinKind::Xor,
                    IBinKind::Shl,
                    IBinKind::Shr,
                    IBinKind::Div,
                    IBinKind::Rem,
                ];
                let kind = *self.lcg.pick(&kinds);
                let lhs = *self.lcg.pick(&cx.ints);
                let mut rhs = *self.lcg.pick(&cx.ints);
                if matches!(kind, IBinKind::Div | IBinKind::Rem) {
                    rhs = fb.ibini_raw(IBinKind::Or, rhs, 1);
                }
                let t = fb.ibin_raw(kind, lhs, rhs);
                let dst = *self.lcg.pick(&cx.ints);
                fb.emit(Op::I2I { src: t, dst });
            }
            1 => {
                let kinds = [
                    IBinKind::Add,
                    IBinKind::Sub,
                    IBinKind::Mult,
                    IBinKind::And,
                    IBinKind::Xor,
                    IBinKind::Shl,
                    IBinKind::Shr,
                ];
                let kind = *self.lcg.pick(&kinds);
                let lhs = *self.lcg.pick(&cx.ints);
                let imm = self.lcg.next_range(128) as i64 - 64;
                let t = fb.ibini_raw(kind, lhs, imm);
                let dst = *self.lcg.pick(&cx.ints);
                fb.emit(Op::I2I { src: t, dst });
            }
            2 | 3 => {
                let kinds = [FBinKind::Add, FBinKind::Sub, FBinKind::Mult, FBinKind::Div];
                let kind = *self.lcg.pick(&kinds);
                let lhs = *self.lcg.pick(&cx.floats);
                let rhs = *self.lcg.pick(&cx.floats);
                let t = fb.vreg(RegClass::Fpr);
                fb.emit(Op::FBin {
                    kind,
                    lhs,
                    rhs,
                    dst: t,
                });
                let dst = *self.lcg.pick(&cx.floats);
                fb.emit(Op::F2F { src: t, dst });
            }
            4 => {
                let kinds = [
                    CmpKind::Lt,
                    CmpKind::Le,
                    CmpKind::Gt,
                    CmpKind::Ge,
                    CmpKind::Eq,
                    CmpKind::Ne,
                ];
                let kind = *self.lcg.pick(&kinds);
                let t = if self.lcg.chance(50) {
                    let lhs = *self.lcg.pick(&cx.ints);
                    let rhs = *self.lcg.pick(&cx.ints);
                    fb.icmp(kind, lhs, rhs)
                } else {
                    let lhs = *self.lcg.pick(&cx.floats);
                    let rhs = *self.lcg.pick(&cx.floats);
                    fb.fcmp(kind, lhs, rhs)
                };
                let dst = *self.lcg.pick(&cx.ints);
                fb.emit(Op::I2I { src: t, dst });
            }
            5 => {
                let src = *self.lcg.pick(&cx.ints);
                let t = fb.i2f(src);
                let dst = *self.lcg.pick(&cx.floats);
                fb.emit(Op::F2F { src: t, dst });
            }
            6 => {
                let src = *self.lcg.pick(&cx.floats);
                let t = fb.f2i(src);
                let dst = *self.lcg.pick(&cx.ints);
                fb.emit(Op::I2I { src: t, dst });
            }
            _ => {
                // Plain register shuffle between two pool slots.
                if self.lcg.chance(50) {
                    let src = *self.lcg.pick(&cx.ints);
                    let dst = *self.lcg.pick(&cx.ints);
                    fb.emit(Op::I2I { src, dst });
                } else {
                    let src = *self.lcg.pick(&cx.floats);
                    let dst = *self.lcg.pick(&cx.floats);
                    fb.emit(Op::F2F { src, dst });
                }
            }
        }
    }

    /// A float load from a random float global at an in-bounds offset,
    /// sometimes via a `base + k` register with a negative `loadAI`
    /// offset to exercise operand shapes the kernels never print.
    fn gen_float_load(&mut self, fb: &mut FuncBuilder) -> Reg {
        let g = self.pick_global(true);
        let off = 8 * self.lcg.next_range(g.bytes / 8) as i64;
        let base = fb.loadsym(g.name.clone());
        match self.lcg.next_range(3) {
            0 => fb.floadai(base, off),
            1 => {
                let adj = 8 * (1 + self.lcg.next_range(3)) as i64;
                let bumped = fb.addi(base, adj);
                fb.floadai(bumped, off - adj)
            }
            _ => {
                let addr = fb.addi(base, off);
                fb.fload(addr)
            }
        }
    }

    fn pick_global(&mut self, float: bool) -> GlobalInfo {
        let matches: Vec<GlobalInfo> = self
            .globals
            .iter()
            .filter(|g| g.float == float)
            .cloned()
            .collect();
        if matches.is_empty() {
            // The scratch global took the other element type this module.
            let any: Vec<GlobalInfo> = self.globals.to_vec();
            let g = self.lcg.pick(&any).clone();
            return GlobalInfo { float, ..g };
        }
        self.lcg.pick(&matches).clone()
    }

    /// One memory statement: a global load into a pool slot, or a store
    /// of a pool slot into the scratch global.
    fn gen_mem(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx) {
        let store = self.lcg.chance(40);
        if store {
            let float = self.lcg.chance(50);
            let elem: i64 = if float { 8 } else { 4 };
            let off = elem * self.lcg.next_range(SCRATCH_BYTES / elem as u32) as i64;
            let base = fb.loadsym("gsc");
            if float {
                let val = *self.lcg.pick(&cx.floats);
                if self.lcg.chance(50) {
                    fb.fstoreai(val, base, off);
                } else {
                    let addr = fb.addi(base, off);
                    fb.fstore(val, addr);
                }
            } else {
                let val = *self.lcg.pick(&cx.ints);
                if self.lcg.chance(50) {
                    fb.storeai(val, base, off);
                } else {
                    let addr = fb.addi(base, off);
                    fb.store(val, addr);
                }
            }
        } else if self.lcg.chance(50) {
            let t = self.gen_float_load(fb);
            let dst = *self.lcg.pick(&cx.floats);
            fb.emit(Op::F2F { src: t, dst });
        } else {
            let g = self.pick_global(false);
            let off = 4 * self.lcg.next_range(g.bytes / 4) as i64;
            let base = fb.loadsym(g.name.clone());
            let t = if self.lcg.chance(70) {
                fb.loadai(base, off)
            } else {
                let addr = fb.addi(base, off);
                fb.load(addr)
            };
            let dst = *self.lcg.pick(&cx.ints);
            fb.emit(Op::I2I { src: t, dst });
        }
    }

    fn gen_call(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx) {
        let sig = self.lcg.pick(&cx.callees).clone();
        let mut args = Vec::new();
        for i in 0..sig.iparams {
            if i == 0 {
                // Keep the (possibly recursive) depth argument small.
                args.push(fb.loadi(1 + self.lcg.next_range(3) as i64));
            } else {
                args.push(*self.lcg.pick(&cx.ints));
            }
        }
        for _ in 0..sig.fparams {
            args.push(*self.lcg.pick(&cx.floats));
        }
        let rets = fb.call(sig.name, &args, &sig.rets);
        self.absorb_values(fb, cx, &rets);
    }

    fn gen_diamond(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx, depth: usize) {
        let lhs = *self.lcg.pick(&cx.ints);
        let rhs = *self.lcg.pick(&cx.ints);
        let kind = *self
            .lcg
            .pick(&[CmpKind::Lt, CmpKind::Eq, CmpKind::Ge, CmpKind::Ne]);
        let cond = fb.icmp(kind, lhs, rhs);
        let bt = fb.block(self.fresh_label("then"));
        let be = fb.block(self.fresh_label("else"));
        let bj = fb.block(self.fresh_label("join"));
        fb.cbr(cond, bt, be);
        fb.switch_to(bt);
        let n = 1 + self.lcg.next_range(3) as usize;
        self.gen_stmts(fb, cx, n, depth + 1);
        fb.jump(bj);
        fb.switch_to(be);
        let n = 1 + self.lcg.next_range(3) as usize;
        self.gen_stmts(fb, cx, n, depth + 1);
        fb.jump(bj);
        fb.switch_to(bj);
    }

    fn gen_loop(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx, depth: usize) {
        let trips = 1 + self.lcg.next_range(5) as i64;
        let n = 1 + self.lcg.next_range(4) as usize;
        // Split the borrow: the closure needs `self` and `cx` but not `fb`
        // (it receives its own).
        let this = &mut *self;
        let ctx = &mut *cx;
        fb.counted_loop(0, trips, 1, |fb, iv| {
            let dst = *this.lcg.pick(&ctx.ints);
            let t = fb.add(iv, dst);
            fb.emit(Op::I2I { src: t, dst });
            this.gen_stmts(fb, ctx, n, depth + 1);
        });
    }

    /// A two-block cycle `{a, b}` entered at either block (an irreducible
    /// loop) and bounded by a dedicated countdown register that both
    /// blocks decrement and test.
    fn gen_irreducible(&mut self, fb: &mut FuncBuilder, cx: &mut FnCtx) {
        let k = fb.vreg(RegClass::Gpr);
        let trips = 2 + self.lcg.next_range(4) as i64;
        fb.emit(Op::LoadI { imm: trips, dst: k });
        let lhs = *self.lcg.pick(&cx.ints);
        let rhs = *self.lcg.pick(&cx.ints);
        let c0 = fb.icmp(CmpKind::Lt, lhs, rhs);
        let ba = fb.block(self.fresh_label("irra"));
        let bb = fb.block(self.fresh_label("irrb"));
        let bx = fb.block(self.fresh_label("irrx"));
        fb.cbr(c0, ba, bb);
        for (cur, other) in [(ba, bb), (bb, ba)] {
            fb.switch_to(cur);
            self.gen_straight(fb, cx);
            let t = fb.subi(k, 1);
            fb.emit(Op::I2I { src: t, dst: k });
            let zero = fb.loadi(0);
            let c = fb.icmp(CmpKind::Gt, k, zero);
            fb.cbr(c, other, bx);
        }
        fb.switch_to(bx);
    }

    /// Folds every pool (plus part of the scratch global, in `main`) into
    /// the function's return values.
    fn gen_epilogue(&mut self, fb: &mut FuncBuilder, cx: &FnCtx, sig: &Callee) {
        let mut iacc = cx.ints[0];
        for &r in &cx.ints[1..] {
            iacc = if self.lcg.chance(50) {
                fb.add(iacc, r)
            } else {
                fb.ibin_raw(IBinKind::Xor, iacc, r)
            };
        }
        let mut facc = cx.floats[0];
        for &r in &cx.floats[1..] {
            facc = fb.fadd(facc, r);
        }
        if sig.name == "main" {
            // Read the scratch region back so every store is observable.
            let base = fb.loadsym("gsc");
            for i in 0..8 {
                let v = fb.loadai(base, 4 * i);
                iacc = fb.add(iacc, v);
                let f = fb.floadai(base, SCRATCH_BYTES as i64 / 2 + 8 * i);
                facc = fb.fadd(facc, f);
            }
        }
        let mut vals = Vec::new();
        for c in &sig.rets {
            vals.push(match c {
                RegClass::Gpr => iacc,
                RegClass::Fpr => facc,
            });
        }
        fb.ret(&vals);
    }
}

/// Raw-emit extensions the generator needs beyond the named builder
/// helpers: three-address / immediate integer ops of *any* kind.
trait RawEmit {
    fn ibin_raw(&mut self, kind: IBinKind, lhs: Reg, rhs: Reg) -> Reg;
    fn ibini_raw(&mut self, kind: IBinKind, lhs: Reg, imm: i64) -> Reg;
}

impl RawEmit for FuncBuilder {
    fn ibin_raw(&mut self, kind: IBinKind, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::IBin {
            kind,
            lhs,
            rhs,
            dst,
        });
        dst
    }

    fn ibini_raw(&mut self, kind: IBinKind, lhs: Reg, imm: i64) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::IBinI {
            kind,
            lhs,
            imm,
            dst,
        });
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_module() {
        for seed in [0, 1, 42, 0xdead_beef] {
            let a = gen_module(seed);
            let b = gen_module(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen_module(1).to_string(), gen_module(2).to_string());
    }

    #[test]
    fn generated_modules_run_trap_free() {
        for seed in 0..24 {
            let m = gen_module(seed);
            m.verify().unwrap();
            let mut alloc = m.clone();
            regalloc::allocate_module(&mut alloc, &regalloc::AllocConfig::default());
            let (vals, _) = sim::run_module(&alloc, sim::MachineConfig::with_ccm(512), "main")
                .unwrap_or_else(|e| panic!("seed {seed} trapped: {e}"));
            assert_eq!(vals.ints.len(), 1, "main returns one int checksum");
            assert_eq!(vals.floats.len(), 1, "main returns one float checksum");
        }
    }

    #[test]
    fn pressure_reaches_spilling() {
        let spilling = (0..32)
            .filter(|&s| {
                let mut m = gen_module(s);
                regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default()).total_spilled()
                    > 0
            })
            .count();
        assert!(
            spilling >= 8,
            "only {spilling}/32 seeds spill; pressure too low"
        );
    }
}
