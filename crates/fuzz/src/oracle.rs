//! The differential equivalence oracle.
//!
//! [`run_oracle`] pushes one module through every allocation variant at
//! several CCM sizes and checks the three properties the paper's
//! transformations must preserve:
//!
//! 1. **Semantics** — bit-identical return values (integers exactly,
//!    floats by `to_bits`, so a NaN-for-NaN swap still counts as equal)
//!    against the baseline allocation at the same CCM size;
//! 2. **Safety** — zero errors from the post-allocation static checker;
//! 3. **Profitability** — `cycles <= baseline` (the CCM variants may
//!    never slow a program down: promoted spills cost 1 cycle instead
//!    of 2 and no other code changes).
//!
//! Failures carry the variant, CCM size, and a [`FailureKind`] the
//! minimizer uses to preserve "the same bug" while shrinking. Allocator
//! panics are caught and reported as [`FailureKind::Panicked`] rather
//! than tearing down the whole campaign.
//!
//! [`Mutation`] deliberately breaks an allocated module (drop a spill
//! store, bump a CCM offset, overlap two slots). The oracle's own tests
//! — and `repro --fuzz`'s acceptance gate — use mutations to prove the
//! oracle actually catches allocator bugs rather than vacuously passing.

use std::panic::{catch_unwind, AssertUnwindSafe};

use iloc::{Module, Op, SpillKind};
use regalloc::AllocConfig;
use sim::MachineConfig;

/// The allocation strategy under test: the paper's three CCM methods
/// plus the no-CCM baseline. Mirrors the harness pipeline's variant set;
/// redefined here so `fuzz` stays independent of the harness crate (the
/// harness depends on `fuzz` for `repro --fuzz`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Conventional Chaitin-Briggs; all spills to main memory.
    Baseline,
    /// Post-pass CCM promotion, no interprocedural information.
    PostPass,
    /// Post-pass CCM promotion with call-graph information.
    PostPassCallGraph,
    /// CCM spilling integrated into the Chaitin-Briggs allocator.
    Integrated,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 4] = [
        Variant::Baseline,
        Variant::PostPass,
        Variant::PostPassCallGraph,
        Variant::Integrated,
    ];

    /// Short name used in fuzz reports.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::PostPass => "postpass",
            Variant::PostPassCallGraph => "postpass+cg",
            Variant::Integrated => "integrated",
        }
    }
}

/// Applies `variant` allocation at `ccm_size` under `cfg`, returning the
/// number of spilled live ranges. Same dispatch as the harness pipeline,
/// with the register supply configurable so tests (and the minimizer)
/// can force spilling on tiny modules.
pub fn allocate(m: &mut Module, variant: Variant, ccm_size: u32, cfg: &AllocConfig) -> usize {
    match variant {
        Variant::Baseline => regalloc::allocate_module(m, cfg).total_spilled(),
        Variant::PostPass => {
            let n = regalloc::allocate_module(m, cfg).total_spilled();
            ccm::postpass_promote(
                m,
                &ccm::PostpassConfig {
                    ccm_size,
                    interprocedural: false,
                },
            );
            n
        }
        Variant::PostPassCallGraph => {
            let n = regalloc::allocate_module(m, cfg).total_spilled();
            ccm::postpass_promote(
                m,
                &ccm::PostpassConfig {
                    ccm_size,
                    interprocedural: true,
                },
            );
            n
        }
        Variant::Integrated => {
            let (a, _, _) = ccm::allocate_module_integrated(m, cfg, ccm_size);
            a.total_spilled()
        }
    }
}

/// A deliberate post-allocation bug, for testing the oracle itself.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Delete the first spill store: its slot is later restored
    /// undefined.
    SkipSpillStore,
    /// Add 8 to the first CCM access offset: the restore reads the wrong
    /// slot (or past the CCM).
    BumpCcmOffset,
    /// Give the second CCM slot of a function the first one's offset and
    /// retarget its spill code: two live slots now clobber each other.
    OverlapSlots,
}

/// Applies `mu` to an allocated module. Returns false when the module
/// has nothing to mutate (no spill code of the required shape); the
/// oracle then runs unmutated and should pass.
pub fn apply_mutation(m: &mut Module, mu: Mutation) -> bool {
    match mu {
        Mutation::SkipSpillStore => {
            for f in &mut m.functions {
                for b in &mut f.blocks {
                    if let Some(i) = b
                        .instrs
                        .iter()
                        .position(|i| matches!(i.spill, SpillKind::Store(_)))
                    {
                        b.instrs.remove(i);
                        return true;
                    }
                }
            }
            false
        }
        Mutation::BumpCcmOffset => {
            for f in &mut m.functions {
                for b in &mut f.blocks {
                    for i in &mut b.instrs {
                        match &mut i.op {
                            Op::CcmLoad { off, .. } | Op::CcmFLoad { off, .. } => {
                                *off += 8;
                                return true;
                            }
                            _ => {}
                        }
                    }
                }
            }
            false
        }
        Mutation::OverlapSlots => {
            for f in &mut m.functions {
                let ccm_slots: Vec<usize> = (0..f.frame.slots.len())
                    .filter(|&s| f.frame.slots[s].in_ccm)
                    .collect();
                let Some((&a, &b)) = ccm_slots.first().zip(ccm_slots.get(1)) else {
                    continue;
                };
                let target = f.frame.slots[a].offset;
                f.frame.slots[b].offset = target;
                for blk in &mut f.blocks {
                    for i in &mut blk.instrs {
                        let touches_b = matches!(
                            i.spill,
                            SpillKind::Store(s) | SpillKind::Restore(s) if s.index() == b
                        );
                        if !touches_b {
                            continue;
                        }
                        match &mut i.op {
                            Op::CcmLoad { off, .. }
                            | Op::CcmFLoad { off, .. }
                            | Op::CcmStore { off, .. }
                            | Op::CcmFStore { off, .. } => *off = target,
                            _ => {}
                        }
                    }
                }
                return true;
            }
            false
        }
    }
}

/// What the oracle runs: CCM sizes, variants (baseline always runs as
/// the reference), and an optional injected bug.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// CCM capacities to test, each simulated independently.
    pub ccm_sizes: Vec<u32>,
    /// Variants compared against baseline (baseline entries are skipped:
    /// it is always the reference).
    pub variants: Vec<Variant>,
    /// Deliberate post-allocation bug applied to every non-baseline
    /// variant.
    pub mutation: Option<Mutation>,
    /// Register supply for allocation (and the checker). Tests and the
    /// minimizer shrink it so tiny modules still spill.
    pub alloc: AllocConfig,
    /// Run every simulation under **both** execution engines (AST and
    /// decoded) and fail with [`FailureKind::EngineMismatch`] on any
    /// divergence in return values, full [`sim::Metrics`], or trap.
    /// This is the differential gate for the decoded engine's
    /// equivalence contract.
    pub dual_engine: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            ccm_sizes: vec![64, 256, 1024],
            variants: Variant::ALL.to_vec(),
            mutation: None,
            alloc: AllocConfig::default(),
            dual_engine: false,
        }
    }
}

/// Why a case failed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The simulator trapped.
    Trap,
    /// Return values differ from baseline (bitwise).
    ChecksumMismatch,
    /// The post-allocation checker reported errors.
    CheckerRejected,
    /// The variant ran more cycles than baseline.
    Slower,
    /// Allocation or promotion panicked.
    Panicked,
    /// The AST and decoded engines disagreed (dual-engine mode only).
    EngineMismatch,
}

impl FailureKind {
    /// Short name used in fuzz reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Trap => "trap",
            FailureKind::ChecksumMismatch => "checksum-mismatch",
            FailureKind::CheckerRejected => "checker-rejected",
            FailureKind::Slower => "slower-than-baseline",
            FailureKind::Panicked => "panic",
            FailureKind::EngineMismatch => "engine-mismatch",
        }
    }
}

/// One oracle failure: what went wrong, where, and a human-readable
/// detail line.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failure class (preserved by the minimizer).
    pub kind: FailureKind,
    /// The variant that misbehaved.
    pub variant: Variant,
    /// The CCM size it misbehaved at.
    pub ccm: u32,
    /// Free-form diagnostic detail.
    pub detail: String,
}

impl Failure {
    /// Whether `other` is "the same bug" for minimization purposes.
    pub fn same_bug(&self, other: &Failure) -> bool {
        self.kind == other.kind && self.variant == other.variant
    }
}

/// Aggregate statistics for a passing case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseStats {
    /// Instructions in the generated module (pre-allocation).
    pub instrs: usize,
    /// Live ranges the baseline spilled (at the first CCM size).
    pub spilled_ranges: usize,
    /// CCM operations executed across all non-baseline runs.
    pub ccm_ops: u64,
    /// Baseline cycles at the first CCM size.
    pub base_cycles: u64,
}

struct VariantRun {
    ints: Vec<i64>,
    float_bits: Vec<u64>,
    cycles: u64,
    ccm_ops: u64,
    spilled: usize,
}

fn run_variant(
    m: &Module,
    variant: Variant,
    ccm: u32,
    mutation: Option<Mutation>,
    alloc: &AllocConfig,
    dual_engine: bool,
) -> Result<VariantRun, Failure> {
    let fail = |kind, detail| Failure {
        kind,
        variant,
        ccm,
        detail,
    };
    let allocated = catch_unwind(AssertUnwindSafe(|| {
        let mut mm = m.clone();
        let spilled = allocate(&mut mm, variant, ccm, alloc);
        if let Some(mu) = mutation.filter(|_| variant != Variant::Baseline) {
            apply_mutation(&mut mm, mu);
        }
        (mm, spilled)
    }));
    let (mm, spilled) = match allocated {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            return Err(fail(FailureKind::Panicked, msg));
        }
    };
    let diags = checker::check_module(&mm, &checker::CheckerConfig::with_alloc(ccm, *alloc));
    if checker::has_errors(&diags) {
        let errors = checker::errors(&diags);
        let detail = format!(
            "{} checker error(s); first: {}",
            errors.len(),
            errors.first().map(|d| d.to_string()).unwrap_or_default()
        );
        return Err(fail(FailureKind::CheckerRejected, detail));
    }
    let machine = MachineConfig::with_ccm(ccm);
    let result = if dual_engine {
        // Run under both engines and demand identical observable
        // behavior before trusting either result.
        let bits =
            |v: &sim::RetValues| -> Vec<u64> { v.floats.iter().map(|f| f.to_bits()).collect() };
        let run = |engine| {
            sim::run_module(
                &mm,
                MachineConfig {
                    engine,
                    ..machine.clone()
                },
                "main",
            )
        };
        let ra = run(sim::Engine::Ast);
        let rd = run(sim::Engine::Decoded);
        let diverged = match (&ra, &rd) {
            (Ok((va, ma)), Ok((vd, md))) => va.ints != vd.ints || bits(va) != bits(vd) || ma != md,
            (Err(ea), Err(ed)) => ea != ed,
            _ => true,
        };
        if diverged {
            return Err(fail(
                FailureKind::EngineMismatch,
                format!("ast {ra:?} vs decoded {rd:?}"),
            ));
        }
        rd
    } else {
        sim::run_module(&mm, machine, "main")
    };
    match result {
        Ok((vals, metrics)) => Ok(VariantRun {
            ints: vals.ints,
            float_bits: vals.floats.iter().map(|f| f.to_bits()).collect(),
            cycles: metrics.cycles,
            ccm_ops: metrics.ccm_ops,
            spilled,
        }),
        Err(e) => Err(fail(FailureKind::Trap, e.to_string())),
    }
}

/// Runs the full differential oracle on one module.
///
/// # Errors
///
/// Returns the first [`Failure`] in deterministic (CCM size, variant)
/// order.
pub fn run_oracle(m: &Module, cfg: &OracleConfig) -> Result<CaseStats, Failure> {
    let mut stats = CaseStats {
        instrs: m.instr_count(),
        ..CaseStats::default()
    };
    let mut first = true;
    for &ccm in &cfg.ccm_sizes {
        let base = run_variant(m, Variant::Baseline, ccm, None, &cfg.alloc, cfg.dual_engine)?;
        if first {
            stats.spilled_ranges = base.spilled;
            stats.base_cycles = base.cycles;
            first = false;
        }
        for &v in &cfg.variants {
            if v == Variant::Baseline {
                continue;
            }
            let r = run_variant(m, v, ccm, cfg.mutation, &cfg.alloc, cfg.dual_engine)?;
            stats.ccm_ops += r.ccm_ops;
            if r.ints != base.ints || r.float_bits != base.float_bits {
                return Err(Failure {
                    kind: FailureKind::ChecksumMismatch,
                    variant: v,
                    ccm,
                    detail: format!(
                        "baseline ints {:?} floats {:x?}, {} ints {:?} floats {:x?}",
                        base.ints,
                        base.float_bits,
                        v.label(),
                        r.ints,
                        r.float_bits
                    ),
                });
            }
            if r.cycles > base.cycles {
                return Err(Failure {
                    kind: FailureKind::Slower,
                    variant: v,
                    ccm,
                    detail: format!("{} cycles vs baseline {}", r.cycles, base.cycles),
                });
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_module;

    #[test]
    fn honest_pipeline_passes() {
        let cfg = OracleConfig::default();
        for seed in 0..12 {
            let m = gen_module(seed);
            if let Err(f) = run_oracle(&m, &cfg) {
                panic!(
                    "seed {seed} failed honestly: {:?} {} at ccm {}: {}",
                    f.kind,
                    f.variant.label(),
                    f.ccm,
                    f.detail
                );
            }
        }
    }

    #[test]
    fn mutations_are_caught_on_spilling_modules() {
        // Find a seed that spills and promotes into the CCM.
        let cfg = OracleConfig::default();
        let seed = (0..64)
            .find(|&s| {
                let m = gen_module(s);
                run_oracle(&m, &cfg)
                    .map(|st| st.ccm_ops > 0)
                    .unwrap_or(false)
            })
            .expect("some seed must exercise the CCM");
        let m = gen_module(seed);
        for mu in [
            Mutation::SkipSpillStore,
            Mutation::BumpCcmOffset,
            Mutation::OverlapSlots,
        ] {
            let broken = OracleConfig {
                mutation: Some(mu),
                ..OracleConfig::default()
            };
            // OverlapSlots needs two CCM slots in one function; the other
            // two always apply on a promoted module. If the mutation
            // could not apply, passing is the correct outcome.
            let mut probe = m.clone();
            allocate(&mut probe, Variant::PostPassCallGraph, 64, &broken.alloc);
            let applies = apply_mutation(&mut probe, mu);
            let verdict = run_oracle(&m, &broken);
            if applies {
                assert!(verdict.is_err(), "{mu:?} not caught on seed {seed}");
            }
        }
    }
}
