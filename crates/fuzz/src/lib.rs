#![warn(missing_docs)]
//! Differential fuzzing for the CCM allocation pipeline.
//!
//! The paper's transformations (spill-slot renaming, slot coloring into
//! the CCM, integrated CCM-aware spilling) must preserve program
//! behavior for *any* input, not just the hand-written kernel suite.
//! This crate closes that gap with three pieces:
//!
//! * [`gen::gen_module`] — a seeded random ILOC generator (arbitrary
//!   CFGs, calls, high register pressure, f64/i32 globals);
//! * [`oracle::run_oracle`] — a differential oracle running every
//!   module through all allocation variants at several CCM sizes,
//!   asserting bit-identical results, a clean checker, and
//!   `cycles <= baseline`;
//! * [`min::minimize`] — a shrinker that reduces failures to minimal
//!   reproducers printable as parseable ILOC (checked into
//!   `tests/corpus/` as permanent regression tests).
//!
//! [`campaign`] fans cases out through [`exec::par_map`] with per-case
//! seeds derived by [`case_seed`], so case *i* is byte-identical at any
//! `--jobs` count; `repro --fuzz N [--seed S]` is a thin CLI wrapper
//! around [`campaign_report`].

pub mod gen;
pub mod min;
pub mod oracle;

pub use gen::gen_module;
pub use min::minimize;
pub use oracle::{
    apply_mutation, run_oracle, CaseStats, Failure, FailureKind, Mutation, OracleConfig, Variant,
};

use iloc::Module;

/// Derives the seed for case `index` of a campaign from the base seed.
/// SplitMix64-style finalization: consecutive indices map to unrelated
/// seeds, and case `i` depends only on `(base, i)` — never on job count
/// or scheduling.
pub fn case_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Campaign-relative index.
    pub index: usize,
    /// The derived generator seed.
    pub seed: u64,
    /// Oracle verdict; failures carry the minimized reproducer.
    pub outcome: Result<CaseStats, Box<MinimizedFailure>>,
}

/// A failing case after minimization.
#[derive(Clone, Debug)]
pub struct MinimizedFailure {
    /// The (post-minimization) oracle failure.
    pub failure: Failure,
    /// The minimized module.
    pub module: Module,
}

/// Runs `n` generated cases through the oracle on `jobs` workers,
/// minimizing any failures. Case `i` uses `case_seed(seed, i)` and its
/// result is independent of `jobs`.
pub fn campaign(n: usize, seed: u64, jobs: usize, cfg: &OracleConfig) -> Vec<CaseResult> {
    let indices: Vec<usize> = (0..n).collect();
    exec::par_map_contained(
        jobs,
        &indices,
        |i| format!("fuzz case {i} (seed {:#x})", case_seed(seed, *i)),
        |&i| {
            let s = case_seed(seed, i);
            let m = gen::gen_module(s);
            let outcome = match oracle::run_oracle(&m, cfg) {
                Ok(stats) => Ok(stats),
                Err(first) => {
                    // minimize re-runs the oracle; keep the original
                    // failure if it somehow cannot reproduce it.
                    let (module, failure) = min::minimize(&m, cfg).unwrap_or((m, first));
                    Err(Box::new(MinimizedFailure { failure, module }))
                }
            };
            CaseResult {
                index: i,
                seed: s,
                outcome,
            }
        },
    )
    .into_iter()
    .enumerate()
    .map(|(i, r)| {
        // Containment: a panic outside the oracle's own catch (generator
        // or minimizer bug, or an injected worker panic) poisons only
        // its case. The campaign keeps running and the case is reported
        // with the captured payload.
        r.unwrap_or_else(|e| CaseResult {
            index: i,
            seed: case_seed(seed, i),
            outcome: Err(Box::new(MinimizedFailure {
                failure: Failure {
                    kind: FailureKind::Panicked,
                    variant: Variant::Baseline,
                    ccm: 0,
                    detail: format!("worker panic: {}", e.message),
                },
                module: Module::new(),
            })),
        })
    })
    .collect()
}

/// A rendered campaign: the text for stdout plus the failure count.
pub struct CampaignReport {
    /// Human-readable report (deterministic for a given `(n, seed)`).
    pub text: String,
    /// Number of failing cases.
    pub failures: usize,
}

/// Runs a campaign and renders the deterministic report `repro --fuzz`
/// prints. Failures include the minimized reproducer as parseable ILOC.
pub fn campaign_report(n: usize, seed: u64, jobs: usize, cfg: &OracleConfig) -> CampaignReport {
    use std::fmt::Write;

    let results = campaign(n, seed, jobs, cfg);
    let mut text = String::new();
    let mut spilling = 0usize;
    let mut ccm_active = 0usize;
    let mut instrs = 0usize;
    let mut failures = 0usize;
    for r in &results {
        match &r.outcome {
            Ok(st) => {
                instrs += st.instrs;
                spilling += usize::from(st.spilled_ranges > 0);
                ccm_active += usize::from(st.ccm_ops > 0);
            }
            Err(_) => failures += 1,
        }
    }
    let _ = writeln!(text, "fuzz: {n} cases, seed {seed}: {failures} failure(s)");
    let _ = writeln!(
        text,
        "  baseline spills: {spilling}/{n} cases; ccm traffic: {ccm_active}/{n} cases; {instrs} instrs generated"
    );
    for r in &results {
        let Err(mf) = &r.outcome else { continue };
        let f = &mf.failure;
        let _ = writeln!(
            text,
            "\ncase {} (seed {:#x}): {} in {} at ccm {}\n  {}",
            r.index,
            r.seed,
            f.kind.label(),
            f.variant.label(),
            f.ccm,
            f.detail
        );
        let _ = writeln!(
            text,
            "minimized reproducer ({} function(s), {} ops):\n{}",
            mf.module.functions.len(),
            mf.module.instr_count(),
            mf.module
        );
    }
    CampaignReport { text, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_spread_out() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(1, 0));
    }

    #[test]
    fn campaign_is_job_count_invariant() {
        let cfg = OracleConfig {
            ccm_sizes: vec![256],
            ..OracleConfig::default()
        };
        let r1 = campaign_report(8, 1, 1, &cfg);
        let r4 = campaign_report(8, 1, 4, &cfg);
        assert_eq!(r1.text, r4.text, "jobs=1 vs jobs=4 diverged");
        assert_eq!(r1.failures, 0, "honest pipeline must pass:\n{}", r1.text);
    }

    #[test]
    fn mutated_campaign_reports_and_minimizes() {
        // One CCM size and one non-baseline variant keep the per-case
        // minimization cost down; the campaign is deterministic, so two
        // cases are enough to cover multi-failure rendering.
        let cfg = OracleConfig {
            ccm_sizes: vec![64],
            variants: vec![Variant::PostPass],
            mutation: Some(Mutation::SkipSpillStore),
            alloc: regalloc::AllocConfig::tiny(3),
            ..OracleConfig::default()
        };
        let rep = campaign_report(2, 1, 2, &cfg);
        assert!(
            rep.failures > 0,
            "no case spilled under tiny(3)?\n{}",
            rep.text
        );
        assert!(
            rep.text.contains("minimized reproducer"),
            "report must embed reproducers:\n{}",
            rep.text
        );
    }
}
