//! Automatic test-case minimization.
//!
//! [`minimize`] takes a module the oracle rejects and greedily shrinks
//! it while the *same bug* (same [`FailureKind`] and variant, per
//! [`Failure::same_bug`]) still reproduces. Reduction passes run
//! coarse-to-fine, each to a fixpoint, and the whole ladder repeats
//! until no pass makes progress:
//!
//! 1. **Drop functions** — replace every call to a helper with constant
//!    zero definitions of its return registers, then delete it;
//! 2. **Drop blocks** — resolve a `cbr` to one of its targets (`jump`)
//!    and prune the unreachable half of the CFG, then thread edges
//!    through blocks left holding nothing but a `jump`;
//! 3. **Drop ops** — delete non-terminator instructions, first in
//!    halving chunks per block, then singly. Deleting an instruction
//!    whose result is still used downstream leaves a read of a register
//!    with no definition — the checker's def-before-use analysis then
//!    rejects the *baseline* allocation, changing the failure signature
//!    and blocking the shrink. When plain deletion is rejected, the pass
//!    retries with each dropped definition stubbed as `loadI 0` /
//!    `loadF 0.0`, which keeps every candidate checker-clean; stubs whose
//!    uses disappear later are plain-deleted by a subsequent round;
//! 4. **Shrink globals** — halve data sizes and delete unreferenced
//!    globals.
//!
//! Every candidate must still pass `Module::verify` — the oracle's
//! preconditions — before it is accepted, so a minimized reproducer is
//! always a well-formed program the harness can replay from its printed
//! ILOC form.
//!
//! Minimization runs a *focused* oracle: only the failing variant at the
//! failing CCM size (plus the baseline reference), which cuts shrink
//! time by roughly the variant-count × size-count product.

use iloc::{BlockId, Instr, Module, Op};

use crate::oracle::{run_oracle, Failure, OracleConfig, Variant};

/// Shrinks `m` to a smaller module that still fails the oracle with the
/// same bug. Returns the minimized module and its failure, or `None` if
/// `m` passes the oracle under `cfg` (nothing to minimize).
pub fn minimize(m: &Module, cfg: &OracleConfig) -> Option<(Module, Failure)> {
    let orig = run_oracle(m, cfg).err()?;
    // Focus the oracle on the failing configuration.
    let focused = OracleConfig {
        ccm_sizes: vec![orig.ccm],
        variants: if orig.variant == Variant::Baseline {
            vec![Variant::Baseline]
        } else {
            vec![orig.variant]
        },
        mutation: cfg.mutation,
        alloc: cfg.alloc,
        dual_engine: cfg.dual_engine,
    };
    let still_fails = |cand: &Module| -> Option<Failure> {
        if cand.verify().is_err() {
            return None;
        }
        run_oracle(cand, &focused)
            .err()
            .filter(|f| f.same_bug(&orig))
    };
    let mut cur = m.clone();
    let mut cur_fail = still_fails(&cur)?; // focused run must agree
    loop {
        let mut progress = false;
        progress |= drop_functions(&mut cur, &mut cur_fail, &still_fails);
        progress |= drop_blocks(&mut cur, &mut cur_fail, &still_fails);
        progress |= thread_jumps(&mut cur, &mut cur_fail, &still_fails);
        progress |= drop_ops(&mut cur, &mut cur_fail, &still_fails);
        progress |= shrink_globals(&mut cur, &mut cur_fail, &still_fails);
        if !progress {
            break;
        }
    }
    Some((cur, cur_fail))
}

/// Accepts `cand` if it still fails with the same bug, updating
/// `cur`/`fail` and returning true.
fn try_accept(
    cur: &mut Module,
    fail: &mut Failure,
    cand: Module,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    if let Some(f) = still_fails(&cand) {
        *cur = cand;
        *fail = f;
        true
    } else {
        false
    }
}

/// Replaces every `call name(...)` with `loadI 0` / `loadF 0.0` into the
/// call's return registers.
fn stub_calls(m: &mut Module, name: &str) {
    for f in &mut m.functions {
        for b in &mut f.blocks {
            let mut out = Vec::with_capacity(b.instrs.len());
            for i in b.instrs.drain(..) {
                match &i.op {
                    Op::Call { callee, rets, .. } if callee == name => {
                        for &r in rets {
                            out.push(Instr::new(match r.class() {
                                iloc::RegClass::Gpr => Op::LoadI { imm: 0, dst: r },
                                iloc::RegClass::Fpr => Op::LoadF { imm: 0.0, dst: r },
                            }));
                        }
                    }
                    _ => out.push(i),
                }
            }
            b.instrs = out;
        }
    }
}

fn drop_functions(
    cur: &mut Module,
    fail: &mut Failure,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    let mut progress = false;
    loop {
        let names: Vec<String> = cur
            .functions
            .iter()
            .map(|f| f.name.clone())
            .filter(|n| n != "main")
            .collect();
        let mut dropped = false;
        for name in names {
            let mut cand = cur.clone();
            stub_calls(&mut cand, &name);
            cand.functions.retain(|f| f.name != name);
            if try_accept(cur, fail, cand, still_fails) {
                dropped = true;
                progress = true;
            }
        }
        if !dropped {
            break;
        }
    }
    progress
}

fn drop_blocks(
    cur: &mut Module,
    fail: &mut Failure,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    let mut progress = false;
    loop {
        let mut changed = false;
        for fi in 0..cur.functions.len() {
            for bi in 0..cur.functions[fi].blocks.len() {
                let Some(Op::Cbr {
                    taken, not_taken, ..
                }) = cur.functions[fi].blocks[bi].terminator().cloned()
                else {
                    continue;
                };
                for target in [taken, not_taken] {
                    let mut cand = cur.clone();
                    let f = &mut cand.functions[fi];
                    let n = f.blocks[bi].instrs.len();
                    f.blocks[bi].instrs[n - 1] = Instr::new(Op::Jump { target });
                    f.prune_unreachable();
                    if try_accept(cur, fail, cand, still_fails) {
                        changed = true;
                        progress = true;
                        break; // block indices shifted; rescan
                    }
                }
                if changed {
                    break;
                }
            }
            if changed {
                break;
            }
        }
        if !changed {
            break;
        }
    }
    progress
}

/// Bypasses blocks that consist of a single unconditional `jump`: every
/// edge into such a block is retargeted to its successor and the (now
/// unreachable) trampoline pruned. `drop_blocks` and `drop_ops` leave
/// these behind when they hollow out loop scaffolding.
fn thread_jumps(
    cur: &mut Module,
    fail: &mut Failure,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    let mut progress = false;
    loop {
        let mut changed = false;
        'scan: for fi in 0..cur.functions.len() {
            // The entry block stays: it defines the function's start.
            for bi in 1..cur.functions[fi].blocks.len() {
                let b = &cur.functions[fi].blocks[bi];
                let Some(Op::Jump { target }) = (b.instrs.len() == 1)
                    .then(|| b.terminator())
                    .flatten()
                    .cloned()
                else {
                    continue;
                };
                let this = BlockId(bi as u32);
                if target == this {
                    continue;
                }
                let mut cand = cur.clone();
                for blk in &mut cand.functions[fi].blocks {
                    if let Some(t) = blk.terminator_mut() {
                        t.map_successors(|s| if s == this { target } else { s });
                    }
                }
                cand.functions[fi].prune_unreachable();
                if try_accept(cur, fail, cand, still_fails) {
                    changed = true;
                    progress = true;
                    break 'scan; // block ids shifted; rescan
                }
            }
        }
        if !changed {
            break;
        }
    }
    progress
}

/// Constant zero definitions standing in for `instrs`' defs. Splicing
/// these in place of deleted instructions keeps every downstream use
/// defined, so the baseline allocation stays checker-clean and the
/// failure signature is preserved.
fn stub_defs(instrs: &[Instr]) -> Vec<Instr> {
    let mut out = Vec::new();
    for i in instrs {
        i.op.visit_defs(|r| {
            out.push(Instr::new(match r.class() {
                iloc::RegClass::Gpr => Op::LoadI { imm: 0, dst: r },
                iloc::RegClass::Fpr => Op::LoadF { imm: 0.0, dst: r },
            }));
        });
    }
    out
}

fn drop_ops(
    cur: &mut Module,
    fail: &mut Failure,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    let mut progress = false;
    for fi in 0..cur.functions.len() {
        for bi in 0..cur.functions[fi].blocks.len() {
            // Halving chunks, then singles (ddmin-style), over the
            // non-terminator prefix of the block.
            let mut chunk = cur.functions[fi].blocks[bi]
                .instrs
                .len()
                .saturating_sub(1)
                .max(1);
            while chunk >= 1 {
                let mut start = 0;
                loop {
                    let body_len = {
                        let b = &cur.functions[fi].blocks[bi];
                        let has_term = b.terminator().is_some();
                        b.instrs.len() - usize::from(has_term)
                    };
                    if start >= body_len {
                        break;
                    }
                    let end = (start + chunk).min(body_len);
                    let mut cand = cur.clone();
                    cand.functions[fi].blocks[bi].instrs.drain(start..end);
                    if try_accept(cur, fail, cand, still_fails) {
                        progress = true;
                        continue; // same start: the block shrank under us
                    }
                    // Deletion may strand a use of a register defined only
                    // in [start, end); retry with the defs stubbed to
                    // constants (skipping the no-op case where the range
                    // already is exactly its own stubs).
                    let stubs = stub_defs(&cur.functions[fi].blocks[bi].instrs[start..end]);
                    if stubs[..] != cur.functions[fi].blocks[bi].instrs[start..end] {
                        let mut cand = cur.clone();
                        cand.functions[fi].blocks[bi]
                            .instrs
                            .splice(start..end, stubs.iter().cloned());
                        if try_accept(cur, fail, cand, still_fails) {
                            progress = true;
                            start += stubs.len();
                            continue;
                        }
                    }
                    start = end;
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
    }
    progress
}

fn shrink_globals(
    cur: &mut Module,
    fail: &mut Failure,
    still_fails: &impl Fn(&Module) -> Option<Failure>,
) -> bool {
    let mut progress = false;
    // Drop globals no loadSym mentions.
    let mut referenced: Vec<String> = Vec::new();
    for f in &cur.functions {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Op::LoadSym { sym, .. } = &i.op {
                    if !referenced.contains(sym) {
                        referenced.push(sym.clone());
                    }
                }
            }
        }
    }
    let mut cand = cur.clone();
    cand.globals.retain(|g| referenced.contains(&g.name));
    if cand.globals.len() != cur.globals.len() && try_accept(cur, fail, cand, still_fails) {
        progress = true;
    }
    // Halve each remaining global while it still reproduces.
    for gi in 0..cur.globals.len() {
        while cur.globals[gi].size >= 16 {
            let mut cand = cur.clone();
            let g = &mut cand.globals[gi];
            g.size /= 2;
            // Keep 8-byte alignment for f64 data.
            g.size = (g.size + 7) & !7;
            g.init.truncate(g.size as usize);
            if cand.globals[gi].size == cur.globals[gi].size
                || !try_accept(cur, fail, cand, still_fails)
            {
                break;
            }
            progress = true;
        }
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_module;
    use crate::oracle::{allocate, apply_mutation, CaseStats, Mutation};

    /// The acceptance-criteria mutation test: an injected allocator bug
    /// must be caught and shrink to <= 2 functions / <= 12 ops. Runs
    /// under a tiny register file so spilling — and therefore the bug —
    /// survives on very small modules.
    #[test]
    fn injected_bug_shrinks_to_tiny_reproducer() {
        let tiny = regalloc::AllocConfig::tiny(3);
        let cfg = OracleConfig {
            alloc: tiny,
            ..OracleConfig::default()
        };
        let seed = (0..64)
            .find(|&s| {
                let m = gen_module(s);
                run_oracle(&m, &cfg)
                    .map(|st: CaseStats| st.ccm_ops > 0)
                    .unwrap_or(false)
            })
            .expect("some seed must exercise the CCM");
        let m = gen_module(seed);
        let broken = OracleConfig {
            mutation: Some(Mutation::BumpCcmOffset),
            ..cfg
        };
        // Make sure the mutation actually applies to this module.
        let mut probe = m.clone();
        allocate(
            &mut probe,
            crate::oracle::Variant::PostPassCallGraph,
            64,
            &tiny,
        );
        assert!(apply_mutation(&mut probe, Mutation::BumpCcmOffset));

        let (small, f) = minimize(&m, &broken).expect("bug must be caught");
        assert!(
            small.functions.len() <= 2,
            "reproducer has {} functions",
            small.functions.len()
        );
        assert!(
            small.instr_count() <= 12,
            "reproducer has {} ops:\n{small}",
            small.instr_count()
        );
        // The reproducer round-trips through the printer/parser.
        let reparsed = iloc::parse_module(&small.to_string()).unwrap();
        assert_eq!(reparsed, small);
        // And still fails the same way.
        let again = run_oracle(&small, &broken).unwrap_err();
        assert!(again.same_bug(&f));
    }

    #[test]
    fn passing_module_is_not_minimized() {
        let m = gen_module(3);
        assert!(minimize(&m, &OracleConfig::default()).is_none());
    }
}
