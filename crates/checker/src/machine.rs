//! Machine-level checks: allocated code must mention only legal physical
//! registers and never read one before it is written.

use analysis::{solve, DefinedRegs, RegIndex};
use iloc::{Function, Op, Reg, RegClass};

use crate::{CheckerConfig, Diagnostic};

/// Runs the `machine-vreg`, `machine-reg-bounds`, and `machine-def-use`
/// checks on one allocated function.
pub(crate) fn check(f: &Function, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) {
    registers_are_physical(f, cfg, diags);
    def_before_use(f, cfg, diags);
}

/// `machine-vreg` + `machine-reg-bounds`: every register in the function
/// is physical and inside the configuration's allocatable set.
fn registers_are_physical(f: &Function, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) {
    for &p in &f.params {
        check_reg(p, f, None, cfg, diags);
    }
    for b in f.block_ids() {
        let label = &f.block(b).label;
        for (i, instr) in f.block(b).instrs.iter().enumerate() {
            let mut seen: Vec<Reg> = Vec::new();
            let mut visit = |r: Reg| {
                if !seen.contains(&r) {
                    seen.push(r);
                    check_reg(r, f, Some((label, i)), cfg, diags);
                }
            };
            instr.op.visit_uses(&mut visit);
            instr.op.visit_defs(&mut visit);
        }
    }
}

fn check_reg(
    r: Reg,
    f: &Function,
    site: Option<(&str, usize)>,
    cfg: &CheckerConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let d = if r.is_virtual() {
        Diagnostic::error(
            "machine-vreg",
            &f.name,
            format!("virtual register {r} survives allocation"),
        )
    } else if !cfg.alloc.is_valid_physical(r) {
        let k = cfg.alloc.k(r.class());
        Diagnostic::error(
            "machine-reg-bounds",
            &f.name,
            format!(
                "physical register {r} outside the allocatable set ({} K = {k})",
                match r.class() {
                    RegClass::Gpr => "GPR",
                    RegClass::Fpr => "FPR",
                }
            ),
        )
    } else {
        return;
    };
    diags.push(match site {
        Some((label, i)) => d.at(label, i),
        None => d,
    });
}

/// `machine-def-use`: a must-be-defined dataflow pass proving no physical
/// register is read before every path to the read has written it.
fn def_before_use(f: &Function, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) {
    let index = RegIndex::build(f);
    if index.is_empty() {
        return;
    }
    let mut kills = cfg.alloc.caller_saved_physical(RegClass::Gpr);
    kills.extend(cfg.alloc.caller_saved_physical(RegClass::Fpr));
    let problem = DefinedRegs::new(f, &index, kills);
    let sol = solve(f, &problem);
    for b in f.block_ids() {
        let label = &f.block(b).label;
        let mut defined = sol.in_[b.index()].clone();
        for (i, instr) in f.block(b).instrs.iter().enumerate() {
            // φs read along predecessor edges, not at their own site;
            // allocated code should not contain them anyway (SSA is
            // destructed before allocation), so only their def matters.
            if !matches!(instr.op, Op::Phi { .. }) {
                let mut reported: Vec<Reg> = Vec::new();
                instr.op.visit_uses(|r| {
                    if r.is_physical()
                        && index.get(r).is_some_and(|id| !defined.contains(id))
                        && !reported.contains(&r)
                    {
                        reported.push(r);
                        diags.push(
                            Diagnostic::error(
                                "machine-def-use",
                                &f.name,
                                format!("{r} may be read before it is written"),
                            )
                            .at(label, i),
                        );
                    }
                });
            }
            problem.apply(instr, &mut defined);
        }
    }
}
