//! Spill-slot sanitizer: replay the §3.1 slot-liveness analysis over
//! allocated code and flag undefined loads, dead stores, malformed
//! frame/CCM addressing, and compaction overlap.

use analysis::bitset::BitSet;
use analysis::dataflow::{DataflowProblem, Direction, Meet};
use analysis::solve;
use ccm::SlotAnalysis;
use iloc::{BlockId, Function, Op, Reg, RegClass, SpillKind, SpillSlot};

use crate::{CheckerConfig, Diagnostic};

/// Runs the `slot-frame`, `slot-undef-load`, `slot-dead-store`, and
/// `slot-overlap` checks on one allocated function.
pub(crate) fn check(f: &Function, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) {
    if f.frame.slots.is_empty() {
        return;
    }
    slot_records(f, cfg, diags);
    tagged_instructions(f, diags);
    let sa = SlotAnalysis::compute(f);
    undefined_loads(f, diags);
    dead_stores(f, &sa, diags);
    compaction_overlap(f, &sa, diags);
}

/// `slot-frame` (records): every slot is naturally aligned and, when
/// frame-resident, sits in the spill area above the locals.
fn slot_records(f: &Function, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) {
    for (i, slot) in f.frame.slots.iter().enumerate() {
        let size = slot.size();
        if slot.offset % size != 0 {
            diags.push(Diagnostic::error(
                "slot-frame",
                &f.name,
                format!(
                    "slot {i} at offset {} is not {size}-byte aligned",
                    slot.offset
                ),
            ));
        }
        if !slot.in_ccm {
            if slot.offset < f.frame.locals_size {
                diags.push(Diagnostic::error(
                    "slot-frame",
                    &f.name,
                    format!(
                        "slot {i} at offset {} overlaps the locals area (0..{})",
                        slot.offset, f.frame.locals_size
                    ),
                ));
            }
            if slot.offset + size > f.frame.frame_size() {
                diags.push(Diagnostic::error(
                    "slot-frame",
                    &f.name,
                    format!(
                        "slot {i} at offset {} extends past the {}-byte frame",
                        slot.offset,
                        f.frame.frame_size()
                    ),
                ));
            }
        } else if slot.offset + size > cfg.ccm_size {
            diags.push(Diagnostic::error(
                "ccm-bounds",
                &f.name,
                format!(
                    "CCM-resident slot {i} spans [{}, {}) past the {}-byte CCM",
                    slot.offset,
                    slot.offset + size,
                    cfg.ccm_size
                ),
            ));
        }
    }
}

/// `slot-frame` (instructions): every spill-tagged instruction addresses
/// exactly its slot's storage — right address space, right opcode class,
/// right base register, right offset.
fn tagged_instructions(f: &Function, diags: &mut Vec<Diagnostic>) {
    for b in f.block_ids() {
        let label = &f.block(b).label;
        for (i, instr) in f.block(b).instrs.iter().enumerate() {
            let (slot_id, is_store) = match instr.spill {
                SpillKind::Store(s) => (s, true),
                SpillKind::Restore(s) => (s, false),
                SpillKind::None => continue,
            };
            // Out-of-range tags are a structural error reported elsewhere.
            let Some(slot) = f.frame.slots.get(slot_id.index()) else {
                continue;
            };
            if let Some(msg) = tag_mismatch(&instr.op, slot, is_store) {
                diags.push(
                    Diagnostic::error(
                        "slot-frame",
                        &f.name,
                        format!("slot {} {msg}", slot_id.index()),
                    )
                    .at(label, i),
                );
            }
        }
    }
}

/// Explains why `op` does not implement a spill store/restore of `slot`,
/// or `None` if it matches.
fn tag_mismatch(op: &Op, slot: &SpillSlot, is_store: bool) -> Option<String> {
    let kind = if is_store { "store" } else { "restore" };
    let (addr, off, op_class, op_ccm, op_store) = match *op {
        Op::StoreAI { addr, off, .. } => (Some(addr), off, RegClass::Gpr, false, true),
        Op::FStoreAI { addr, off, .. } => (Some(addr), off, RegClass::Fpr, false, true),
        Op::LoadAI { addr, off, .. } => (Some(addr), off, RegClass::Gpr, false, false),
        Op::FLoadAI { addr, off, .. } => (Some(addr), off, RegClass::Fpr, false, false),
        Op::CcmStore { off, .. } => (None, off as i64, RegClass::Gpr, true, true),
        Op::CcmFStore { off, .. } => (None, off as i64, RegClass::Fpr, true, true),
        Op::CcmLoad { off, .. } => (None, off as i64, RegClass::Gpr, true, false),
        Op::CcmFLoad { off, .. } => (None, off as i64, RegClass::Fpr, true, false),
        _ => return Some(format!("{kind} tag on a non-memory operation")),
    };
    if op_store != is_store {
        return Some(format!("{kind} tag on the opposite access kind"));
    }
    if op_class != slot.class {
        return Some(format!(
            "{kind} accesses a {op_class:?} value but the slot holds {:?}",
            slot.class
        ));
    }
    if op_ccm != slot.in_ccm {
        return Some(format!(
            "{kind} uses {} but the slot lives in {}",
            if op_ccm { "the CCM" } else { "main memory" },
            if slot.in_ccm { "the CCM" } else { "the frame" }
        ));
    }
    if let Some(base) = addr {
        if base != Reg::RARP {
            return Some(format!(
                "{kind} is not based on the activation-record pointer"
            ));
        }
    }
    if off != slot.offset as i64 {
        return Some(format!(
            "{kind} addresses offset {off} but the slot record says {}",
            slot.offset
        ));
    }
    None
}

/// Forward/intersection problem: slots that have definitely been stored
/// on every path. Nothing un-stores a slot, so kill sets are empty.
struct StoredSlots {
    n: usize,
}

impl DataflowProblem for StoredSlots {
    fn universe(&self) -> usize {
        self.n
    }

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn meet(&self) -> Meet {
        Meet::Intersection
    }

    fn gen_set(&self, f: &Function, b: BlockId) -> BitSet {
        let mut set = BitSet::new(self.n);
        for instr in &f.block(b).instrs {
            if let SpillKind::Store(s) = instr.spill {
                if s.index() < self.n {
                    set.insert(s.index());
                }
            }
        }
        set
    }

    fn kill_set(&self, _f: &Function, _b: BlockId) -> BitSet {
        BitSet::new(self.n)
    }
}

/// `slot-undef-load`: a spill restore must be preceded by a spill store
/// of the same slot on every path from entry.
fn undefined_loads(f: &Function, diags: &mut Vec<Diagnostic>) {
    let n = f.frame.slots.len();
    let problem = StoredSlots { n };
    let sol = solve(f, &problem);
    for b in f.block_ids() {
        let label = &f.block(b).label;
        let mut stored = sol.in_[b.index()].clone();
        for (i, instr) in f.block(b).instrs.iter().enumerate() {
            match instr.spill {
                SpillKind::Restore(s) if s.index() < n && !stored.contains(s.index()) => {
                    diags.push(
                        Diagnostic::error(
                            "slot-undef-load",
                            &f.name,
                            format!(
                                "restore of slot {} not preceded by a store on every path",
                                s.index()
                            ),
                        )
                        .at(label, i),
                    );
                }
                SpillKind::Store(s) if s.index() < n => {
                    stored.insert(s.index());
                }
                _ => {}
            }
        }
    }
}

/// `slot-dead-store` (warning): a spill store whose slot is dead — no
/// path from the store reaches a restore of it. Legal but wasted memory
/// traffic, so it is reported without failing the check.
fn dead_stores(f: &Function, sa: &SlotAnalysis, diags: &mut Vec<Diagnostic>) {
    for b in f.block_ids() {
        let label = &f.block(b).label;
        let mut live = sa.live_out(b).clone();
        for (i, instr) in f.block(b).instrs.iter().enumerate().rev() {
            match instr.spill {
                SpillKind::Store(s) if s.index() < sa.n => {
                    if !live.contains(s.index()) {
                        diags.push(
                            Diagnostic::warning(
                                "slot-dead-store",
                                &f.name,
                                format!("store to slot {} is never restored", s.index()),
                            )
                            .at(label, i),
                        );
                    }
                    live.remove(s.index());
                }
                SpillKind::Restore(s) if s.index() < sa.n => {
                    live.insert(s.index());
                }
                _ => {}
            }
        }
    }
}

/// `slot-overlap`: interfering slots (simultaneously live) must not share
/// bytes within an address space — the compaction/promotion passes may
/// only reuse storage for slots that never carry live values together.
fn compaction_overlap(f: &Function, sa: &SlotAnalysis, diags: &mut Vec<Diagnostic>) {
    for i in 0..sa.n {
        let si = &f.frame.slots[i];
        for &j in &sa.adj[i] {
            if j <= i {
                continue;
            }
            let sj = &f.frame.slots[j];
            if si.in_ccm != sj.in_ccm {
                continue; // disjoint address spaces
            }
            let overlap = si.offset < sj.offset + sj.size() && sj.offset < si.offset + si.size();
            if overlap {
                diags.push(Diagnostic::error(
                    "slot-overlap",
                    &f.name,
                    format!(
                        "interfering slots {i} (offset {}) and {j} (offset {}) share {} bytes",
                        si.offset,
                        sj.offset,
                        if si.in_ccm { "CCM" } else { "frame" }
                    ),
                ));
            }
        }
    }
}
