#![warn(missing_docs)]
//! Post-allocation static checker.
//!
//! After register allocation (and optionally CCM promotion), a module
//! must satisfy invariants that the structural verifier in `iloc` does
//! not know about: no virtual registers remain, physical registers stay
//! within the machine's per-class supply and are written before read,
//! spill slots are addressed exactly as their frame records say, spill
//! restores are dominated by stores, compacted slots never share bytes
//! while simultaneously live, and CCM placement obeys the bounds and the
//! interprocedural high-water discipline of the paper's Figure 1.
//!
//! [`check_module`] runs all of those as dataflow-backed passes and
//! returns structured [`Diagnostic`]s — renderable as text or JSON — so
//! the harness can refuse to simulate ill-formed output and tools can
//! point at the offending function/block/instruction.
//!
//! # Check identifiers
//!
//! | check | severity | meaning |
//! |---|---|---|
//! | `structure` | error | the `iloc` structural verifier failed |
//! | `machine-vreg` | error | a virtual register survives allocation |
//! | `machine-reg-bounds` | error | physical register outside the allocatable set |
//! | `machine-def-use` | error | physical register read before written on some path |
//! | `slot-frame` | error | spill access disagrees with its slot record |
//! | `slot-undef-load` | error | restore without a dominating store |
//! | `slot-dead-store` | warning | spill store never restored |
//! | `slot-overlap` | error | interfering slots share storage bytes |
//! | `ccm-bounds` | error | CCM access or slot outside the scratchpad |
//! | `ccm-mark` | error | CCM access not accounted to a CCM-resident slot |
//! | `ccm-high-water` | warning | CCM slot recorded but never accessed |
//! | `ccm-interproc` | error | CCM value below a callee's high-water mark |
//!
//! # Example
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use regalloc::AllocConfig;
//!
//! let mut fb = FuncBuilder::new("main");
//! fb.set_ret_classes(&[iloc::RegClass::Gpr]);
//! let vals: Vec<_> = (0..12).map(|i| fb.loadi(i)).collect();
//! let mut acc = vals[11];
//! for v in vals[..11].iter().rev() {
//!     acc = fb.add(acc, *v);
//! }
//! fb.ret(&[acc]);
//! let mut m = iloc::Module::new();
//! m.push_function(fb.finish());
//!
//! let alloc = AllocConfig::tiny(4);
//! regalloc::allocate_module(&mut m, &alloc);
//! let cfg = checker::CheckerConfig::with_alloc(512, alloc);
//! let diags = checker::check_module(&m, &cfg);
//! assert!(!checker::has_errors(&diags));
//! ```

use ccm::SlotAnalysis;
use iloc::Module;
use regalloc::AllocConfig;

mod ccm_safety;
mod diag;
mod machine;
mod slots;

pub use diag::{render_json, render_text, Diagnostic, Severity};

/// What the checker assumes about the machine and the allocation run.
#[derive(Copy, Clone, Debug)]
pub struct CheckerConfig {
    /// Compiler-controlled memory size in bytes.
    pub ccm_size: u32,
    /// The register-allocation configuration the module was produced
    /// under (register supply, caller-saved convention).
    pub alloc: AllocConfig,
}

impl CheckerConfig {
    /// A configuration for the paper's default machine with a CCM of
    /// `ccm_size` bytes.
    pub fn new(ccm_size: u32) -> CheckerConfig {
        CheckerConfig {
            ccm_size,
            alloc: AllocConfig::default(),
        }
    }

    /// A configuration with an explicit allocator setup (tests use tiny
    /// register files to force spilling).
    pub fn with_alloc(ccm_size: u32, alloc: AllocConfig) -> CheckerConfig {
        CheckerConfig { ccm_size, alloc }
    }
}

/// Runs every check on an allocated module and returns the findings in
/// pass order (structural, machine, slots, CCM).
pub fn check_module(m: &Module, cfg: &CheckerConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if inject::faultpoint!("checker.forced_error") {
        diags.push(Diagnostic::error(
            "injected",
            m.functions.first().map(|f| f.name.as_str()).unwrap_or(""),
            "injected checker error".to_string(),
        ));
    }
    if let Err(e) = m.verify() {
        diags.push(Diagnostic::error("structure", &e.function, e.message));
    }
    let analyses: Vec<SlotAnalysis> = m.functions.iter().map(SlotAnalysis::compute).collect();
    for f in &m.functions {
        machine::check(f, cfg, &mut diags);
        slots::check(f, cfg, &mut diags);
    }
    ccm_safety::check(m, &analyses, cfg, &mut diags);
    diags
}

/// Whether any diagnostic is [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The diagnostics of [`Severity::Error`], in order.
pub fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Instr, Op, Reg, RegClass, SpillKind};
    use regalloc::AllocConfig;

    /// A module big enough to spill under a tiny register file.
    fn spilled_module(k: u32) -> (Module, AllocConfig) {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..16).map(|i| fb.loadi(i)).collect();
        let mut acc = vals[15];
        for v in vals[..15].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        let alloc = AllocConfig::tiny(k);
        regalloc::allocate_module(&mut m, &alloc);
        (m, alloc)
    }

    #[test]
    fn honest_allocation_has_no_errors() {
        let (m, alloc) = spilled_module(3);
        let diags = check_module(&m, &CheckerConfig::with_alloc(512, alloc));
        assert!(!has_errors(&diags), "{}", render_text(&diags));
    }

    #[test]
    fn honest_promotion_has_no_errors() {
        let (mut m, alloc) = spilled_module(3);
        ccm::postpass_promote(
            &mut m,
            &ccm::PostpassConfig {
                ccm_size: 512,
                interprocedural: true,
            },
        );
        let diags = check_module(&m, &CheckerConfig::with_alloc(512, alloc));
        assert!(!has_errors(&diags), "{}", render_text(&diags));
    }

    #[test]
    fn surviving_vreg_is_reported() {
        let (mut m, alloc) = spilled_module(3);
        let f = &mut m.functions[0];
        let e = f.entry();
        let v = Reg::new(RegClass::Gpr, iloc::FIRST_VREG);
        f.block_mut(e)
            .instrs
            .insert(0, Instr::new(Op::LoadI { imm: 1, dst: v }));
        let diags = check_module(&m, &CheckerConfig::with_alloc(512, alloc));
        assert!(diags.iter().any(|d| d.check == "machine-vreg"));
    }

    #[test]
    fn undefined_slot_load_is_reported() {
        let (mut m, alloc) = spilled_module(3);
        // Delete the first spill store: its slot's restores lose their
        // dominating definition.
        let f = &mut m.functions[0];
        'outer: for b in 0..f.blocks.len() {
            let instrs = &mut f.blocks[b].instrs;
            for i in 0..instrs.len() {
                if matches!(instrs[i].spill, SpillKind::Store(_)) {
                    instrs.remove(i);
                    break 'outer;
                }
            }
        }
        let diags = check_module(&m, &CheckerConfig::with_alloc(512, alloc));
        assert!(
            diags.iter().any(|d| d.check == "slot-undef-load"),
            "{}",
            render_text(&diags)
        );
    }

    #[test]
    fn json_round_trips_the_fields() {
        let (mut m, alloc) = spilled_module(3);
        let f = &mut m.functions[0];
        let e = f.entry();
        let v = Reg::new(RegClass::Gpr, iloc::FIRST_VREG);
        f.block_mut(e)
            .instrs
            .insert(0, Instr::new(Op::LoadI { imm: 1, dst: v }));
        let diags = check_module(&m, &CheckerConfig::with_alloc(512, alloc));
        let json = render_json(&diags);
        assert!(json.contains("\"check\":\"machine-vreg\""));
        assert!(json.contains("\"function\":\"main\""));
    }
}
