//! Structured diagnostics and their text/JSON renderers.

use std::fmt;

/// How bad a finding is. `Error` means the module is not a legal result
/// of allocation (the harness refuses to simulate it); `Warning` flags
/// suspicious but semantics-preserving output such as a dead spill store.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not unsound.
    Warning,
    /// The module violates a post-allocation invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One checker finding, locating the offense down to the instruction
/// when possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Function the finding is in (empty for module-level findings).
    pub function: String,
    /// Label of the offending block, when the finding is inside one.
    pub block: Option<String>,
    /// Index of the offending instruction within its block.
    pub instr: Option<usize>,
    /// Stable check identifier (e.g. `machine-vreg`, `ccm-bounds`).
    pub check: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A new error-severity diagnostic with no location yet.
    pub fn error(check: &'static str, function: &str, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            function: function.to_string(),
            block: None,
            instr: None,
            check,
            message,
        }
    }

    /// A new warning-severity diagnostic with no location yet.
    pub fn warning(check: &'static str, function: &str, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(check, function, message)
        }
    }

    /// Attaches a block/instruction location.
    pub fn at(mut self, block: &str, instr: usize) -> Diagnostic {
        self.block = Some(block.to_string());
        self.instr = Some(instr);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.check)?;
        if !self.function.is_empty() {
            write!(f, " fn `{}`", self.function)?;
        }
        if let Some(b) = &self.block {
            write!(f, " block {b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, " instr {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Renders diagnostics one per line, in the order produced.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a JSON array of objects with keys `severity`,
/// `function`, `block`, `instr`, `check`, and `message`. `block` and
/// `instr` are `null` for module- or function-level findings.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"severity\":");
        json_string(&d.severity.to_string(), &mut out);
        out.push_str(",\"function\":");
        json_string(&d.function, &mut out);
        out.push_str(",\"block\":");
        match &d.block {
            Some(b) => json_string(b, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"instr\":");
        match d.instr {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"check\":");
        json_string(d.check, &mut out);
        out.push_str(",\"message\":");
        json_string(&d.message, &mut out);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site() {
        let d = Diagnostic::error("machine-vreg", "kern", "bad".to_string()).at(".L2", 7);
        assert_eq!(
            d.to_string(),
            "error[machine-vreg] fn `kern` block .L2 instr 7: bad"
        );
    }

    #[test]
    fn json_escapes_and_nulls() {
        let diags = vec![
            Diagnostic::error("structure", "f\"g", "line\none".to_string()),
            Diagnostic::warning("slot-dead-store", "h", "ok".to_string()).at("entry", 0),
        ];
        let j = render_json(&diags);
        assert!(j.contains("\"f\\\"g\""));
        assert!(j.contains("line\\none"));
        assert!(j.contains("\"block\":null"));
        assert!(j.contains("\"instr\":0"));
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
    }
}
