//! CCM safety: scratchpad accesses stay in bounds, are accounted to
//! spill slots, and respect the interprocedural high-water discipline —
//! a value kept in the CCM across a call must sit above everything the
//! callee (transitively) may touch.

use std::collections::HashSet;

use analysis::CallGraph;
use ccm::SlotAnalysis;
use iloc::{Module, Op};

use crate::{CheckerConfig, Diagnostic};

/// Runs the `ccm-bounds`, `ccm-mark`, `ccm-high-water`, and
/// `ccm-interproc` checks over the whole module. `analyses` holds one
/// [`SlotAnalysis`] per function, in module order.
pub(crate) fn check(
    m: &Module,
    analyses: &[SlotAnalysis],
    cfg: &CheckerConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let usage = bounds_and_marks(m, cfg, diags);
    interprocedural(m, analyses, &usage, cfg, diags);
}

/// The byte extent of a CCM access: `(offset, size)`.
fn ccm_access(op: &Op) -> Option<(u32, u32)> {
    match *op {
        Op::CcmStore { off, .. } | Op::CcmLoad { off, .. } => Some((off, 4)),
        Op::CcmFStore { off, .. } | Op::CcmFLoad { off, .. } => Some((off, 8)),
        _ => None,
    }
}

/// `ccm-bounds` + `ccm-mark` + `ccm-high-water`; returns each function's
/// own CCM usage (one past the highest byte its instructions touch).
fn bounds_and_marks(m: &Module, cfg: &CheckerConfig, diags: &mut Vec<Diagnostic>) -> Vec<u32> {
    let mut usage = vec![0u32; m.functions.len()];
    for (fi, f) in m.functions.iter().enumerate() {
        let mut touched: HashSet<usize> = HashSet::new();
        for b in f.block_ids() {
            let label = &f.block(b).label;
            for (i, instr) in f.block(b).instrs.iter().enumerate() {
                let Some((off, size)) = ccm_access(&instr.op) else {
                    continue;
                };
                usage[fi] = usage[fi].max(off + size);
                if off + size > cfg.ccm_size {
                    diags.push(
                        Diagnostic::error(
                            "ccm-bounds",
                            &f.name,
                            format!(
                                "CCM access spans [{off}, {}) past the {}-byte CCM",
                                off + size,
                                cfg.ccm_size
                            ),
                        )
                        .at(label, i),
                    );
                }
                if off % size != 0 {
                    diags.push(
                        Diagnostic::error(
                            "ccm-bounds",
                            &f.name,
                            format!("CCM access at offset {off} is not {size}-byte aligned"),
                        )
                        .at(label, i),
                    );
                }
                // Every CCM access must be a tagged spill of a slot the
                // frame records as CCM-resident at that offset; otherwise
                // the high-water accounting callers rely on is defeated.
                let accounted = instr.spill_slot().is_some_and(|s| {
                    f.frame
                        .slots
                        .get(s.index())
                        .is_some_and(|slot| slot.in_ccm && slot.offset == off)
                });
                if accounted {
                    touched.insert(instr.spill_slot().unwrap().index());
                } else {
                    diags.push(
                        Diagnostic::error(
                            "ccm-mark",
                            &f.name,
                            format!(
                                "CCM access at offset {off} is not accounted to a CCM-resident \
                                 spill slot"
                            ),
                        )
                        .at(label, i),
                    );
                }
            }
        }
        // A slot recorded as CCM-resident but never accessed inflates the
        // function's apparent high-water mark: callers lose scratchpad
        // room for nothing. Safe, so a warning.
        for (si, slot) in f.frame.slots.iter().enumerate() {
            if slot.in_ccm && !touched.contains(&si) {
                diags.push(Diagnostic::warning(
                    "ccm-high-water",
                    &f.name,
                    format!(
                        "slot {si} is marked CCM-resident but never accessed; it pads the \
                         high-water mark to {}",
                        slot.offset + slot.size()
                    ),
                ));
            }
        }
    }
    usage
}

/// `ccm-interproc`: the discipline of the call-graph-driven allocator.
/// Each function's *transitive* mark is its own usage joined with its
/// callees' marks; members of recursive SCCs may re-enter with arbitrary
/// nesting, so their mark is the whole CCM. A caller's CCM-resident slot
/// that is live across a call must sit entirely at or above the callee's
/// mark.
fn interprocedural(
    m: &Module,
    analyses: &[SlotAnalysis],
    usage: &[u32],
    cfg: &CheckerConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let cg = CallGraph::build(m);
    let index = m.function_indices();
    let mut mark = vec![0u32; m.functions.len()];
    // SCCs arrive in reverse topological order: callees before callers.
    for comp in cg.sccs() {
        let recursive = comp.len() > 1 || comp.iter().any(|&v| cg.callees[v].contains(&v));
        for &v in &comp {
            mark[v] = if recursive {
                cfg.ccm_size
            } else {
                let mut hw = usage[v];
                for callee in m.functions[v].callees() {
                    hw = hw.max(match index.get(callee) {
                        Some(&c) => mark[c],
                        None => cfg.ccm_size, // unknown callee: assume the worst
                    });
                }
                hw
            };
        }
    }
    for (fi, f) in m.functions.iter().enumerate() {
        for site in &analyses[fi].call_sites {
            let callee_mark = match index.get(site.callee.as_str()) {
                Some(&c) => mark[c],
                None => cfg.ccm_size,
            };
            for &si in &site.live_slots {
                let slot = &f.frame.slots[si];
                if slot.in_ccm && slot.offset < callee_mark {
                    diags.push(Diagnostic::error(
                        "ccm-interproc",
                        &f.name,
                        format!(
                            "CCM slot {si} at offset {} is live across a call to `{}`, which \
                             may clobber the CCM below {callee_mark}",
                            slot.offset, site.callee
                        ),
                    ));
                }
            }
        }
    }
}
