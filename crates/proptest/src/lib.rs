//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace vendors the subset of proptest's API that its tests use:
//! the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], integer
//! range / tuple / `Just` / `any` strategies, `prop_map`,
//! `prop_recursive`, and `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * Generation is **deterministic**: every test function derives its
//!   case seeds from its own name, so runs are reproducible without any
//!   persistence files (`failure_persistence` is accepted and ignored).
//! * There is **no shrinking**. On failure the full generated input is
//!   printed instead; with the small input sizes used here that has
//!   proven sufficient for debugging.
//! * Only the strategy combinators listed above exist. Adding more is
//!   intentional API growth, not a porting exercise.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works like upstream.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by the tests: strategies, config,
/// errors, and the macros.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0..5u8, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strategy,)+);
            $crate::test_runner::run_cases(stringify!($name), &__config, |__rng, __desc| {
                let __vals = $crate::strategy::Strategy::new_value(&__strategy, __rng);
                *__desc = format!("{:?}", &__vals);
                let ($($arg,)+) = __vals;
                let __run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __run()
            });
        }
    )*};
}

/// Fails the enclosing property (by early-returning a
/// [`test_runner::TestCaseError`]) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialised to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` specialised to inequality, printing both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}
