//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Clone + fmt::Debug + 'static {
    /// Draws one value covering the full domain of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over the entire domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, well-distributed doubles; NaN/inf generation is not
        // useful for the numeric kernels under test.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e6 - 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn bool_produces_both_values() {
        let s = any::<bool>();
        let mut r = TestRng::new(3);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.new_value(&mut r) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn f64_is_finite() {
        let s = any::<f64>();
        let mut r = TestRng::new(4);
        for _ in 0..100 {
            assert!(s.new_value(&mut r).is_finite());
        }
    }
}
