//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer ranges, tuples, [`Just`], [`Union`] (behind `prop_oneof!`),
//! `prop_map`, `prop_recursive`, and [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// A generator of test values. Unlike upstream there is no value tree
/// and no shrinking: a strategy simply produces a value from the
/// deterministic [`TestRng`].
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value: Clone + fmt::Debug + 'static;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy so heterogeneous alternatives can live
    /// in one collection (and so recursion can tie the knot).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy::new(self)
    }

    /// Maps generated values through `func`.
    fn prop_map<T, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> T + 'static,
    {
        Map { source: self, func }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into the compound cases.
    ///
    /// `depth` bounds the nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for upstream compatibility
    /// but unused — instead each level is biased 2:1 toward leaves,
    /// which keeps generated trees small.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new_weighted(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        strat
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Clone + fmt::Debug + 'static> BoxedStrategy<T> {
    fn new<S: Strategy<Value = T>>(inner: S) -> Self {
        BoxedStrategy {
            generate: Rc::new(move |rng| inner.new_value(rng)),
        }
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + fmt::Debug + 'static,
    F: Fn(S::Value) -> T + 'static,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.func)(self.source.new_value(rng))
    }
}

/// Weighted choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + fmt::Debug + 'static> Union<T> {
    /// Builds a union from `(weight, strategy)` arms. Weights must not
    /// all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed to total")
    }
}

/// `any::<T>()` support: uniform draws over a type's whole domain.
pub struct Any<A>(pub(crate) PhantomData<A>);

impl<A: crate::arbitrary::Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (-8i64..8).new_value(&mut r);
            assert!((-8..8).contains(&v));
            let u = (3usize..4).new_value(&mut r);
            assert_eq!(u, 3);
            let w = (0..=255u8).new_value(&mut r);
            let _ = w; // full domain, nothing to assert beyond type
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0usize..4, 10i64..20).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..50 {
            let v = s.new_value(&mut r);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn union_honours_weights() {
        let mut r = rng();
        let s = Union::new_weighted(vec![(1, Just(0u8).boxed()), (3, Just(1u8).boxed())]);
        let ones: usize = (0..400).map(|_| s.new_value(&mut r) as usize).sum();
        assert!(ones > 200, "weighted arm should dominate, got {ones}/400");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.new_value(&mut r)) <= 3);
        }
    }
}
