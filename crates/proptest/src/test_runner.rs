//! Deterministic case runner: a splitmix64 PRNG seeded from the test
//! name, a config struct, and the failure type `prop_assert!` returns.

use std::fmt;

/// Deterministic pseudo-random source handed to strategies.
///
/// splitmix64: full-period, passes the statistical tests that matter at
/// this scale, and needs no external crates.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`). The modulo bias is
    /// negligible for the small ranges test strategies draw from.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input was rejected (not counted as a failure upstream; here
    /// it is treated like a failure so rejection loops cannot hide).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected input with the given explanation.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Accepted-and-ignored stand-in for upstream's persistence selector.
#[derive(Clone, Copy, Debug, Default)]
pub struct FailurePersistence;

/// Runner configuration. Only `cases` has an effect; the other fields
/// exist so upstream-style struct literals keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Ignored (determinism makes persistence files unnecessary).
    pub failure_persistence: Option<FailurePersistence>,
    /// Ignored (this runner does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            failure_persistence: None,
            max_shrink_iters: 0,
        }
    }
}

/// FNV-1a over the test name, so each property gets its own stable
/// seed sequence.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const DESC_LIMIT: usize = 4096;

/// Runs `config.cases` deterministic cases of one property. The closure
/// writes a debug rendering of the generated input into its second
/// argument before exercising the property, so both assertion failures
/// and panics can report the offending input.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    for i in 0..config.cases {
        let mut rng =
            TestRng::new(base.wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F)));
        let mut desc = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        if desc.len() > DESC_LIMIT {
            desc.truncate(DESC_LIMIT);
            desc.push_str("… (truncated)");
        }
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "property `{name}` failed at case {i}/{}:\n{e}\ninput: {desc}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "property `{name}` panicked at case {i}/{}\ninput: {desc}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::new(7);
        for n in 1..100u64 {
            for _ in 0..8 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn run_cases_runs_the_requested_count() {
        let mut n = 0;
        let config = ProptestConfig {
            cases: 17,
            ..ProptestConfig::default()
        };
        run_cases("count", &config, |_, _| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_reports_failures() {
        run_cases("fails", &ProptestConfig::default(), |_, d| {
            d.push_str("input");
            Err(TestCaseError::fail("boom"))
        });
    }
}
