//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for a generated collection, half-open.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy producing a `Vec` of values drawn from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0u8..10, 2..5);
        let mut r = TestRng::new(9);
        for _ in 0..100 {
            let v = s.new_value(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let s = vec(0u8..10, 3);
        let mut r = TestRng::new(1);
        assert_eq!(s.new_value(&mut r).len(), 3);
    }
}
