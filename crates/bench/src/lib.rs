#![warn(missing_docs)]
//! Benchmark support: shared helpers for the Criterion benches that
//! regenerate the paper's tables and figures (see `benches/`).

use harness::{measure, Measurement, Variant};
use sim::MachineConfig;

/// Representative spill-heavy kernels used by the reduced per-iteration
/// benchmark bodies (the full experiments live in the `repro` binary).
pub const BENCH_KERNELS: [&str; 6] = ["fpppp", "radf5", "deseco", "vslv1xX", "urand", "zeroin"];

/// Runs one variant over the benchmark kernel subset and returns total
/// cycles (consumed so the optimizer cannot elide the work).
pub fn run_subset(variant: Variant, ccm_size: u32) -> u64 {
    let machine = MachineConfig::with_ccm(ccm_size);
    let mut total = 0;
    for name in BENCH_KERNELS {
        let k = suite::kernel(name).expect("kernel exists");
        let m = suite::build_optimized(&k);
        let r: Measurement =
            measure(m, variant, &machine).unwrap_or_else(|e| panic!("bench subset: {e}"));
        total += r.cycles;
    }
    total
}
