//! Criterion benches regenerating the paper's tables.
//!
//! Each bench body runs the same pipeline as the corresponding `repro`
//! experiment over a representative kernel subset (the full-suite runs
//! live in the `repro` binary; these measure the machinery's cost and
//! double as regression guards: every iteration re-validates checksums
//! via the shared `measure` path).

use bench::{run_subset, BENCH_KERNELS};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::Variant;
use std::hint::black_box;

/// Table 1: allocate + compact the subset, measuring the compaction path.
fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("table1_compaction", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for name in BENCH_KERNELS {
                let k = suite::kernel(name).expect("kernel");
                let mut m = suite::build_optimized(&k);
                regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default());
                ccm::compact_module(&mut m);
                total += m
                    .functions
                    .iter()
                    .map(|f| f.frame.spill_bytes())
                    .sum::<u32>();
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Table 2: the four variants at 512 bytes.
fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_512B");
    g.sample_size(10);
    for v in Variant::ALL {
        g.bench_function(v.label(), |b| b.iter(|| black_box(run_subset(v, 512))));
    }
    g.finish();
}

/// Table 3: the 1024-byte configuration (compared against 512 offline).
fn table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_1024B");
    g.sample_size(10);
    for v in [Variant::PostPassCallGraph, Variant::Integrated] {
        g.bench_function(v.label(), |b| b.iter(|| black_box(run_subset(v, 1024))));
    }
    g.finish();
}

/// Table 4: the weighted-average computation over fresh measurements.
fn table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_weighted_average");
    g.sample_size(10);
    g.bench_function("subset_rows_and_averages", |b| {
        b.iter(|| {
            let machine = sim::MachineConfig::with_ccm(512);
            let mut rows = Vec::new();
            for name in BENCH_KERNELS {
                let k = suite::kernel(name).expect("kernel");
                let m = suite::build_optimized(&k);
                let must = |r: Result<harness::Measurement, harness::PipelineError>| {
                    r.unwrap_or_else(|e| panic!("bench table4: {e}"))
                };
                let baseline = must(harness::measure(m.clone(), Variant::Baseline, &machine));
                let postpass = must(harness::measure(m.clone(), Variant::PostPass, &machine));
                let postpass_cg = must(harness::measure(
                    m.clone(),
                    Variant::PostPassCallGraph,
                    &machine,
                ));
                let integrated = must(harness::measure(m, Variant::Integrated, &machine));
                rows.push(harness::SpeedupRow {
                    name: name.to_string(),
                    baseline,
                    postpass,
                    postpass_cg,
                    integrated,
                });
            }
            black_box(harness::table4_from(&rows))
        })
    });
    g.finish();
}

criterion_group!(tables, table1, table2, table3, table4);
criterion_main!(tables);
