//! Criterion benches for the individual compiler phases — the ablation
//! over *where time goes* in the pipeline: SSA construction, GVN,
//! liveness, interference-graph construction, whole-function allocation,
//! post-pass promotion, and raw simulation speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A mid-size spill-heavy function (the radf5 butterfly routine).
fn subject() -> iloc::Module {
    let k = suite::kernel("radf5").expect("kernel");
    (k.build)()
}

fn phase_ssa(c: &mut Criterion) {
    let m = subject();
    c.bench_function("phase_ssa_construction", |b| {
        b.iter(|| {
            let mut f = m.function("pass").expect("routine").clone();
            black_box(analysis::to_ssa(&mut f))
        })
    });
}

fn phase_gvn(c: &mut Criterion) {
    let mut m = subject();
    let f0 = {
        let f = m.function_mut("pass").expect("routine");
        analysis::to_ssa(f);
        f.clone()
    };
    c.bench_function("phase_gvn", |b| {
        b.iter(|| {
            let mut f = f0.clone();
            black_box(opt::gvn(&mut f))
        })
    });
}

fn phase_liveness(c: &mut Criterion) {
    let m = suite::build_optimized(&suite::kernel("radf5").expect("kernel"));
    let f = m.function("pass").expect("routine").clone();
    c.bench_function("phase_liveness", |b| {
        b.iter(|| black_box(analysis::Liveness::compute(&f).live_in.len()))
    });
}

fn phase_interference(c: &mut Criterion) {
    let m = suite::build_optimized(&suite::kernel("radf5").expect("kernel"));
    let f = m.function("pass").expect("routine").clone();
    c.bench_function("phase_interference_graph", |b| {
        b.iter(|| {
            let idx = regalloc::EntityIndex::build(&f, iloc::RegClass::Fpr);
            black_box(regalloc::InterferenceGraph::build(&f, idx).len())
        })
    });
}

fn phase_allocation(c: &mut Criterion) {
    let m = suite::build_optimized(&suite::kernel("radf5").expect("kernel"));
    let mut g = c.benchmark_group("phase_allocation");
    g.sample_size(20);
    g.bench_function("chaitin_briggs_full", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            black_box(regalloc::allocate_module(
                &mut m2,
                &regalloc::AllocConfig::default(),
            ))
        })
    });
    g.bench_function("integrated_ccm_full", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            black_box(ccm::allocate_module_integrated(
                &mut m2,
                &regalloc::AllocConfig::default(),
                512,
            ))
        })
    });
    g.finish();
}

fn phase_postpass(c: &mut Criterion) {
    let mut m = suite::build_optimized(&suite::kernel("radf5").expect("kernel"));
    regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default());
    c.bench_function("phase_postpass_promotion", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            black_box(ccm::postpass_promote(
                &mut m2,
                &ccm::PostpassConfig {
                    ccm_size: 512,
                    interprocedural: true,
                },
            ))
        })
    });
}

fn phase_simulation(c: &mut Criterion) {
    let mut m = suite::build_optimized(&suite::kernel("radf5").expect("kernel"));
    regalloc::allocate_module(&mut m, &regalloc::AllocConfig::default());
    let mut g = c.benchmark_group("phase_simulation");
    g.sample_size(20);
    g.bench_function("interpret_radf5", |b| {
        b.iter(|| {
            let (_, metrics) =
                sim::run_module(&m, sim::MachineConfig::with_ccm(512), "main").expect("runs");
            black_box(metrics.cycles)
        })
    });
    g.finish();
}

criterion_group!(
    phases,
    phase_ssa,
    phase_gvn,
    phase_liveness,
    phase_interference,
    phase_allocation,
    phase_postpass,
    phase_simulation
);
criterion_main!(phases);
