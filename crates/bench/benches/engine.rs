//! Criterion benches for the two execution engines: the AST reference
//! interpreter versus the pre-decoded flat-PC engine, on the same
//! allocated modules. Each iteration is one full simulation run on a
//! reused `Machine`, so the decoded engine's one-time lowering is
//! amortized the way a fuzz campaign or sweep amortizes it. A third
//! group measures the decode step itself, to keep its cost honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sim::{DecodedModule, Engine, Machine, MachineConfig};

/// Builds and allocates one benchmark kernel at the paper's headline
/// configuration (post-pass + call graph, 512-byte CCM).
fn allocated(name: &str) -> iloc::Module {
    let k = suite::kernel(name).expect("kernel exists");
    let mut m = suite::build_optimized(&k);
    harness::allocate_variant(&mut m, harness::Variant::PostPassCallGraph, 512);
    m
}

fn machine_for(m: &iloc::Module, engine: Engine) -> Machine<'_> {
    let cfg = MachineConfig {
        engine,
        ..MachineConfig::with_ccm(512)
    };
    Machine::new(m, cfg)
}

fn engine_throughput(c: &mut Criterion) {
    for name in bench::BENCH_KERNELS {
        let m = allocated(name);
        let group_name = format!("engine/{name}");
        let mut g = c.benchmark_group(&group_name);
        for engine in [Engine::Ast, Engine::Decoded] {
            let mut machine = machine_for(&m, engine);
            g.bench_function(engine.name(), |b| {
                b.iter(|| {
                    let v = machine.run("main").expect("kernel runs");
                    black_box(v)
                })
            });
        }
        g.finish();
    }
}

fn decode_cost(c: &mut Criterion) {
    let m = allocated("fpppp");
    let machine = machine_for(&m, Engine::Decoded);
    c.bench_function("engine/decode_fpppp", |b| {
        b.iter(|| black_box(DecodedModule::decode(&m, machine.globals_map()).len()))
    });
}

criterion_group!(benches, engine_throughput, decode_cost);
criterion_main!(benches);
