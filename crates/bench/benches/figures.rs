//! Criterion benches regenerating the whole-program figures (3 and 4)
//! and the §4.3 memory-hierarchy ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::{measure, Variant};
use sim::{CacheConfig, MachineConfig};
use std::hint::black_box;

const BENCH_PROGRAMS: [&str; 3] = ["turb3d", "fftpackX", "hash"];

/// Figures 3/4: whole-program relative times at one CCM size.
fn figure(c: &mut Criterion, ccm_size: u32, label: &str) {
    let mut g = c.benchmark_group(label);
    g.sample_size(10);
    // Programs are expensive to link; build once outside the timed body.
    let programs: Vec<(String, iloc::Module)> = BENCH_PROGRAMS
        .iter()
        .map(|n| {
            let p = suite::program(n).expect("program");
            (n.to_string(), suite::build_program(&p))
        })
        .collect();
    let machine = MachineConfig::with_ccm(ccm_size);
    g.bench_function("three_programs_three_methods", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (_, m) in &programs {
                let base = measure(m.clone(), Variant::Baseline, &machine)
                    .unwrap_or_else(|e| panic!("bench figure: {e}"));
                for v in [
                    Variant::PostPass,
                    Variant::PostPassCallGraph,
                    Variant::Integrated,
                ] {
                    let r = measure(m.clone(), v, &machine)
                        .unwrap_or_else(|e| panic!("bench figure: {e}"));
                    acc += r.cycles as f64 / base.cycles as f64;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn figure3(c: &mut Criterion) {
    figure(c, 512, "figure3_512B");
}

fn figure4(c: &mut Criterion) {
    figure(c, 1024, "figure4_1024B");
}

/// §4.3 ablation: spill traffic through a modeled cache vs. the CCM.
fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cache_models");
    g.sample_size(10);
    let k = suite::kernel("twldrv").expect("kernel");
    let m = suite::build_optimized(&k);
    for (name, cache) in [
        ("direct_mapped_8k", CacheConfig::small_direct_mapped()),
        (
            "two_way_32k",
            CacheConfig {
                size: 32 * 1024,
                assoc: 2,
                ..CacheConfig::small_direct_mapped()
            },
        ),
    ] {
        let machine = MachineConfig {
            cache: Some(cache),
            ..MachineConfig::with_ccm(512)
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let base = measure(m.clone(), Variant::Baseline, &machine)
                    .unwrap_or_else(|e| panic!("bench ablation: {e}"));
                let ccm = measure(m.clone(), Variant::PostPassCallGraph, &machine)
                    .unwrap_or_else(|e| panic!("bench ablation: {e}"));
                black_box(base.cycles as f64 / ccm.cycles as f64)
            })
        });
    }
    g.finish();
}

criterion_group!(figures, figure3, figure4, ablation);
criterion_main!(figures);
