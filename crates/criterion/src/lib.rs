//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `bench_function` / `finish`), [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each bench body is warmed up
//! once, then timed over `sample_size` samples; the mean, minimum, and
//! maximum per-iteration times are printed. There is no outlier
//! rejection, HTML report, or baseline comparison — the goal is that
//! `cargo bench` builds, runs, and prints usable numbers offline.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (settable per group).
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Passed to bench bodies; [`Bencher::iter`] times the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `body` over the configured number of samples. The return
    /// value is passed to `std::hint::black_box` so the computation is
    /// not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up pass (fills caches, faults in pages).
        std::hint::black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        samples.len()
    );
}

/// The benchmark driver. One instance is threaded through every
/// registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        body(&mut b);
        report(id, &b.samples);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.unwrap_or(self.criterion.sample_size));
        body(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Ends the group (printing nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group: a function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warm-up + DEFAULT_SAMPLE_SIZE timed iterations
        assert_eq!(runs, DEFAULT_SAMPLE_SIZE + 1);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4);
    }
}
