#![warn(missing_docs)]
//! Compiler-controlled memory (CCM) allocation — the core contribution of
//! *Compiler-Controlled Memory* (Cooper & Harvey, ASPLOS 1998).
//!
//! Register spills are the one class of memory traffic the compiler fully
//! understands, because it created them. This crate relocates that
//! traffic into a small on-chip scratchpad in a disjoint address space:
//!
//! * [`SlotAnalysis`] — liveness and interference over spill *locations*
//!   (§3.1's reformulation of dataflow analysis on memory slots);
//! * [`compact_spill_memory`] — coloring-based spill-memory compaction
//!   (§4.1, Table 1);
//! * [`postpass_promote`] — the post-pass CCM allocator, intraprocedural
//!   and interprocedural (Figure 1);
//! * [`CcmPlacer`] / [`allocate_module_integrated`] — CCM spilling
//!   integrated into the Chaitin-Briggs allocator (§3.2, Figure 2).
//!
//! # Quickstart
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use regalloc::AllocConfig;
//!
//! // A function with more simultaneously-live values than registers.
//! let mut fb = FuncBuilder::new("main");
//! fb.set_ret_classes(&[iloc::RegClass::Gpr]);
//! let vals: Vec<_> = (0..12).map(|i| fb.loadi(i)).collect();
//! let mut acc = vals[11];
//! for v in vals[..11].iter().rev() {
//!     acc = fb.add(acc, *v);
//! }
//! fb.ret(&[acc]);
//! let mut m = iloc::Module::new();
//! m.push_function(fb.finish());
//!
//! // Allocate with 4 registers, then promote the spills into a 512-byte
//! // CCM with the post-pass allocator.
//! regalloc::allocate_module(&mut m, &AllocConfig::tiny(4));
//! let stats = ccm::postpass_promote(
//!     &mut m,
//!     &ccm::PostpassConfig { ccm_size: 512, interprocedural: true },
//! );
//! assert!(stats[0].promoted > 0);
//! ```

pub mod compact;
pub mod integrated;
pub mod postpass;
pub mod slots;

/// One function's graceful fallback from CCM allocation to plain
/// heavyweight spilling (the paper's own §3.1 escape hatch: anything
/// that cannot live in the CCM spills to main memory). A degradation is
/// an *event*, not an error — the function's code is correct, merely
/// slower — so callers record it in their measurements instead of
/// aborting.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Degradation {
    /// The function that fell back to heavyweight spills.
    pub function: String,
    /// Why CCM allocation was abandoned for it.
    pub reason: String,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fn `{}` degraded to heavyweight spills: {}",
            self.function, self.reason
        )
    }
}

pub use compact::{compact_module, compact_spill_memory, CompactStats};
pub use integrated::{
    allocate_function_integrated, allocate_module_integrated, CcmPlacer, IntegratedStats,
};
pub use postpass::{postpass_promote, FnPromotion, PostpassConfig};
pub use slots::{CallSite, SlotAnalysis};
