//! CCM allocation during spill-code insertion (§3.2, Figure 2).
//!
//! The integrated scheme makes CCM locations visible *inside* the
//! Chaitin-Briggs allocator: CCM offsets appear as entities in the
//! interference graph (the `regalloc` crate builds those edges), the
//! coloring phase ignores them, and spill-code insertion consults them —
//! a value `v` may be spilled to CCM position `m` unless
//!
//! * an edge `(v, m)` is in the interference graph (a previous round's
//!   occupant of `m` is live where `v` is), or
//! * a value `p` with an edge `(v, p)` — or copy-related to `v` with
//!   overlapping live ranges, which the copy exemption hides from the
//!   edge set — was already spilled to `m` in the current round (the
//!   paper's footnote-5 side structure).
//!
//! Values live across calls keep the conservative intraprocedural
//! convention and go to main memory, so CCM contents can never be
//! clobbered by a callee. Offsets used by the *other* register class are
//! never shared (the per-class interference graphs cannot see each other).

use crate::Degradation;
use iloc::{Function, Module, Reg, SpillSlot};
use regalloc::{
    allocate_function_with, AllocConfig, AllocStats, Entity, InterferenceGraph, Placement,
    SpillPlacer,
};

/// Statistics from integrated allocation of one function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegratedStats {
    /// Spilled live ranges redirected into the CCM.
    pub ccm_spills: usize,
    /// Spilled live ranges sent to main memory (heavyweight).
    pub heavyweight_spills: usize,
    /// Highest CCM byte used, across the whole run.
    pub high_water: u32,
}

/// A [`SpillPlacer`] that tries the CCM first, per the paper's integrated
/// algorithm.
#[derive(Debug)]
pub struct CcmPlacer {
    ccm_size: u32,
    /// (value, offset, size) placed in the current spill round.
    round: Vec<(Reg, u32, u32)>,
    /// Byte intervals ever handed out, per class — used to forbid
    /// cross-class sharing.
    intervals: [Vec<(u32, u32)>; 2],
    /// Accumulated statistics.
    pub stats: IntegratedStats,
}

impl CcmPlacer {
    /// Creates a placer for a CCM of `ccm_size` bytes.
    pub fn new(ccm_size: u32) -> CcmPlacer {
        CcmPlacer {
            ccm_size,
            round: Vec::new(),
            intervals: [Vec::new(), Vec::new()],
            stats: IntegratedStats::default(),
        }
    }
}

fn overlaps(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

fn align_up(x: u32, align: u32) -> u32 {
    (x + align - 1) & !(align - 1)
}

impl SpillPlacer for CcmPlacer {
    fn place(
        &mut self,
        f: &mut Function,
        v: Reg,
        v_id: usize,
        graph: &InterferenceGraph,
    ) -> Placement {
        // Conservative interprocedural convention: call-crossing values
        // stay in main memory.
        if graph.crosses_call(v_id) {
            self.stats.heavyweight_spills += 1;
            return Placement::Frame(f.frame.new_slot(v.class()));
        }
        let class = v.class();
        let size = class.value_size();

        // Forbidden byte intervals for v:
        let mut forbidden: Vec<(u32, u32)> = Vec::new();
        // 1. CCM locations v interferes with (previous rounds' spills,
        //    visible as Ccm entities in the graph).
        for off in graph.ccm_neighbors(v_id) {
            forbidden.push((off, size.max(graph.entities.class().value_size())));
        }
        // 2. Same-round placements of values conflicting with v. Note
        //    `slot_conflict`, not `interferes`: copy-related values can
        //    share a register but not a spill slot.
        for (p, off, psize) in &self.round {
            let p_id = graph.entities.get(Entity::Reg(*p));
            let conflict = match p_id {
                Some(pid) => graph.slot_conflict(v_id, pid),
                None => true, // unknown: be safe
            };
            if conflict {
                forbidden.push((*off, *psize));
            }
        }
        // 3. Anything the other register class ever used.
        let other = 1 - class.index();
        forbidden.extend(self.intervals[other].iter().copied());

        // Successive-location search from the bottom of the CCM.
        let mut off = 0u32;
        let placed = loop {
            if off + size > self.ccm_size {
                break None;
            }
            if forbidden.iter().any(|&iv| overlaps((off, size), iv)) {
                off = align_up(off + 1, size);
                continue;
            }
            break Some(off);
        };

        match placed {
            Some(off) => {
                self.round.push((v, off, size));
                self.intervals[class.index()].push((off, size));
                self.stats.ccm_spills += 1;
                self.stats.high_water = self.stats.high_water.max(off + size);
                let slot = f.frame.push_slot(SpillSlot {
                    offset: off,
                    class,
                    in_ccm: true,
                });
                Placement::Ccm(slot)
            }
            None => {
                self.stats.heavyweight_spills += 1;
                Placement::Frame(f.frame.new_slot(class))
            }
        }
    }

    fn end_round(&mut self) {
        self.round.clear();
    }
}

/// Runs the integrated allocator on one function: Chaitin-Briggs with CCM
/// spilling built into spill-code insertion. Returns the allocator stats,
/// the placer's CCM stats, and — when CCM placement had to be abandoned
/// for this function — a [`Degradation`] event describing the fallback.
///
/// Degradation reruns the allocation with a zero-sized CCM, so every
/// spill becomes a conventional heavyweight spill for this function only;
/// the rest of the module is unaffected.
pub fn allocate_function_integrated(
    f: &mut Function,
    cfg: &AllocConfig,
    ccm_size: u32,
) -> (AllocStats, IntegratedStats, Option<Degradation>) {
    if inject::faultpoint!("alloc.ccm_coloring") {
        // The fault fires before any mutation, so a clean zero-CCM rerun
        // models "coloring failed, fall back to heavyweight spills".
        let mut placer = CcmPlacer::new(0);
        let stats = allocate_function_with(f, cfg, &mut placer);
        let d = Degradation {
            function: f.name.clone(),
            reason: "injected CCM coloring failure".to_string(),
        };
        return (stats, placer.stats, Some(d));
    }
    let mut placer = CcmPlacer::new(ccm_size);
    let stats = allocate_function_with(f, cfg, &mut placer);
    (stats, placer.stats, None)
}

/// Runs the integrated allocator over every function. Each function gets
/// a fresh placer; the intraprocedural convention (no call-crossing values
/// in CCM) makes cross-function offset reuse safe. The returned vector
/// lists every function that degraded to heavyweight spilling.
pub fn allocate_module_integrated(
    m: &mut Module,
    cfg: &AllocConfig,
    ccm_size: u32,
) -> (AllocStats, IntegratedStats, Vec<Degradation>) {
    if inject::faultpoint!("alloc.panic") {
        panic!("injected allocator panic (integrated)");
    }
    let mut alloc_total = AllocStats::default();
    let mut ccm_total = IntegratedStats::default();
    let mut degradations = Vec::new();
    for f in &mut m.functions {
        let (a, c, d) = allocate_function_integrated(f, cfg, ccm_size);
        for i in 0..2 {
            alloc_total.spilled[i] += a.spilled[i];
            alloc_total.coalesced[i] += a.coalesced[i];
            alloc_total.rounds[i] += a.rounds[i];
        }
        ccm_total.ccm_spills += c.ccm_spills;
        ccm_total.heavyweight_spills += c.heavyweight_spills;
        ccm_total.high_water = ccm_total.high_water.max(c.high_water);
        degradations.extend(d);
    }
    (alloc_total, ccm_total, degradations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Module, RegClass, SpillKind};

    fn wide_module(width: usize) -> Module {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..width).map(|i| fb.loadi(i as i64)).collect();
        let mut acc = vals[width - 1];
        for v in vals[..width - 1].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn integrated_spills_go_to_ccm() {
        let mut m = wide_module(14);
        let (alloc, ccm, _) = allocate_module_integrated(&mut m, &AllocConfig::tiny(4), 512);
        assert!(alloc.total_spilled() > 0);
        assert_eq!(ccm.ccm_spills, alloc.total_spilled());
        assert_eq!(ccm.heavyweight_spills, 0);
        m.verify().unwrap();
        // All spill instructions are CCM ops.
        for b in &m.functions[0].blocks {
            for i in &b.instrs {
                if i.spill != SpillKind::None {
                    assert!(i.op.is_ccm_op());
                }
            }
        }
        let (v, metrics) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![(0..14).sum::<i64>()]);
        assert!(metrics.ccm_ops > 0);
        assert_eq!(metrics.main_mem_ops, 0);
    }

    #[test]
    fn integrated_beats_baseline_cycles() {
        let mut base = wide_module(16);
        let mut ccm_m = base.clone();
        regalloc::allocate_module(&mut base, &AllocConfig::tiny(4));
        allocate_module_integrated(&mut ccm_m, &AllocConfig::tiny(4), 512);
        let (v0, m0) = sim::run_module(&base, sim::MachineConfig::default(), "main").unwrap();
        let (v1, m1) = sim::run_module(&ccm_m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1);
        assert!(m1.cycles < m0.cycles, "integrated CCM must be faster");
    }

    #[test]
    fn zero_sized_ccm_degenerates_to_baseline() {
        let mut a = wide_module(14);
        let mut b = a.clone();
        regalloc::allocate_module(&mut a, &AllocConfig::tiny(4));
        let (_, ccm, _) = allocate_module_integrated(&mut b, &AllocConfig::tiny(4), 0);
        assert_eq!(ccm.ccm_spills, 0);
        assert!(ccm.heavyweight_spills > 0);
        let (va, ma) = sim::run_module(&a, sim::MachineConfig::default(), "main").unwrap();
        let (vb, mb) = sim::run_module(&b, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(va, vb);
        assert_eq!(ma.cycles, mb.cycles);
    }

    #[test]
    fn call_crossing_values_stay_heavyweight() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        // Values live across the call, forcing spills with k=3.
        let vals: Vec<_> = (0..8).map(|i| fb.loadi(i)).collect();
        let r = fb.call("leaf", &[], &[RegClass::Gpr]);
        let mut acc = r[0];
        for v in &vals {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);

        let mut leaf = FuncBuilder::new("leaf");
        leaf.set_ret_classes(&[RegClass::Gpr]);
        let x = leaf.loadi(1000);
        leaf.ret(&[x]);

        let mut m = Module::new();
        m.push_function(fb.finish());
        m.push_function(leaf.finish());
        let (_, ccm, _) = allocate_module_integrated(&mut m, &AllocConfig::tiny(3), 512);
        assert!(
            ccm.heavyweight_spills > 0,
            "call-crossing spills must go to main memory"
        );
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![1000 + (0..8).sum::<i64>()]);
    }

    #[test]
    fn tiny_ccm_mixes_ccm_and_heavyweight() {
        let mut m = wide_module(40);
        let (_, ccm, _) = allocate_module_integrated(&mut m, &AllocConfig::tiny(3), 8);
        assert!(ccm.ccm_spills > 0);
        assert!(ccm.heavyweight_spills > 0);
        assert!(ccm.high_water <= 8);
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![(0..40).sum::<i64>()]);
    }

    #[test]
    fn classes_never_share_ccm_bytes() {
        // Force both integer and float spills into a small CCM.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let ints: Vec<_> = (0..10).map(|i| fb.loadi(i)).collect();
        let floats: Vec<_> = (0..10).map(|i| fb.loadf(i as f64)).collect();
        let mut iacc = ints[9];
        for v in ints[..9].iter().rev() {
            iacc = fb.add(iacc, *v);
        }
        let mut facc = floats[9];
        for v in floats[..9].iter().rev() {
            facc = fb.fadd(facc, *v);
        }
        let conv = fb.i2f(iacc);
        let out = fb.fadd(conv, facc);
        fb.ret(&[out]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        allocate_module_integrated(&mut m, &AllocConfig::tiny(4), 64);
        // Collect CCM intervals per class from the frame and check
        // pairwise disjointness across classes.
        let f = &m.functions[0];
        let mut by_class: [Vec<(u32, u32)>; 2] = [Vec::new(), Vec::new()];
        for s in &f.frame.slots {
            if s.in_ccm {
                by_class[s.class.index()].push((s.offset, s.size()));
            }
        }
        for a in &by_class[0] {
            for b in &by_class[1] {
                assert!(!overlaps(*a, *b), "cross-class CCM overlap: {a:?} vs {b:?}");
            }
        }
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.floats, vec![45.0 + 45.0]);
    }
}
