//! The post-pass CCM allocator (§3.1, Figure 1).
//!
//! Runs after conventional register allocation, over *allocated* code. It
//! discovers a subset of the spilled values that can safely and profitably
//! be relocated to the CCM and redirects their spill instructions there;
//! anything that does not fit stays in main memory as a heavyweight
//! spill. The allocator never generates new spills.
//!
//! Two interprocedural conventions, both from the paper:
//!
//! * **intraprocedural** — only slots not live across *any* call are
//!   promoted, so a routine's CCM contents can never be clobbered by a
//!   callee;
//! * **interprocedural** — a bottom-up walk of the call graph records each
//!   routine's CCM high-water mark; a caller may place a slot that is live
//!   across a call to `q` only above `q`'s mark. Routines on call-graph
//!   cycles are conservatively marked as using the entire CCM.

use std::collections::HashMap;

use analysis::CallGraph;
use iloc::{Function, Module, Op, SlotId, SpillKind, SpillSlot};

use crate::slots::SlotAnalysis;

/// Configuration for the post-pass allocator.
#[derive(Clone, Copy, Debug)]
pub struct PostpassConfig {
    /// CCM capacity in bytes (512 or 1024 in the paper's evaluation).
    pub ccm_size: u32,
    /// Whether call-graph information may be used (the paper's "post-pass
    /// w/ call graph" column). Without it the conservative intraprocedural
    /// strategy applies.
    pub interprocedural: bool,
}

/// Per-function promotion results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnPromotion {
    /// Function name.
    pub name: String,
    /// Spill slots promoted into the CCM.
    pub promoted: usize,
    /// Spill slots left in main memory (heavyweight spills).
    pub heavyweight: usize,
    /// This routine's CCM high-water mark in bytes, *including* its
    /// callees' transitive usage.
    pub high_water: u32,
    /// When `Some`, CCM coloring was abandoned for this function and
    /// every slot stayed heavyweight; the string says why.
    pub degraded: Option<String>,
}

/// Runs the post-pass CCM allocator over the whole module. Code must
/// already be register-allocated (spill instructions tagged).
pub fn postpass_promote(m: &mut Module, cfg: &PostpassConfig) -> Vec<FnPromotion> {
    if inject::faultpoint!("alloc.panic") {
        panic!("injected allocator panic (postpass)");
    }
    let cg = CallGraph::build(m);
    let recursive: Vec<usize> = cg.recursive_functions();
    let mut high_water: Vec<u32> = vec![0; m.functions.len()];
    for &r in &recursive {
        // Conservative: a routine on a cycle is assumed to use all of CCM.
        high_water[r] = cfg.ccm_size;
    }
    let name_to_idx: HashMap<String, usize> = m
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();

    let order = if cfg.interprocedural {
        cg.bottom_up_order()
    } else {
        (0..m.functions.len()).collect()
    };

    let mut out: Vec<Option<FnPromotion>> = vec![None; m.functions.len()];
    for fi in order {
        let is_recursive = recursive.contains(&fi);
        let f = &mut m.functions[fi];
        let stats = promote_function(f, cfg, |callee| {
            if !cfg.interprocedural {
                // No call-graph info: any call-crossing slot is ineligible.
                return cfg.ccm_size;
            }
            name_to_idx
                .get(callee)
                .map(|&ci| high_water[ci])
                .unwrap_or(cfg.ccm_size)
        });
        // Transitive high-water: own usage plus everything callees use.
        let mut hw = stats.high_water;
        if cfg.interprocedural {
            for &ci in &cg.callees[fi] {
                hw = hw.max(high_water[ci]);
            }
        }
        if is_recursive {
            hw = cfg.ccm_size;
        }
        high_water[fi] = hw;
        out[fi] = Some(FnPromotion {
            high_water: hw,
            ..stats
        });
    }
    out.into_iter().map(|o| o.expect("all visited")).collect()
}

/// Promotes one function's slots. `callee_high_water` maps a callee name
/// to the lowest CCM offset a slot live across that call may use.
fn promote_function(
    f: &mut Function,
    cfg: &PostpassConfig,
    callee_high_water: impl Fn(&str) -> u32,
) -> FnPromotion {
    let analysis = SlotAnalysis::compute(f);

    // Per-slot base offset: the maximum high-water mark over the call
    // sites the slot is live across ("the 'beginning' of this search space
    // is the maximum of the CCM usage in the set of subroutines across
    // which the spilled value is live").
    let mut base = vec![0u32; analysis.n];
    for cs in &analysis.call_sites {
        let hw = callee_high_water(&cs.callee);
        for &s in &cs.live_slots {
            base[s] = base[s].max(hw);
        }
    }

    let colored = color_function_slots(f, cfg, &analysis, &base);
    let (placements, promoted, heavyweight, high_water) = match colored {
        Ok(c) => c,
        Err(reason) => {
            // Graceful degradation: abandon CCM allocation for this
            // function only. Nothing has been rewritten yet, so the
            // conventional heavyweight spills stay exactly as the
            // register allocator produced them — the paper's §3.1
            // fallback, applied wholesale.
            let heavyweight = (0..analysis.n)
                .filter(|&si| !f.frame.slot(SlotId(si as u32)).in_ccm && analysis.refs[si] > 0)
                .count();
            return FnPromotion {
                name: f.name.clone(),
                promoted: 0,
                heavyweight,
                high_water: 0,
                degraded: Some(reason),
            };
        }
    };

    // Rewrite the promoted slots and their spill instructions.
    for (si, p) in placements.iter().enumerate() {
        let Some((ccm_off, _)) = p else { continue };
        let slot = f.frame.slot_mut(SlotId(si as u32));
        *slot = SpillSlot {
            offset: *ccm_off,
            class: slot.class,
            in_ccm: true,
        };
    }
    for b in f.block_ids().collect::<Vec<_>>() {
        for i in 0..f.block(b).instrs.len() {
            let instr = &f.block(b).instrs[i];
            let slot_id = match instr.spill {
                SpillKind::Store(s) | SpillKind::Restore(s) => s,
                SpillKind::None => continue,
            };
            if placements[slot_id.index()].is_none() {
                continue;
            }
            let ccm_off = f.frame.slot(slot_id).offset;
            let new_op = match &f.block(b).instrs[i].op {
                Op::StoreAI { val, .. } => Op::CcmStore {
                    val: *val,
                    off: ccm_off,
                },
                Op::LoadAI { dst, .. } => Op::CcmLoad {
                    off: ccm_off,
                    dst: *dst,
                },
                Op::FStoreAI { val, .. } => Op::CcmFStore {
                    val: *val,
                    off: ccm_off,
                },
                Op::FLoadAI { dst, .. } => Op::CcmFLoad {
                    off: ccm_off,
                    dst: *dst,
                },
                other => other.clone(), // already CCM (repeat runs)
            };
            f.block_mut(b).instrs[i].op = new_op;
        }
    }

    FnPromotion {
        name: f.name.clone(),
        promoted,
        heavyweight,
        high_water,
        degraded: None,
    }
}

/// Colors one function's promotable slots into CCM offsets via the
/// paper's successive-location search. Returns per-slot placements plus
/// (promoted, heavyweight, high-water) counts, or a reason when coloring
/// must be abandoned for this function — an injected failure, or a
/// placement that breaches the CCM capacity invariant.
#[allow(clippy::type_complexity)]
fn color_function_slots(
    f: &Function,
    cfg: &PostpassConfig,
    analysis: &SlotAnalysis,
    base: &[u32],
) -> Result<(Vec<Option<(u32, u32)>>, usize, usize, u32), String> {
    if inject::faultpoint!("alloc.ccm_coloring") {
        return Err("injected CCM coloring failure".to_string());
    }
    let mut placements: Vec<Option<(u32, u32)>> = vec![None; analysis.n];
    let mut promoted = 0;
    let mut heavyweight = 0;
    let mut high_water = 0u32;

    for slot_id in analysis.by_descending_cost() {
        let si = slot_id.index();
        let slot = *f.frame.slot(slot_id);
        if slot.in_ccm || analysis.refs[si] == 0 {
            continue;
        }
        let size = slot.size();
        // Successive-location search from the slot's base.
        let mut off = align_up(base[si], size);
        let found = loop {
            if off + size > cfg.ccm_size {
                break None;
            }
            let candidate = (off, size);
            let clash = analysis.adj[si].iter().any(|&other| {
                placements[other]
                    .map(|p| overlaps(candidate, p))
                    .unwrap_or(false)
            });
            if !clash {
                break Some(off);
            }
            off = align_up(off + 1, size);
        };
        match found {
            Some(ccm_off) => {
                placements[si] = Some((ccm_off, size));
                promoted += 1;
                high_water = high_water.max(ccm_off + size);
            }
            None => heavyweight += 1,
        }
    }
    if high_water > cfg.ccm_size {
        return Err(format!(
            "coloring exceeded CCM capacity: high water {high_water} > {}",
            cfg.ccm_size
        ));
    }
    Ok((placements, promoted, heavyweight, high_water))
}

fn align_up(x: u32, align: u32) -> u32 {
    (x + align - 1) & !(align - 1)
}

fn overlaps(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;
    use regalloc::{allocate_module, AllocConfig};

    /// Builds a module whose single function spills under a tiny register
    /// budget, then allocates it.
    fn spilled_leaf_module(width: usize, k: u32) -> Module {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..width).map(|i| fb.loadi(i as i64)).collect();
        let mut acc = vals[width - 1];
        for v in vals[..width - 1].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        allocate_module(&mut m, &AllocConfig::tiny(k));
        m
    }

    #[test]
    fn leaf_spills_promote_fully_with_ample_ccm() {
        let mut m = spilled_leaf_module(12, 4);
        let slots_before = m.functions[0].frame.slots.len();
        assert!(slots_before > 0, "setup must spill");
        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 512,
                interprocedural: false,
            },
        );
        assert_eq!(stats[0].promoted, slots_before);
        assert_eq!(stats[0].heavyweight, 0);
        assert!(stats[0].high_water > 0);
        // All spill instructions became CCM ops.
        for b in &m.functions[0].blocks {
            for i in &b.instrs {
                if i.spill != SpillKind::None {
                    assert!(i.op.is_ccm_op(), "leftover main-memory spill: {:?}", i.op);
                }
            }
        }
        m.verify().unwrap();
    }

    #[test]
    fn promotion_preserves_results_and_saves_cycles() {
        let mut m = spilled_leaf_module(14, 4);
        let (v0, m0) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 512,
                interprocedural: false,
            },
        );
        let (v1, m1) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v0, v1, "promotion must not change results");
        assert!(m1.cycles < m0.cycles, "CCM spills must be cheaper");
        assert!(m1.ccm_ops > 0);
        assert_eq!(m1.instrs, m0.instrs, "post-pass adds no instructions");
    }

    #[test]
    fn tiny_ccm_leaves_heavyweight_spills() {
        let mut m = spilled_leaf_module(40, 3);
        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 8, // room for just two 4-byte slots
                interprocedural: false,
            },
        );
        assert!(stats[0].promoted >= 1);
        assert!(stats[0].heavyweight >= 1);
        assert!(stats[0].high_water <= 8);
        // Program still correct.
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        let expected: i64 = (0..40).sum();
        assert_eq!(v.ints, vec![expected]);
    }

    /// A module where `main` keeps a value live across a call to `leaf`,
    /// and both spill.
    fn caller_callee_module(k: u32) -> Module {
        let mut leaf = FuncBuilder::new("leaf");
        leaf.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..10).map(|i| leaf.loadi(i)).collect();
        let mut acc = vals[9];
        for v in vals[..9].iter().rev() {
            acc = leaf.add(acc, *v);
        }
        leaf.ret(&[acc]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..10).map(|i| main.loadi(100 + i)).collect();
        let r = main.call("leaf", &[], &[RegClass::Gpr]);
        let mut acc = r[0];
        for v in vals.iter() {
            acc = main.add(acc, *v);
        }
        main.ret(&[acc]);

        let mut m = Module::new();
        m.push_function(leaf.finish());
        m.push_function(main.finish());
        allocate_module(&mut m, &AllocConfig::tiny(k));
        m
    }

    #[test]
    fn intraprocedural_skips_call_crossing_slots() {
        let mut m = caller_callee_module(3);
        let sa = SlotAnalysis::compute(m.function("main").unwrap());
        let crossing = sa.crosses_call.iter().filter(|&&c| c).count();
        assert!(crossing > 0, "setup: some slot must cross the call");
        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 512,
                interprocedural: false,
            },
        );
        let main_stats = stats.iter().find(|s| s.name == "main").unwrap();
        assert!(
            main_stats.heavyweight >= crossing,
            "call-crossing slots must stay in main memory"
        );
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![(0..10).sum::<i64>() + (100..110).sum::<i64>()]);
    }

    #[test]
    fn interprocedural_places_crossing_slots_above_callee_mark() {
        let mut m = caller_callee_module(3);
        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 512,
                interprocedural: true,
            },
        );
        let leaf_stats = stats.iter().find(|s| s.name == "leaf").unwrap();
        let main_stats = stats.iter().find(|s| s.name == "main").unwrap();
        assert!(leaf_stats.promoted > 0);
        // Interprocedural promotes call-crossing slots too.
        assert_eq!(main_stats.heavyweight, 0);
        assert!(main_stats.high_water >= leaf_stats.high_water);
        // main's call-crossing CCM slots must sit above leaf's mark.
        let mainf = m.function("main").unwrap();
        let sa = SlotAnalysis::compute(mainf);
        for (i, slot) in mainf.frame.slots.iter().enumerate() {
            if slot.in_ccm && sa.crosses_call[i] {
                assert!(
                    slot.offset >= leaf_stats.high_water,
                    "crossing slot at {} below leaf mark {}",
                    slot.offset,
                    leaf_stats.high_water
                );
            }
        }
        // Behavior preserved.
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![(0..10).sum::<i64>() + (100..110).sum::<i64>()]);
    }

    #[test]
    fn recursive_functions_marked_full() {
        let mut f = FuncBuilder::new("rec");
        f.set_ret_classes(&[RegClass::Gpr]);
        let p = f.param(RegClass::Gpr);
        let one = f.loadi(1);
        let c = f.icmp(iloc::CmpKind::Le, p, one);
        let base = f.block("base");
        let recb = f.block("rec_case");
        f.cbr(c, base, recb);
        f.switch_to(base);
        let r = f.loadi(1);
        f.ret(&[r]);
        f.switch_to(recb);
        let nm1 = f.subi(p, 1);
        let sub = f.call("rec", &[nm1], &[RegClass::Gpr]);
        let out = f.mult(p, sub[0]);
        f.ret(&[out]);

        let mut main = FuncBuilder::new("main");
        main.set_ret_classes(&[RegClass::Gpr]);
        let five = main.loadi(5);
        let r = main.call("rec", &[five], &[RegClass::Gpr]);
        main.ret(&[r[0]]);

        let mut m = Module::new();
        m.push_function(f.finish());
        m.push_function(main.finish());
        allocate_module(&mut m, &AllocConfig::tiny(2));

        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 512,
                interprocedural: true,
            },
        );
        let rec_stats = stats.iter().find(|s| s.name == "rec").unwrap();
        assert_eq!(rec_stats.high_water, 512, "cycle members use all of CCM");
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        assert_eq!(v.ints, vec![120]);
    }

    #[test]
    fn ccm_slots_can_share_offsets_when_disjoint() {
        // With a nearly-full CCM, slots from disjoint program phases must
        // still promote by sharing offsets.
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        // Two independent wide computations, sequential.
        let mut total = fb.loadi(0);
        for round in 0..2 {
            let vals: Vec<_> = (0..8).map(|i| fb.loadi(round * 100 + i)).collect();
            let mut acc = vals[7];
            for v in vals[..7].iter().rev() {
                acc = fb.add(acc, *v);
            }
            total = fb.add(total, acc);
        }
        fb.ret(&[total]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        allocate_module(&mut m, &AllocConfig::tiny(3));
        let slots = m.functions[0].frame.slots.len();
        assert!(slots >= 2);
        let stats = postpass_promote(
            &mut m,
            &PostpassConfig {
                ccm_size: 8,
                interprocedural: false,
            },
        );
        assert!(
            stats[0].promoted >= 2,
            "disjoint slots must share CCM words: {stats:?}"
        );
        let (v, _) = sim::run_module(&m, sim::MachineConfig::default(), "main").unwrap();
        let expected: i64 = (0..8).sum::<i64>() + (100..108).sum::<i64>();
        assert_eq!(v.ints, vec![expected]);
    }
}
