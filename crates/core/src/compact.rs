//! Spill-memory compaction by coloring (§4.1, Table 1).
//!
//! "We also built a memory compaction routine that colors spill memory to
//! make non-interfering spilled values occupy the same memory location
//! when possible." Slots are assigned new frame offsets greedily — each
//! slot takes the lowest aligned offset not overlapping any
//! already-placed *interfering* slot — so disjoint lifetimes share bytes.

use iloc::{Function, Module, Op, SlotId, SpillKind};

use crate::slots::SlotAnalysis;

/// Result of compacting one function's spill memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Bytes of spill memory before compaction.
    pub before: u32,
    /// Bytes after compaction.
    pub after: u32,
}

impl CompactStats {
    /// The Table 1 ratio `after/before` (1.0 when nothing to compact).
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            1.0
        } else {
            self.after as f64 / self.before as f64
        }
    }
}

/// Compacts the main-memory spill slots of `f` (CCM-resident slots are
/// untouched). Returns before/after spill-memory sizes.
pub fn compact_spill_memory(f: &mut Function) -> CompactStats {
    let before = f.frame.spill_bytes();
    if f.frame.slots.is_empty() {
        return CompactStats {
            before,
            after: before,
        };
    }
    let analysis = SlotAnalysis::compute(f);

    // Place slots in descending-cost order: hot slots get the low offsets
    // (harmless for correctness; keeps placement deterministic).
    let base = f.frame.locals_size;
    let mut placed: Vec<Option<(u32, u32)>> = vec![None; analysis.n]; // (off, size)
    for slot_id in analysis.by_descending_cost() {
        let si = slot_id.index();
        let slot = *f.frame.slot(slot_id);
        if slot.in_ccm {
            continue;
        }
        let size = slot.size();
        // Lowest aligned offset whose byte range avoids every interfering
        // already-placed slot — the paper's "try successive locations"
        // search.
        let mut off = next_aligned(base, size);
        loop {
            let candidate = (off, size);
            let clash = analysis.adj[si].iter().any(|&other| {
                placed[other]
                    .map(|p| overlaps(candidate, p))
                    .unwrap_or(false)
            });
            if !clash {
                break;
            }
            off = next_aligned(off + 1, size);
        }
        placed[si] = Some((off, size));
    }

    // Rewrite slot offsets and the spill instructions that address them.
    for (si, p) in placed.iter().enumerate() {
        if let Some((off, _)) = p {
            f.frame.slot_mut(SlotId(si as u32)).offset = *off;
        }
    }
    for b in f.block_ids().collect::<Vec<_>>() {
        for i in 0..f.block(b).instrs.len() {
            let instr = &f.block(b).instrs[i];
            let slot = match instr.spill {
                SpillKind::Store(s) | SpillKind::Restore(s) => s,
                SpillKind::None => continue,
            };
            let new_off = f.frame.slot(slot).offset as i64;
            match &mut f.block_mut(b).instrs[i].op {
                Op::StoreAI { off, .. }
                | Op::LoadAI { off, .. }
                | Op::FStoreAI { off, .. }
                | Op::FLoadAI { off, .. } => *off = new_off,
                // CCM spill instructions are untouched by frame compaction.
                _ => {}
            }
        }
    }

    CompactStats {
        before,
        after: f.frame.spill_bytes(),
    }
}

/// Compacts every function; returns per-function stats alongside names.
pub fn compact_module(m: &mut Module) -> Vec<(String, CompactStats)> {
    m.functions
        .iter_mut()
        .map(|f| (f.name.clone(), compact_spill_memory(f)))
        .collect()
}

fn next_aligned(x: u32, align: u32) -> u32 {
    (x + align - 1) & !(align - 1)
}

fn overlaps(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Instr, Reg, RegClass};

    /// Two slots with disjoint lifetimes: store0/load0 then store1/load1.
    fn disjoint_slots() -> Function {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let v = fb.loadi(1);
        fb.ret(&[v]);
        let mut f = fb.finish();
        let s0 = f.frame.new_slot(RegClass::Fpr);
        let s1 = f.frame.new_slot(RegClass::Fpr);
        let e = f.entry();
        let x = f.new_vreg(RegClass::Fpr);
        let y = f.new_vreg(RegClass::Fpr);
        let t0 = f.new_vreg(RegClass::Fpr);
        let t1 = f.new_vreg(RegClass::Fpr);
        let o0 = f.frame.slot(s0).offset as i64;
        let o1 = f.frame.slot(s1).offset as i64;
        let seq = vec![
            Instr::new(Op::LoadF { imm: 1.0, dst: x }),
            Instr::spill_store(
                Op::FStoreAI {
                    val: x,
                    addr: Reg::RARP,
                    off: o0,
                },
                s0,
            ),
            Instr::spill_restore(
                Op::FLoadAI {
                    addr: Reg::RARP,
                    off: o0,
                    dst: t0,
                },
                s0,
            ),
            Instr::new(Op::LoadF { imm: 2.0, dst: y }),
            Instr::spill_store(
                Op::FStoreAI {
                    val: y,
                    addr: Reg::RARP,
                    off: o1,
                },
                s1,
            ),
            Instr::spill_restore(
                Op::FLoadAI {
                    addr: Reg::RARP,
                    off: o1,
                    dst: t1,
                },
                s1,
            ),
        ];
        for (i, instr) in seq.into_iter().enumerate() {
            f.block_mut(e).instrs.insert(1 + i, instr);
        }
        f
    }

    #[test]
    fn disjoint_slots_share_one_location() {
        let mut f = disjoint_slots();
        assert_eq!(f.frame.spill_bytes(), 16);
        let stats = compact_spill_memory(&mut f);
        assert_eq!(stats.before, 16);
        assert_eq!(stats.after, 8, "two disjoint 8-byte slots share one");
        assert!((stats.ratio() - 0.5).abs() < 1e-12);
        // Both slots now have the same offset, and the instructions agree.
        let o0 = f.frame.slots[0].offset;
        let o1 = f.frame.slots[1].offset;
        assert_eq!(o0, o1);
        for b in &f.blocks {
            for i in &b.instrs {
                if i.spill != SpillKind::None {
                    match i.op {
                        Op::FStoreAI { off, .. } | Op::FLoadAI { off, .. } => {
                            assert_eq!(off as u32, o0)
                        }
                        _ => panic!("unexpected spill op"),
                    }
                }
            }
        }
    }

    #[test]
    fn interfering_slots_stay_separate() {
        // store0, store1, load0, load1 — overlapping lifetimes.
        let mut fb = FuncBuilder::new("f");
        fb.ret(&[]);
        let mut f = fb.finish();
        let s0 = f.frame.new_slot(RegClass::Gpr);
        let s1 = f.frame.new_slot(RegClass::Gpr);
        let e = f.entry();
        let v = f.new_vreg(RegClass::Gpr);
        let t0 = f.new_vreg(RegClass::Gpr);
        let t1 = f.new_vreg(RegClass::Gpr);
        let o0 = f.frame.slot(s0).offset as i64;
        let o1 = f.frame.slot(s1).offset as i64;
        let seq = vec![
            Instr::new(Op::LoadI { imm: 5, dst: v }),
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off: o0,
                },
                s0,
            ),
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off: o1,
                },
                s1,
            ),
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off: o0,
                    dst: t0,
                },
                s0,
            ),
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off: o1,
                    dst: t1,
                },
                s1,
            ),
        ];
        for (i, instr) in seq.into_iter().enumerate() {
            f.block_mut(e).instrs.insert(i, instr);
        }
        let stats = compact_spill_memory(&mut f);
        assert_eq!(stats.after, stats.before, "interfering slots cannot share");
        assert_ne!(f.frame.slots[0].offset, f.frame.slots[1].offset);
    }

    #[test]
    fn compaction_preserves_program_behavior() {
        let mut f = disjoint_slots();
        let mut m0 = iloc::Module::new();
        m0.push_function(f.clone());
        let (v0, _) = sim::run_module(&m0, sim::MachineConfig::default(), "f").unwrap();
        compact_spill_memory(&mut f);
        let mut m1 = iloc::Module::new();
        m1.push_function(f);
        let (v1, _) = sim::run_module(&m1, sim::MachineConfig::default(), "f").unwrap();
        assert_eq!(v0, v1);
    }

    #[test]
    fn mixed_sizes_respect_alignment() {
        let mut fb = FuncBuilder::new("f");
        fb.alloc_local(4); // locals_size = 4 → float slots must align to 8
        fb.ret(&[]);
        let mut f = fb.finish();
        let sg = f.frame.new_slot(RegClass::Gpr);
        let sf = f.frame.new_slot(RegClass::Fpr);
        // Make them interfere by overlapping lifetimes.
        let e = f.entry();
        let vi = f.new_vreg(RegClass::Gpr);
        let vf = f.new_vreg(RegClass::Fpr);
        let ti = f.new_vreg(RegClass::Gpr);
        let tf = f.new_vreg(RegClass::Fpr);
        let og = f.frame.slot(sg).offset as i64;
        let of = f.frame.slot(sf).offset as i64;
        let seq = vec![
            Instr::new(Op::LoadI { imm: 1, dst: vi }),
            Instr::new(Op::LoadF { imm: 1.0, dst: vf }),
            Instr::spill_store(
                Op::StoreAI {
                    val: vi,
                    addr: Reg::RARP,
                    off: og,
                },
                sg,
            ),
            Instr::spill_store(
                Op::FStoreAI {
                    val: vf,
                    addr: Reg::RARP,
                    off: of,
                },
                sf,
            ),
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off: og,
                    dst: ti,
                },
                sg,
            ),
            Instr::spill_restore(
                Op::FLoadAI {
                    addr: Reg::RARP,
                    off: of,
                    dst: tf,
                },
                sf,
            ),
        ];
        for (i, instr) in seq.into_iter().enumerate() {
            f.block_mut(e).instrs.insert(i, instr);
        }
        compact_spill_memory(&mut f);
        assert_eq!(f.frame.slot(sf).offset % 8, 0, "float slot 8-aligned");
        assert_eq!(f.frame.slot(sg).offset % 4, 0);
        // No byte overlap between interfering slots.
        let (a, b) = (f.frame.slot(sg), f.frame.slot(sf));
        assert!(a.offset + a.size() <= b.offset || b.offset + b.size() <= a.offset);
    }

    #[test]
    fn no_slots_is_identity() {
        let mut fb = FuncBuilder::new("f");
        fb.ret(&[]);
        let mut f = fb.finish();
        let stats = compact_spill_memory(&mut f);
        assert_eq!(stats.before, 0);
        assert_eq!(stats.ratio(), 1.0);
    }
}

#[cfg(test)]
mod promoted_interaction_tests {
    use super::*;
    use iloc::RegClass;
    use regalloc::{allocate_module, AllocConfig};

    /// Compaction after promotion leaves CCM slots untouched and packs
    /// only the heavyweight remainder.
    #[test]
    fn compaction_skips_ccm_slots() {
        // A spilling kernel, promoted into a tiny CCM so some slots stay
        // heavyweight.
        let mut fb = iloc::builder::FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let vals: Vec<_> = (0..20).map(|i| fb.loadi(i)).collect();
        let mut acc = vals[19];
        for v in vals[..19].iter().rev() {
            acc = fb.add(acc, *v);
        }
        fb.ret(&[acc]);
        let mut m = iloc::Module::new();
        m.push_function(fb.finish());
        allocate_module(&mut m, &AllocConfig::tiny(3));
        crate::postpass_promote(
            &mut m,
            &crate::PostpassConfig {
                ccm_size: 16,
                interprocedural: false,
            },
        );
        let ccm_before: Vec<_> = m.functions[0]
            .frame
            .slots
            .iter()
            .filter(|s| s.in_ccm)
            .cloned()
            .collect();
        assert!(!ccm_before.is_empty(), "some slots must promote");
        let heavy_before = m.functions[0]
            .frame
            .slots
            .iter()
            .filter(|s| !s.in_ccm)
            .count();
        assert!(heavy_before > 0, "some slots must remain heavyweight");

        let stats = compact_spill_memory(&mut m.functions[0]);
        assert!(stats.after <= stats.before);
        let ccm_after: Vec<_> = m.functions[0]
            .frame
            .slots
            .iter()
            .filter(|s| s.in_ccm)
            .cloned()
            .collect();
        assert_eq!(ccm_before, ccm_after, "CCM slots must not move");
        // And it still runs.
        let (v, _) = sim::run_module(&m, sim::MachineConfig::with_ccm(16), "main").unwrap();
        assert_eq!(v.ints, vec![(0..20).sum::<i64>()]);
    }
}
