//! Analysis over spill *locations* (§3.1 of the paper).
//!
//! The post-pass CCM allocator operates on the memory slots holding
//! spilled values rather than on register live ranges. Its notion of
//! liveness is the paper's: a spill location *m* is live at point *p* if
//! some execution path from *p* reaches a load of *m* — it is *defined*
//! by a spill store and *used* by a spill restore. From that liveness we
//! build an interference graph over slots, reference counts, loop-weighted
//! costs, and the per-call-site live sets the interprocedural allocator
//! consults.

use std::collections::HashSet;

use analysis::bitset::BitSet;
use analysis::{Dominators, LoopInfo};
use iloc::{BlockId, Function, Op, SlotId, SpillKind};

/// A call site together with the spill slots live across it.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The callee's name.
    pub callee: String,
    /// Dense slot indices live across the call.
    pub live_slots: Vec<usize>,
}

/// Liveness, interference, and cost information for a function's spill
/// slots.
#[derive(Clone, Debug)]
pub struct SlotAnalysis {
    /// Number of slots (== `f.frame.slots.len()`).
    pub n: usize,
    /// Slot interference: `adj[i]` holds the slots that are live
    /// simultaneously with slot `i` at some definition point.
    pub adj: Vec<HashSet<usize>>,
    /// Loop-weighted reference cost per slot (`Σ 10^depth` over its spill
    /// stores and restores) — the benefit of promoting it to the CCM.
    pub cost: Vec<f64>,
    /// Static count of spill instructions touching each slot.
    pub refs: Vec<u32>,
    /// Whether the slot is live across *any* call site.
    pub crosses_call: Vec<bool>,
    /// Every call site with its live-across slot set.
    pub call_sites: Vec<CallSite>,
    /// Per-block slot live-in sets (dense slot indices), the fixpoint of
    /// the §3.1 location-liveness equations. Retained so clients (the
    /// post-allocation checker in particular) can replay liveness at
    /// instruction granularity without re-solving the dataflow.
    pub live_in: Vec<BitSet>,
    /// Per-block slot live-out sets (union of successor live-ins).
    pub live_out: Vec<BitSet>,
}

impl SlotAnalysis {
    /// Computes the analysis for allocated code containing tagged spill
    /// instructions.
    pub fn compute(f: &Function) -> SlotAnalysis {
        let n = f.frame.slots.len();
        let mut out = SlotAnalysis {
            n,
            adj: vec![HashSet::new(); n],
            cost: vec![0.0; n],
            refs: vec![0; n],
            crosses_call: vec![false; n],
            call_sites: Vec::new(),
            live_in: vec![BitSet::new(n); f.blocks.len()],
            live_out: vec![BitSet::new(n); f.blocks.len()],
        };
        if n == 0 {
            return out;
        }

        let dom = Dominators::compute(f);
        let loops = LoopInfo::compute(f, &dom);

        // Costs and reference counts.
        for b in f.block_ids() {
            let w = loops.weight(b);
            for instr in &f.block(b).instrs {
                if let Some(s) = instr.spill_slot() {
                    out.cost[s.index()] += w;
                    out.refs[s.index()] += 1;
                }
            }
        }

        // Block-level slot liveness: gen = upward-exposed restores,
        // kill = stores.
        let n_blocks = f.blocks.len();
        let mut gens = vec![BitSet::new(n); n_blocks];
        let mut kills = vec![BitSet::new(n); n_blocks];
        for b in f.block_ids() {
            let bi = b.index();
            for instr in &f.block(b).instrs {
                match instr.spill {
                    SpillKind::Restore(s) => {
                        if !kills[bi].contains(s.index()) {
                            gens[bi].insert(s.index());
                        }
                    }
                    SpillKind::Store(s) => {
                        kills[bi].insert(s.index());
                    }
                    SpillKind::None => {}
                }
            }
        }
        let mut live_in = vec![BitSet::new(n); n_blocks];
        let mut order: Vec<BlockId> = f.reverse_postorder();
        order.reverse();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out_set = BitSet::new(n);
                for s in f.successors(b) {
                    out_set.union_with(&live_in[s.index()]);
                }
                let mut inn = out_set;
                inn.subtract(&kills[bi]);
                inn.union_with(&gens[bi]);
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }

        // Backward walk: interference edges at slot definitions, and
        // live-across sets at call sites.
        for b in f.block_ids() {
            let mut live = BitSet::new(n);
            for s in f.successors(b) {
                live.union_with(&live_in[s.index()]);
            }
            out.live_out[b.index()] = live.clone();
            for instr in f.block(b).instrs.iter().rev() {
                if let Op::Call { callee, .. } = &instr.op {
                    let slots: Vec<usize> = live.iter().collect();
                    for &s in &slots {
                        out.crosses_call[s] = true;
                    }
                    out.call_sites.push(CallSite {
                        callee: callee.clone(),
                        live_slots: slots,
                    });
                }
                match instr.spill {
                    SpillKind::Store(s) => {
                        let si = s.index();
                        for l in live.iter() {
                            if l != si {
                                out.adj[si].insert(l);
                                out.adj[l].insert(si);
                            }
                        }
                        live.remove(si);
                    }
                    SpillKind::Restore(s) => {
                        live.insert(s.index());
                    }
                    SpillKind::None => {}
                }
            }
        }
        out.live_in = live_in;

        out
    }

    /// Whether slots `a` and `b` interfere (may not share storage).
    pub fn interferes(&self, a: SlotId, b: SlotId) -> bool {
        self.adj[a.index()].contains(&b.index())
    }

    /// Slots live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Slots live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Slots ordered by descending promotion benefit (cost, then index for
    /// determinism).
    pub fn by_descending_cost(&self) -> Vec<SlotId> {
        let mut ids: Vec<usize> = (0..self.n).collect();
        ids.sort_by(|&a, &b| {
            self.cost[b]
                .partial_cmp(&self.cost[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids.into_iter().map(|i| SlotId(i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{Instr, Reg, RegClass};

    /// Hand-builds a function with two spill slots whose lifetimes overlap
    /// (interfere) and a third disjoint one.
    fn two_overlapping_one_free() -> (Function, [SlotId; 3]) {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let v1 = fb.loadi(1);
        let v2 = fb.loadi(2);
        let v3 = fb.loadi(3);
        fb.ret(&[v1]);
        let mut f = fb.finish();
        let s0 = f.frame.new_slot(RegClass::Gpr);
        let s1 = f.frame.new_slot(RegClass::Gpr);
        let s2 = f.frame.new_slot(RegClass::Gpr);
        let offs: Vec<i64> = [s0, s1, s2]
            .iter()
            .map(|s| f.frame.slot(*s).offset as i64)
            .collect();
        // store s0; store s1; load s0; load s1;   (overlap)
        // store s2; load s2                        (disjoint from both)
        let e = f.entry();
        let mk_store = |slot: SlotId, val: Reg, off: i64| {
            Instr::spill_store(
                Op::StoreAI {
                    val,
                    addr: Reg::RARP,
                    off,
                },
                slot,
            )
        };
        let mk_load = |slot: SlotId, dst: Reg, off: i64| {
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off,
                    dst,
                },
                slot,
            )
        };
        let t0 = f.new_vreg(RegClass::Gpr);
        let t1 = f.new_vreg(RegClass::Gpr);
        let t2 = f.new_vreg(RegClass::Gpr);
        let seq = vec![
            mk_store(s0, v1, offs[0]),
            mk_store(s1, v2, offs[1]),
            mk_load(s0, t0, offs[0]),
            mk_load(s1, t1, offs[1]),
            mk_store(s2, v3, offs[2]),
            mk_load(s2, t2, offs[2]),
        ];
        for (i, instr) in seq.into_iter().enumerate() {
            f.block_mut(e).instrs.insert(3 + i, instr);
        }
        (f, [s0, s1, s2])
    }

    #[test]
    fn overlapping_slots_interfere_disjoint_do_not() {
        let (f, [s0, s1, s2]) = two_overlapping_one_free();
        let sa = SlotAnalysis::compute(&f);
        assert!(sa.interferes(s0, s1));
        assert!(!sa.interferes(s0, s2));
        assert!(!sa.interferes(s1, s2));
    }

    #[test]
    fn refs_and_costs_counted() {
        let (f, [s0, ..]) = two_overlapping_one_free();
        let sa = SlotAnalysis::compute(&f);
        assert_eq!(sa.refs[s0.index()], 2); // one store + one load
        assert_eq!(sa.cost[s0.index()], 2.0); // depth 0 → weight 1 each
    }

    #[test]
    fn slot_live_across_call_detected() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let v = fb.loadi(1);
        fb.call("g", &[], &[]);
        fb.ret(&[v]);
        let mut f = fb.finish();
        let s = f.frame.new_slot(RegClass::Gpr);
        let off = f.frame.slot(s).offset as i64;
        let e = f.entry();
        let t = f.new_vreg(RegClass::Gpr);
        // store before the call, load after → live across.
        f.block_mut(e).instrs.insert(
            1,
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off,
                },
                s,
            ),
        );
        f.block_mut(e).instrs.insert(
            3,
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off,
                    dst: t,
                },
                s,
            ),
        );
        let sa = SlotAnalysis::compute(&f);
        assert!(sa.crosses_call[s.index()]);
        assert_eq!(sa.call_sites.len(), 1);
        assert_eq!(sa.call_sites[0].callee, "g");
        assert_eq!(sa.call_sites[0].live_slots, vec![s.index()]);
    }

    #[test]
    fn slot_dead_during_call_not_marked() {
        // store, load, THEN call: slot is dead at the call.
        let mut fb = FuncBuilder::new("f");
        let v = fb.loadi(1);
        fb.call("g", &[], &[]);
        fb.ret(&[]);
        let mut f = fb.finish();
        let s = f.frame.new_slot(RegClass::Gpr);
        let off = f.frame.slot(s).offset as i64;
        let e = f.entry();
        let t = f.new_vreg(RegClass::Gpr);
        f.block_mut(e).instrs.insert(
            1,
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off,
                },
                s,
            ),
        );
        f.block_mut(e).instrs.insert(
            2,
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off,
                    dst: t,
                },
                s,
            ),
        );
        let sa = SlotAnalysis::compute(&f);
        assert!(!sa.crosses_call[s.index()]);
        assert!(sa.call_sites[0].live_slots.is_empty());
    }

    #[test]
    fn loop_slot_live_around_backedge() {
        // A slot stored before a loop and loaded inside it stays live
        // through the whole loop.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let v = fb.loadi(1);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, _| {
            let t = fb.add(acc, v);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let s = f.frame.new_slot(RegClass::Gpr);
        let off = f.frame.slot(s).offset as i64;
        // Store v into the slot at entry; reload it inside the loop body.
        let e = f.entry();
        f.block_mut(e).instrs.insert(
            1,
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off,
                },
                s,
            ),
        );
        let body = iloc::BlockId(2);
        let t = f.new_vreg(RegClass::Gpr);
        f.block_mut(body).instrs.insert(
            0,
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off,
                    dst: t,
                },
                s,
            ),
        );
        let sa = SlotAnalysis::compute(&f);
        // Reference inside the loop is weighted 10×.
        assert_eq!(sa.cost[s.index()], 1.0 + 10.0);
        assert_eq!(sa.by_descending_cost()[0], s);
    }

    #[test]
    fn block_liveness_is_exposed() {
        let (f, [s0, s1, s2]) = two_overlapping_one_free();
        let sa = SlotAnalysis::compute(&f);
        // Single-block function: everything is defined and consumed
        // inside the entry block, so nothing is live at its edges.
        let e = f.entry();
        assert_eq!(sa.live_in(e).count(), 0);
        assert_eq!(sa.live_out(e).count(), 0);
        let _ = (s0, s1, s2);
    }

    #[test]
    fn loop_liveness_crosses_block_edges() {
        // Reuses the backedge scenario: the slot stored at entry and
        // reloaded in the loop body is live-in at the body block.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let v = fb.loadi(1);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, _| {
            let t = fb.add(acc, v);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let s = f.frame.new_slot(RegClass::Gpr);
        let off = f.frame.slot(s).offset as i64;
        let e = f.entry();
        f.block_mut(e).instrs.insert(
            1,
            Instr::spill_store(
                Op::StoreAI {
                    val: v,
                    addr: Reg::RARP,
                    off,
                },
                s,
            ),
        );
        let body = iloc::BlockId(2);
        let t = f.new_vreg(RegClass::Gpr);
        f.block_mut(body).instrs.insert(
            0,
            Instr::spill_restore(
                Op::LoadAI {
                    addr: Reg::RARP,
                    off,
                    dst: t,
                },
                s,
            ),
        );
        let sa = SlotAnalysis::compute(&f);
        assert!(sa.live_in(body).contains(s.index()));
        assert!(sa.live_out(e).contains(s.index()));
    }

    #[test]
    fn empty_frame_is_trivial() {
        let mut fb = FuncBuilder::new("f");
        fb.ret(&[]);
        let f = fb.finish();
        let sa = SlotAnalysis::compute(&f);
        assert_eq!(sa.n, 0);
        assert!(sa.call_sites.is_empty());
    }
}
