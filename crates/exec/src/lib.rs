#![warn(missing_docs)]
//! Parallel experiment engine: a dependency-free scoped thread pool.
//!
//! The container this repo builds in has no network, so there is no
//! `rayon`; this crate hand-rolls the 10% of it the harness needs on
//! `std::thread::scope` plus an atomic work queue (the same vendored-shim
//! precedent as `crates/proptest`). The one entry point that matters is
//! [`par_map`]: map a function over a slice on N worker threads with
//! three guarantees the experiments rely on —
//!
//! 1. **Determinism**: results are collected *by item index*, never by
//!    completion order, so `par_map(n, ..)` is byte-identical to
//!    `par_map(1, ..)` for any pure `f`.
//! 2. **Panic propagation**: a panicking worker does not hang or abort
//!    the process; the panic is re-raised on the caller with the item's
//!    label (kernel/variant/CCM size) prepended.
//! 3. **No oversubscription surprises**: `jobs` is clamped to the item
//!    count, and `jobs <= 1` runs inline with no threads at all.

mod queue;

pub use queue::WorkerPanic;

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of hardware threads, with a fallback of 1 when the OS
/// cannot say.
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide default worker count: 0 means "unset, use
/// [`available`]". Set once at binary startup from `--jobs`.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by
/// [`default_jobs`]. Binaries call this once from `--jobs N`.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The default worker count: the last [`set_default_jobs`] value, or
/// [`available`] if none was set (or 0 was set).
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available(),
        n => n,
    }
}

/// Parses a `--jobs` argument: a positive integer.
///
/// # Errors
///
/// Returns a human-readable message for zero or non-numeric input.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs needs a positive integer, got `{s}`")),
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in item order. `label` names an item for diagnostics; when a
/// worker panics, the panic is re-raised here as
/// `"<label>: <original message>"` so the failing kernel/variant is
/// visible even from a release binary.
///
/// # Panics
///
/// Re-raises the first (lowest-index) worker panic with the item label
/// prepended.
pub fn par_map<I, T, F, L>(jobs: usize, items: &[I], label: L, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
    L: Fn(&I) -> String + Sync,
{
    match queue::run(jobs, items.len(), |i| f(&items[i])) {
        Ok(out) => out,
        Err(p) => panic!("{}: {}", label(&items[p.index]), p.message()),
    }
}

/// [`par_map`] with the process-wide [`default_jobs`] worker count.
pub fn par_map_default<I, T, F, L>(items: &[I], label: L, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
    L: Fn(&I) -> String + Sync,
{
    par_map(default_jobs(), items, label, f)
}

/// A stopwatch for the binaries' per-stage timing lines.
pub struct Stage {
    name: String,
    start: std::time::Instant,
}

impl Stage {
    /// Starts timing a named stage.
    pub fn start(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            start: std::time::Instant::now(),
        }
    }

    /// Finishes the stage, returning the `"<name>: 1.23s (jobs=N)"`
    /// timing line the binaries print to stderr.
    pub fn line(self) -> String {
        format!(
            "{}: {:.2}s (jobs={})",
            self.name,
            self.start.elapsed().as_secs_f64(),
            default_jobs()
        )
    }
}

/// Times `f`, printing `prog: stage: 1.23s (jobs=N)` to stderr.
pub fn timed<T>(prog: &str, stage: &str, f: impl FnOnce() -> T) -> T {
    let s = Stage::start(stage);
    let out = f();
    eprintln!("{prog}: {}", s.line());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_any_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |i| i.to_string(), |&i| i * 31 + 7);
        for jobs in [2, 3, 8, 64] {
            let par = par_map(jobs, &items, |i| i.to_string(), |&i| i * 31 + 7);
            assert_eq!(par, serial, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn panic_carries_item_label() {
        let items = ["radf5/postpass/512", "fpppp/integrated/1024"];
        let err = std::panic::catch_unwind(|| {
            par_map(
                2,
                &items,
                |s| s.to_string(),
                |s| {
                    if s.contains("fpppp") {
                        panic!("checksum mismatch");
                    }
                    s.len()
                },
            )
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("fpppp/integrated/1024") && msg.contains("checksum mismatch"),
            "bad panic message: {msg}"
        );
    }

    #[test]
    fn parse_jobs_accepts_positive_rejects_rest() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("lots").is_err());
    }

    #[test]
    fn default_jobs_round_trips() {
        assert!(default_jobs() >= 1);
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
