#![warn(missing_docs)]
//! Parallel experiment engine: a dependency-free scoped thread pool.
//!
//! The container this repo builds in has no network, so there is no
//! `rayon`; this crate hand-rolls the 10% of it the harness needs on
//! `std::thread::scope` plus an atomic work queue (the same vendored-shim
//! precedent as `crates/proptest`). The one entry point that matters is
//! [`par_map`]: map a function over a slice on N worker threads with
//! three guarantees the experiments rely on —
//!
//! 1. **Determinism**: results are collected *by item index*, never by
//!    completion order, so `par_map(n, ..)` is byte-identical to
//!    `par_map(1, ..)` for any pure `f`.
//! 2. **Panic containment**: a panicking item poisons only its own
//!    result slot — [`par_map_contained`] returns it as a structured
//!    [`ItemFailure`] carrying the item's label and the captured
//!    payload, and every other item still runs. The serial path
//!    contains panics identically, so failure reports are byte-equal
//!    at any job count. ([`par_map`] keeps the legacy all-or-nothing
//!    behavior: it re-raises the first failure with its label.)
//! 3. **No oversubscription surprises**: `jobs` is clamped to the item
//!    count, and `jobs <= 1` runs inline with no threads at all.

mod queue;

pub use queue::{render_payload, ItemPanic};

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of hardware threads, with a fallback of 1 when the OS
/// cannot say.
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide default worker count: 0 means "unset, use
/// [`available`]". Set once at binary startup from `--jobs`.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by
/// [`default_jobs`]. Binaries call this once from `--jobs N`.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The default worker count: the last [`set_default_jobs`] value, or
/// [`available`] if none was set (or 0 was set).
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available(),
        n => n,
    }
}

/// Parses a `--jobs` argument: a positive integer.
///
/// # Errors
///
/// Returns a human-readable message for zero or non-numeric input.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs needs a positive integer, got `{s}`")),
    }
}

/// One contained work-item failure: the item's index, its human-readable
/// label (kernel/variant/CCM size), and the captured panic payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemFailure {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// The caller-supplied label for the item.
    pub label: String,
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: worker panic: {}", self.label, self.message)
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads with the
/// containment policy: a panicking item becomes `Err(ItemFailure)` in
/// its own result slot and every other item still runs. Results are in
/// item order and independent of `jobs`, including which slots failed.
pub fn par_map_contained<I, T, F, L>(
    jobs: usize,
    items: &[I],
    label: L,
    f: F,
) -> Vec<Result<T, ItemFailure>>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
    L: Fn(&I) -> String + Sync,
{
    queue::run(jobs, items.len(), |i| f(&items[i]))
        .into_iter()
        .map(|r| {
            r.map_err(|p| ItemFailure {
                label: label(&items[p.index]),
                index: p.index,
                message: p.message,
            })
        })
        .collect()
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in item order. `label` names an item for diagnostics; when a
/// worker panics, the panic is re-raised here as
/// `"<label>: <original message>"` so the failing kernel/variant is
/// visible even from a release binary. Callers that must survive item
/// failures use [`par_map_contained`] instead.
///
/// # Panics
///
/// Re-raises the first (lowest-index) worker panic with the item label
/// prepended.
pub fn par_map<I, T, F, L>(jobs: usize, items: &[I], label: L, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
    L: Fn(&I) -> String + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in par_map_contained(jobs, items, label, f) {
        match r {
            Ok(v) => out.push(v),
            Err(e) => panic!("{}: {}", e.label, e.message),
        }
    }
    out
}

/// [`par_map`] with the process-wide [`default_jobs`] worker count.
pub fn par_map_default<I, T, F, L>(items: &[I], label: L, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
    L: Fn(&I) -> String + Sync,
{
    par_map(default_jobs(), items, label, f)
}

/// A stopwatch for the binaries' per-stage timing lines.
pub struct Stage {
    name: String,
    start: std::time::Instant,
}

impl Stage {
    /// Starts timing a named stage.
    pub fn start(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            start: std::time::Instant::now(),
        }
    }

    /// Finishes the stage, returning the `"<name>: 1.23s (jobs=N)"`
    /// timing line the binaries print to stderr.
    pub fn line(self) -> String {
        format!(
            "{}: {:.2}s (jobs={})",
            self.name,
            self.start.elapsed().as_secs_f64(),
            default_jobs()
        )
    }
}

/// Times `f`, printing `prog: stage: 1.23s (jobs=N)` to stderr. The
/// wall-clock is also recorded process-wide (see [`recorded_stages`])
/// so binaries can export their stage timings, e.g. `repro
/// --bench-json`.
pub fn timed<T>(prog: &str, stage: &str, f: impl FnOnce() -> T) -> T {
    let s = Stage::start(stage);
    let start = std::time::Instant::now();
    let out = f();
    record_stage(stage, start.elapsed().as_secs_f64());
    eprintln!("{prog}: {}", s.line());
    out
}

/// Stage timings recorded by [`timed`], in execution order.
static STAGES: std::sync::Mutex<Vec<(String, f64)>> = std::sync::Mutex::new(Vec::new());

/// Records a named stage's wall-clock seconds for later export.
pub fn record_stage(name: &str, secs: f64) {
    STAGES
        .lock()
        .expect("stage recorder lock")
        .push((name.to_string(), secs));
}

/// Every stage recorded so far (by [`timed`] or [`record_stage`]), in
/// execution order.
pub fn recorded_stages() -> Vec<(String, f64)> {
    STAGES.lock().expect("stage recorder lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_any_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |i| i.to_string(), |&i| i * 31 + 7);
        for jobs in [2, 3, 8, 64] {
            let par = par_map(jobs, &items, |i| i.to_string(), |&i| i * 31 + 7);
            assert_eq!(par, serial, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn panic_carries_item_label() {
        let items = ["radf5/postpass/512", "fpppp/integrated/1024"];
        let err = std::panic::catch_unwind(|| {
            par_map(
                2,
                &items,
                |s| s.to_string(),
                |s| {
                    if s.contains("fpppp") {
                        panic!("checksum mismatch");
                    }
                    s.len()
                },
            )
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("fpppp/integrated/1024") && msg.contains("checksum mismatch"),
            "bad panic message: {msg}"
        );
    }

    #[test]
    fn contained_failures_keep_healthy_results_and_labels() {
        let items: Vec<u64> = (0..20).collect();
        let work = |&i: &u64| {
            if i % 5 == 2 {
                panic!("injected at {i}");
            }
            i * 2
        };
        let serial = par_map_contained(1, &items, |i| format!("item {i}"), work);
        for jobs in [2, 4] {
            let par = par_map_contained(jobs, &items, |i| format!("item {i}"), work);
            assert_eq!(par, serial, "jobs={jobs} failure report diverged");
        }
        for (i, r) in serial.iter().enumerate() {
            if i % 5 == 2 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.label, format!("item {i}"));
                assert!(e.to_string().contains(&format!("injected at {i}")));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u64) * 2);
            }
        }
    }

    #[test]
    fn parse_jobs_accepts_positive_rejects_rest() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("lots").is_err());
    }

    #[test]
    fn default_jobs_round_trips() {
        assert!(default_jobs() >= 1);
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
