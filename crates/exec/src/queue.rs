//! The scoped work queue underneath [`par_map`](crate::par_map).
//!
//! Work items are claimed by index from a shared atomic counter, so the
//! queue itself is just an integer: workers race on `fetch_add` and each
//! index is handed out exactly once. Results land in a slot vector keyed
//! by the same index, which is what makes the output independent of
//! completion order.
//!
//! **Containment policy**: a panicking item poisons only its own slot.
//! The panic is caught, rendered, and recorded as that slot's
//! [`ItemPanic`]; every other item still runs. The serial (`jobs <= 1`)
//! path catches panics the same way, so a campaign's failure report is
//! byte-identical at any job count.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A caught panic from one work item: the item's index plus the unwind
/// payload rendered as text (`&str` or `String` payloads verbatim).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the work item whose closure panicked.
    pub index: usize,
    /// The unwind payload as text.
    pub message: String,
}

/// Renders an unwind payload as text, the way `ItemPanic` stores it.
pub fn render_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f(i)` for every `i < n` on `jobs` scoped worker threads and
/// returns the per-item outcomes ordered by index. A panicking item
/// becomes `Err(ItemPanic)` in its own slot; the other items are
/// unaffected and still execute.
pub fn run<T, F>(jobs: usize, n: usize, f: F) -> Vec<Result<T, ItemPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, ItemPanic> {
        match panic::catch_unwind(AssertUnwindSafe(|| {
            if inject::faultpoint!("exec.worker_panic") {
                panic!("injected worker panic");
            }
            f(i)
        })) {
            Ok(v) => Ok(v),
            Err(payload) => Err(ItemPanic {
                index: i,
                message: render_payload(payload.as_ref()),
            }),
        }
    };

    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        // Serial fast path: no threads, but the same per-item
        // containment — the reference behavior the parallel path must
        // be identical to, including which slots fail.
        return (0..n).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, ItemPanic>>>> =
        Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let out = run_one(i);
                // A panic while a lock was held cannot happen here (the
                // item closure runs outside all locks), but recover from
                // poisoning anyway rather than double-panicking.
                let mut slots = slots.lock().unwrap_or_else(|p| p.into_inner());
                slots[i] = Some(out);
            });
        }
    });

    slots
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out: Vec<usize> = run(4, 100, |i| i * i)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<Result<u32, _>> = run(8, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn panics_poison_only_their_own_slot() {
        let out = run(4, 50, |i| {
            if i % 10 == 3 {
                panic!("boom at {i}");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert_eq!(e.message, format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i, "healthy item lost");
            }
        }
    }

    #[test]
    fn serial_and_parallel_failures_are_identical() {
        let work = |i: usize| {
            if i % 7 == 2 {
                panic!("deterministic failure {i}");
            }
            i * 3
        };
        let serial = run(1, 30, work);
        for jobs in [2, 4, 8] {
            let par = run(jobs, 30, work);
            assert_eq!(par, serial, "jobs={jobs} diverged");
        }
    }
}
