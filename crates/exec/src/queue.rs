//! The scoped work queue underneath [`par_map`](crate::par_map).
//!
//! Work items are claimed by index from a shared atomic counter, so the
//! queue itself is just an integer: workers race on `fetch_add` and each
//! index is handed out exactly once. Results land in a slot vector keyed
//! by the same index, which is what makes the output independent of
//! completion order. A worker panic is caught, recorded with its item
//! index, and poisons the counter so the remaining workers drain quickly
//! instead of burning through work that will be thrown away.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A caught worker panic: the index of the item that panicked plus the
/// payload it unwound with.
pub struct WorkerPanic {
    /// Index of the work item whose closure panicked.
    pub index: usize,
    /// The unwind payload (`&str` or `String` for ordinary `panic!`s).
    pub payload: Box<dyn std::any::Any + Send>,
}

impl std::fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPanic")
            .field("index", &self.index)
            .field("message", &self.message())
            .finish()
    }
}

impl WorkerPanic {
    /// Best-effort rendering of the payload as text.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

/// Runs `f(i)` for every `i < n` on `jobs` scoped worker threads and
/// returns the results ordered by index. On worker panic, returns the
/// recorded panic with the *lowest* item index (so the error itself is
/// deterministic, whatever order the failures raced in).
pub fn run<T, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        // Serial fast path: no threads, no catch_unwind frames — the
        // reference behavior the parallel path must be identical to.
        return Ok((0..n).map(f).collect());
    }

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let panics: Mutex<Vec<WorkerPanic>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => slots.lock().unwrap()[i] = Some(v),
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        panics
                            .lock()
                            .unwrap()
                            .push(WorkerPanic { index: i, payload });
                    }
                }
            });
        }
    });

    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        panics.sort_by_key(|p| p.index);
        return Err(panics.remove(0));
    }
    Ok(slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = run(4, 100, |i| i * i).unwrap();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u32> = run(8, 0, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lowest_index_panic_wins() {
        let err = run(4, 50, |i| {
            if i % 10 == 3 {
                panic!("boom at {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.index % 10, 3);
        assert!(err.message().starts_with("boom at"));
    }
}
