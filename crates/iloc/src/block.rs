//! Basic blocks.

use std::fmt;

use crate::op::{Instr, Op};

/// Index of a basic block within its [`Function`](crate::Function).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as a `usize`, for direct table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A basic block: a label plus a straight-line instruction sequence ending
/// in a terminator ([`Op::Jump`], [`Op::Cbr`], or [`Op::Ret`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Human-readable label, unique within the function.
    pub label: String,
    /// The instructions; the last one must be a terminator in a
    /// verifier-clean function.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Creates an empty block with the given label.
    pub fn new(label: impl Into<String>) -> Block {
        Block {
            label: label.into(),
            instrs: Vec::new(),
        }
    }

    /// The block's terminator, if present and well-formed.
    pub fn terminator(&self) -> Option<&Op> {
        self.instrs
            .last()
            .map(|i| &i.op)
            .filter(|op| op.is_terminator())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut Op> {
        match self.instrs.last_mut() {
            Some(i) if i.op.is_terminator() => Some(&mut i.op),
            _ => None,
        }
    }

    /// Successor block ids, taken from the terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map(|t| t.successors())
            .unwrap_or_default()
    }

    /// Number of φ-nodes at the head of the block.
    pub fn phi_count(&self) -> usize {
        self.instrs
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi { .. }))
            .count()
    }

    /// Inserts `instr` just before the terminator. Panics if the block has
    /// no terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or does not end in a terminator.
    pub fn insert_before_terminator(&mut self, instr: Instr) {
        assert!(
            self.terminator().is_some(),
            "block {} has no terminator",
            self.label
        );
        let at = self.instrs.len() - 1;
        self.instrs.insert(at, instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn terminator_detection() {
        let mut b = Block::new("L0");
        assert!(b.terminator().is_none());
        b.instrs.push(Instr::new(Op::LoadI {
            imm: 1,
            dst: Reg::gpr(64),
        }));
        assert!(b.terminator().is_none());
        b.instrs.push(Instr::new(Op::Ret { vals: vec![] }));
        assert!(b.terminator().is_some());
        assert!(b.successors().is_empty());
    }

    #[test]
    fn insert_before_terminator_preserves_order() {
        let mut b = Block::new("L0");
        b.instrs.push(Instr::new(Op::Jump { target: BlockId(1) }));
        b.insert_before_terminator(Instr::new(Op::LoadI {
            imm: 7,
            dst: Reg::gpr(64),
        }));
        assert_eq!(b.instrs.len(), 2);
        assert!(matches!(b.instrs[0].op, Op::LoadI { .. }));
        assert!(b.instrs[1].op.is_terminator());
    }

    #[test]
    fn phi_count_counts_only_leading_phis() {
        let mut b = Block::new("L0");
        b.instrs.push(Instr::new(Op::Phi {
            dst: Reg::gpr(70),
            args: vec![],
        }));
        b.instrs.push(Instr::new(Op::LoadI {
            imm: 0,
            dst: Reg::gpr(71),
        }));
        b.instrs.push(Instr::new(Op::Ret { vals: vec![] }));
        assert_eq!(b.phi_count(), 1);
    }
}
