//! Textual parser for the IR.
//!
//! Accepts the exact format produced by the [`Display`](std::fmt::Display)
//! implementations in [`crate::print`]; printing and parsing round-trip.
//! Comments begin with `;` or `#` and run to end of line.

use std::collections::HashMap;
use std::fmt;

use crate::block::BlockId;
use crate::func::{Function, SlotId, SpillKind, SpillSlot};
use crate::module::{Global, Module};
use crate::op::{CmpKind, FBinKind, IBinKind, Instr, Op};
use crate::reg::{Reg, RegClass};

/// An error produced while parsing IR text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending text.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find([';', '#']) {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse_module(&mut self) -> PResult<Module> {
        let mut m = Module::new();
        while let Some((ln, line)) = self.peek() {
            if line.starts_with("global ") {
                self.pos += 1;
                m.globals.push(parse_global(ln, line)?);
            } else if line.starts_with("func ") {
                m.functions.push(self.parse_function()?);
            } else {
                return self.err(ln, format!("expected `global` or `func`, found `{line}`"));
            }
        }
        Ok(m)
    }

    fn parse_function(&mut self) -> PResult<Function> {
        let (ln, header) = self.next_line().expect("caller checked");
        let (mut f, _) = parse_func_header(ln, header)?;

        // Slot declarations.
        while let Some((ln, line)) = self.peek() {
            if let Some(rest) = line.strip_prefix("slot ") {
                self.pos += 1;
                let slot = parse_slot_decl(ln, rest)?;
                f.frame.slots.push(slot);
            } else {
                break;
            }
        }

        // First pass: gather block labels and raw instruction lines.
        let mut labels: HashMap<String, BlockId> = HashMap::new();
        let mut raw_blocks: Vec<(String, Vec<(usize, &str)>)> = Vec::new();
        loop {
            let (ln, line) = match self.next_line() {
                Some(x) => x,
                None => return self.err(0, "unexpected end of input inside function"),
            };
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                if !is_ident(label) {
                    return self.err(ln, format!("invalid block label `{label}`"));
                }
                if labels.contains_key(label) {
                    return self.err(ln, format!("duplicate block label `{label}`"));
                }
                labels.insert(label.to_string(), BlockId(raw_blocks.len() as u32));
                raw_blocks.push((label.to_string(), Vec::new()));
            } else {
                match raw_blocks.last_mut() {
                    Some((_, instrs)) => instrs.push((ln, line)),
                    None => return self.err(ln, "instruction before first block label"),
                }
            }
        }
        if raw_blocks.is_empty() {
            return self.err(ln, "function has no blocks");
        }

        // Second pass: parse instructions with label resolution.
        f.blocks.clear();
        for (label, lines) in raw_blocks {
            let id = f.add_block(label);
            for (ln, line) in lines {
                let instr = parse_instr(ln, line, &labels)?;
                f.block_mut(id).instrs.push(instr);
            }
        }
        f.reset_vreg_counter();
        Ok(f)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

fn parse_global(ln: usize, line: &str) -> PResult<Global> {
    // global NAME SIZE [= HEXBYTES]
    let rest = line.strip_prefix("global ").unwrap();
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| perr(ln, "missing global name"))?;
    let size: u32 = parts
        .next()
        .ok_or_else(|| perr(ln, "missing global size"))?
        .parse()
        .map_err(|_| perr(ln, "bad global size"))?;
    let mut init = Vec::new();
    if let Some(eq) = parts.next() {
        if eq != "=" {
            return Err(perr(ln, "expected `=` before global initializer"));
        }
        let hex = parts.next().ok_or_else(|| perr(ln, "missing hex bytes"))?;
        if hex.len() % 2 != 0 {
            return Err(perr(ln, "odd-length hex initializer"));
        }
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| perr(ln, "bad hex byte in initializer"))?;
            init.push(b);
        }
    }
    Ok(Global {
        name: name.to_string(),
        size,
        init,
    })
}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_func_header(ln: usize, line: &str) -> PResult<(Function, ())> {
    // func NAME(params) [rets c1,c2] locals N {
    let rest = line
        .strip_prefix("func ")
        .ok_or_else(|| perr(ln, "expected `func`"))?;
    let open = rest.find('(').ok_or_else(|| perr(ln, "missing `(`"))?;
    let name = rest[..open].trim();
    if !is_ident(name) {
        return Err(perr(ln, format!("invalid function name `{name}`")));
    }
    let close = rest.find(')').ok_or_else(|| perr(ln, "missing `)`"))?;
    let mut f = Function::new(name);
    f.blocks.clear();
    let params_str = &rest[open + 1..close];
    for p in params_str
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        f.params.push(parse_reg(ln, p)?);
    }
    let mut tail = rest[close + 1..].trim();
    if let Some(r) = tail.strip_prefix("rets ") {
        let sp = r
            .find(" locals")
            .ok_or_else(|| perr(ln, "missing `locals`"))?;
        for c in r[..sp].split(',').map(str::trim) {
            f.ret_classes.push(match c {
                "gpr" => RegClass::Gpr,
                "fpr" => RegClass::Fpr,
                other => return Err(perr(ln, format!("bad ret class `{other}`"))),
            });
        }
        tail = r[sp..].trim();
    }
    let tail = tail
        .strip_prefix("locals ")
        .ok_or_else(|| perr(ln, "missing `locals`"))?;
    let tail = tail
        .strip_suffix('{')
        .ok_or_else(|| perr(ln, "missing `{`"))?
        .trim();
    f.frame.locals_size = tail.parse().map_err(|_| perr(ln, "bad locals size"))?;
    Ok((f, ()))
}

fn parse_slot_decl(ln: usize, rest: &str) -> PResult<SpillSlot> {
    // `slot N: CLASS @ OFFSET [ccm]`  (leading "slot " already stripped)
    let colon = rest.find(':').ok_or_else(|| perr(ln, "missing `:`"))?;
    let body = rest[colon + 1..].trim();
    let mut parts = body.split_whitespace();
    let class = match parts.next() {
        Some("gpr") => RegClass::Gpr,
        Some("fpr") => RegClass::Fpr,
        _ => return Err(perr(ln, "bad slot class")),
    };
    if parts.next() != Some("@") {
        return Err(perr(ln, "missing `@` in slot declaration"));
    }
    let offset: u32 = parts
        .next()
        .ok_or_else(|| perr(ln, "missing slot offset"))?
        .parse()
        .map_err(|_| perr(ln, "bad slot offset"))?;
    let in_ccm = match parts.next() {
        None => false,
        Some("ccm") => true,
        Some(other) => return Err(perr(ln, format!("unexpected token `{other}`"))),
    };
    Ok(SpillSlot {
        offset,
        class,
        in_ccm,
    })
}

fn parse_reg(ln: usize, s: &str) -> PResult<Reg> {
    if let Some(n) = s.strip_prefix("%r") {
        n.parse()
            .map(Reg::gpr)
            .map_err(|_| perr(ln, format!("bad register `{s}`")))
    } else if let Some(n) = s.strip_prefix("%f") {
        n.parse()
            .map(Reg::fpr)
            .map_err(|_| perr(ln, format!("bad register `{s}`")))
    } else {
        Err(perr(ln, format!("expected register, found `{s}`")))
    }
}

fn parse_imm(ln: usize, s: &str) -> PResult<i64> {
    s.parse()
        .map_err(|_| perr(ln, format!("bad immediate `{s}`")))
}

fn parse_fimm(ln: usize, s: &str) -> PResult<f64> {
    s.parse()
        .map_err(|_| perr(ln, format!("bad float immediate `{s}`")))
}

fn lookup_label(ln: usize, labels: &HashMap<String, BlockId>, l: &str) -> PResult<BlockId> {
    labels
        .get(l)
        .copied()
        .ok_or_else(|| perr(ln, format!("unknown label `{l}`")))
}

fn ibin_kind(m: &str) -> Option<IBinKind> {
    Some(match m {
        "add" => IBinKind::Add,
        "sub" => IBinKind::Sub,
        "mult" => IBinKind::Mult,
        "div" => IBinKind::Div,
        "rem" => IBinKind::Rem,
        "and" => IBinKind::And,
        "or" => IBinKind::Or,
        "xor" => IBinKind::Xor,
        "lshift" => IBinKind::Shl,
        "rshift" => IBinKind::Shr,
        _ => return None,
    })
}

fn fbin_kind(m: &str) -> Option<FBinKind> {
    Some(match m {
        "fadd" => FBinKind::Add,
        "fsub" => FBinKind::Sub,
        "fmult" => FBinKind::Mult,
        "fdiv" => FBinKind::Div,
        _ => return None,
    })
}

fn cmp_kind(m: &str) -> Option<CmpKind> {
    Some(match m {
        "lt" => CmpKind::Lt,
        "le" => CmpKind::Le,
        "gt" => CmpKind::Gt,
        "ge" => CmpKind::Ge,
        "eq" => CmpKind::Eq,
        "ne" => CmpKind::Ne,
        _ => return None,
    })
}

/// Splits `a, b, c` into trimmed pieces (empty input → empty vec).
fn commas(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

fn parse_instr(ln: usize, line: &str, labels: &HashMap<String, BlockId>) -> PResult<Instr> {
    // Strip and remember a spill tag suffix.
    let (line, spill) = if let Some(p) = line.rfind("!store(") {
        let n: u32 = line[p + 7..]
            .trim_end_matches(')')
            .trim()
            .parse()
            .map_err(|_| perr(ln, "bad !store tag"))?;
        (line[..p].trim_end(), SpillKind::Store(SlotId(n)))
    } else if let Some(p) = line.rfind("!restore(") {
        let n: u32 = line[p + 9..]
            .trim_end_matches(')')
            .trim()
            .parse()
            .map_err(|_| perr(ln, "bad !restore tag"))?;
        (line[..p].trim_end(), SpillKind::Restore(SlotId(n)))
    } else {
        (line, SpillKind::None)
    };

    let op = parse_op(ln, line, labels)?;
    Ok(Instr { op, spill })
}

fn parse_op(ln: usize, line: &str, labels: &HashMap<String, BlockId>) -> PResult<Op> {
    let (mn, rest) = match line.find(' ') {
        Some(p) => (&line[..p], line[p + 1..].trim()),
        None => (line, ""),
    };

    // Helper: split "ARGS => DSTS".
    let arrow = |s: &str| -> (String, Option<String>) {
        match s.find("=>") {
            Some(p) => (
                s[..p].trim().to_string(),
                Some(s[p + 2..].trim().to_string()),
            ),
            None => (s.trim().to_string(), None),
        }
    };

    let (args_s, dst_s) = arrow(rest);
    let need_dst = || {
        dst_s
            .clone()
            .ok_or_else(|| perr(ln, "missing `=>` destination"))
    };

    match mn {
        "nop" => Ok(Op::Nop),
        "loadI" => Ok(Op::LoadI {
            imm: parse_imm(ln, &args_s)?,
            dst: parse_reg(ln, &need_dst()?)?,
        }),
        "loadF" => Ok(Op::LoadF {
            imm: parse_fimm(ln, &args_s)?,
            dst: parse_reg(ln, &need_dst()?)?,
        }),
        "loadSym" => {
            let sym = args_s
                .strip_prefix('@')
                .ok_or_else(|| perr(ln, "loadSym needs @name"))?;
            Ok(Op::LoadSym {
                sym: sym.to_string(),
                dst: parse_reg(ln, &need_dst()?)?,
            })
        }
        "load" => Ok(Op::Load {
            addr: parse_reg(ln, &args_s)?,
            dst: parse_reg(ln, &need_dst()?)?,
        }),
        "fload" => Ok(Op::FLoad {
            addr: parse_reg(ln, &args_s)?,
            dst: parse_reg(ln, &need_dst()?)?,
        }),
        "loadAI" | "floadAI" => {
            let a = commas(&args_s);
            if a.len() != 2 {
                return Err(perr(ln, "loadAI needs addr, off"));
            }
            let addr = parse_reg(ln, a[0])?;
            let off = parse_imm(ln, a[1])?;
            let dst = parse_reg(ln, &need_dst()?)?;
            Ok(if mn == "loadAI" {
                Op::LoadAI { addr, off, dst }
            } else {
                Op::FLoadAI { addr, off, dst }
            })
        }
        "store" | "fstore" => {
            let val = parse_reg(ln, &args_s)?;
            let addr = parse_reg(ln, &need_dst()?)?;
            Ok(if mn == "store" {
                Op::Store { val, addr }
            } else {
                Op::FStore { val, addr }
            })
        }
        "storeAI" | "fstoreAI" => {
            let val = parse_reg(ln, &args_s)?;
            let d = need_dst()?;
            let a = commas(&d);
            if a.len() != 2 {
                return Err(perr(ln, "storeAI needs => addr, off"));
            }
            let addr = parse_reg(ln, a[0])?;
            let off = parse_imm(ln, a[1])?;
            Ok(if mn == "storeAI" {
                Op::StoreAI { val, addr, off }
            } else {
                Op::FStoreAI { val, addr, off }
            })
        }
        "spill" | "fspill" => {
            let val = parse_reg(ln, &args_s)?;
            let d = need_dst()?;
            let off = parse_ccm_ref(ln, &d)?;
            Ok(if mn == "spill" {
                Op::CcmStore { val, off }
            } else {
                Op::CcmFStore { val, off }
            })
        }
        "restore" | "frestore" => {
            let off = parse_ccm_ref(ln, &args_s)?;
            let dst = parse_reg(ln, &need_dst()?)?;
            Ok(if mn == "restore" {
                Op::CcmLoad { off, dst }
            } else {
                Op::CcmFLoad { off, dst }
            })
        }
        "i2i" | "f2f" | "i2f" | "f2i" => {
            let src = parse_reg(ln, &args_s)?;
            let dst = parse_reg(ln, &need_dst()?)?;
            Ok(match mn {
                "i2i" => Op::I2I { src, dst },
                "f2f" => Op::F2F { src, dst },
                "i2f" => Op::I2F { src, dst },
                _ => Op::F2I { src, dst },
            })
        }
        "jump" => {
            let l = rest
                .strip_prefix("->")
                .ok_or_else(|| perr(ln, "jump needs `->`"))?
                .trim();
            Ok(Op::Jump {
                target: lookup_label(ln, labels, l)?,
            })
        }
        "cbr" => {
            let arr = rest.find("->").ok_or_else(|| perr(ln, "cbr needs `->`"))?;
            let cond = parse_reg(ln, rest[..arr].trim())?;
            let t = commas(&rest[arr + 2..]);
            if t.len() != 2 {
                return Err(perr(ln, "cbr needs two targets"));
            }
            Ok(Op::Cbr {
                cond,
                taken: lookup_label(ln, labels, t[0])?,
                not_taken: lookup_label(ln, labels, t[1])?,
            })
        }
        "call" => {
            let open = rest.find('(').ok_or_else(|| perr(ln, "call needs `(`"))?;
            let close = rest.find(')').ok_or_else(|| perr(ln, "call needs `)`"))?;
            let callee = rest[..open].trim().to_string();
            let mut args = Vec::new();
            for a in commas(&rest[open + 1..close]) {
                args.push(parse_reg(ln, a)?);
            }
            let mut rets = Vec::new();
            let tail = rest[close + 1..].trim();
            if let Some(rs) = tail.strip_prefix("=>") {
                for r in commas(rs) {
                    rets.push(parse_reg(ln, r)?);
                }
            }
            Ok(Op::Call { callee, args, rets })
        }
        "ret" => {
            let mut vals = Vec::new();
            for v in commas(rest) {
                vals.push(parse_reg(ln, v)?);
            }
            Ok(Op::Ret { vals })
        }
        "phi" => {
            // phi [L0: %r1, L1: %r2] => %r3
            let open = rest.find('[').ok_or_else(|| perr(ln, "phi needs `[`"))?;
            let close = rest.find(']').ok_or_else(|| perr(ln, "phi needs `]`"))?;
            let mut args = Vec::new();
            for pair in commas(&rest[open + 1..close]) {
                let colon = pair
                    .find(':')
                    .ok_or_else(|| perr(ln, "phi arg needs `:`"))?;
                let b = lookup_label(ln, labels, pair[..colon].trim())?;
                let r = parse_reg(ln, pair[colon + 1..].trim())?;
                args.push((b, r));
            }
            let d = rest[close + 1..]
                .trim()
                .strip_prefix("=>")
                .ok_or_else(|| perr(ln, "phi needs `=>`"))?
                .trim();
            Ok(Op::Phi {
                dst: parse_reg(ln, d)?,
                args,
            })
        }
        _ => {
            // cmp_XX / fcmp_XX, IBin[I] / FBin mnemonics.
            if let Some(k) = mn.strip_prefix("cmp_").and_then(cmp_kind) {
                let a = commas(&args_s);
                if a.len() != 2 {
                    return Err(perr(ln, "cmp needs two operands"));
                }
                return Ok(Op::ICmp {
                    kind: k,
                    lhs: parse_reg(ln, a[0])?,
                    rhs: parse_reg(ln, a[1])?,
                    dst: parse_reg(ln, &need_dst()?)?,
                });
            }
            if let Some(k) = mn.strip_prefix("fcmp_").and_then(cmp_kind) {
                let a = commas(&args_s);
                if a.len() != 2 {
                    return Err(perr(ln, "fcmp needs two operands"));
                }
                return Ok(Op::FCmp {
                    kind: k,
                    lhs: parse_reg(ln, a[0])?,
                    rhs: parse_reg(ln, a[1])?,
                    dst: parse_reg(ln, &need_dst()?)?,
                });
            }
            if let Some(base) = mn.strip_suffix('I') {
                if let Some(k) = ibin_kind(base) {
                    let a = commas(&args_s);
                    if a.len() != 2 {
                        return Err(perr(ln, "immediate op needs reg, imm"));
                    }
                    return Ok(Op::IBinI {
                        kind: k,
                        lhs: parse_reg(ln, a[0])?,
                        imm: parse_imm(ln, a[1])?,
                        dst: parse_reg(ln, &need_dst()?)?,
                    });
                }
            }
            if let Some(k) = ibin_kind(mn) {
                let a = commas(&args_s);
                if a.len() != 2 {
                    return Err(perr(ln, "binary op needs two operands"));
                }
                return Ok(Op::IBin {
                    kind: k,
                    lhs: parse_reg(ln, a[0])?,
                    rhs: parse_reg(ln, a[1])?,
                    dst: parse_reg(ln, &need_dst()?)?,
                });
            }
            if let Some(k) = fbin_kind(mn) {
                let a = commas(&args_s);
                if a.len() != 2 {
                    return Err(perr(ln, "binary op needs two operands"));
                }
                return Ok(Op::FBin {
                    kind: k,
                    lhs: parse_reg(ln, a[0])?,
                    rhs: parse_reg(ln, a[1])?,
                    dst: parse_reg(ln, &need_dst()?)?,
                });
            }
            Err(perr(ln, format!("unknown mnemonic `{mn}`")))
        }
    }
}

fn parse_ccm_ref(ln: usize, s: &str) -> PResult<u32> {
    let inner = s
        .strip_prefix("ccm[")
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| perr(ln, format!("expected ccm[OFF], found `{s}`")))?;
    inner.parse().map_err(|_| perr(ln, "bad ccm offset"))
}

/// Parses a complete module from IR text.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
///
/// # Example
///
/// ```
/// let text = "\
/// global g 8
/// func main() rets gpr locals 0 {
/// entry:
///     loadI 42 => %r64
///     ret %r64
/// }
/// ";
/// let m = iloc::parse_module(text).unwrap();
/// assert_eq!(m.functions.len(), 1);
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).parse_module()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::op::Op;

    #[test]
    fn parse_minimal_module() {
        let m = parse_module(
            "global g 16\nfunc main() locals 8 {\nentry:\n    loadI 1 => %r64\n    ret\n}\n",
        )
        .unwrap();
        assert_eq!(m.globals[0].size, 16);
        assert_eq!(m.functions[0].frame.locals_size, 8);
        assert_eq!(m.functions[0].blocks[0].instrs.len(), 2);
    }

    #[test]
    fn comments_are_stripped() {
        let m =
            parse_module("; leading comment\nfunc f() locals 0 {\nentry:\n    ret ; trailing\n}\n")
                .unwrap();
        assert_eq!(m.functions[0].instr_count(), 1);
    }

    #[test]
    fn forward_branch_targets_resolve() {
        let m =
            parse_module("func f() locals 0 {\nentry:\n    jump -> later\nlater:\n    ret\n}\n")
                .unwrap();
        let f = &m.functions[0];
        assert_eq!(f.successors(f.entry()), vec![BlockId(1)]);
    }

    #[test]
    fn unknown_label_is_error() {
        let e = parse_module("func f() locals 0 {\nentry:\n    jump -> nowhere\n}\n").unwrap_err();
        assert!(e.message.contains("unknown label"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn spill_tags_round_trip() {
        let text = "func f() locals 0 {\nentry:\n    storeAI %r64 => %r0, 8 !store(0)\n    loadAI %r0, 8 => %r64 !restore(0)\n    ret\n}\n";
        let m = parse_module(text).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.blocks[0].instrs[0].spill, SpillKind::Store(SlotId(0)));
        assert_eq!(f.blocks[0].instrs[1].spill, SpillKind::Restore(SlotId(0)));
    }

    #[test]
    fn print_parse_round_trip() {
        let mut fb = FuncBuilder::new("kernel");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let p = fb.param(RegClass::Gpr);
        let base = fb.loadsym("data");
        let idx = fb.mult(p, p);
        let addr = fb.add(base, idx);
        let x = fb.floadai(addr, 16);
        let y = fb.loadf(3.25);
        let z = fb.fmult(x, y);
        let c = fb.fcmp(CmpKind::Lt, z, y);
        let exit = fb.block("exit");
        let other = fb.block("other");
        fb.cbr(c, exit, other);
        fb.switch_to(other);
        let rets = fb.call("helper", &[p], &[RegClass::Fpr]);
        fb.fstoreai(rets[0], base, 0);
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(&[z]);
        let f = fb.finish();

        let mut m = Module::new();
        m.push_global(crate::module::Global::from_f64s("data", &[1.0, 2.0, 3.0]));
        m.push_function(f);

        let text = m.to_string();
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m, m2, "round trip failed; printed form:\n{text}");
    }

    #[test]
    fn phi_round_trip() {
        let text = "func f() locals 0 {\nentry:\n    jump -> join\njoin:\n    phi [entry: %r64, join: %r65] => %r66\n    jump -> join\n}\n";
        let m = parse_module(text).unwrap();
        let f = &m.functions[0];
        match &f.blocks[1].instrs[0].op {
            Op::Phi { dst, args } => {
                assert_eq!(*dst, Reg::gpr(66));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected phi, got {other:?}"),
        }
        let text2 = m.to_string();
        assert_eq!(m, parse_module(&text2).unwrap());
    }

    #[test]
    fn ccm_ops_round_trip() {
        let text = "func f() locals 0 {\nentry:\n    spill %r64 => ccm[12]\n    restore ccm[12] => %r65\n    fspill %f64 => ccm[16]\n    frestore ccm[16] => %f65\n    ret\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m, parse_module(&m.to_string()).unwrap());
        assert!(matches!(
            m.functions[0].blocks[0].instrs[0].op,
            Op::CcmStore { off: 12, .. }
        ));
    }

    #[test]
    fn slot_declarations_round_trip() {
        let text = "func f() locals 16 {\n  slot 0: gpr @ 16\n  slot 1: fpr @ 24 ccm\nentry:\n    ret\n}\n";
        let m = parse_module(text).unwrap();
        let fr = &m.functions[0].frame;
        assert_eq!(fr.slots.len(), 2);
        assert!(fr.slots[1].in_ccm);
        assert_eq!(m, parse_module(&m.to_string()).unwrap());
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    fn expect_err(text: &str, needle: &str) {
        let e = parse_module(text).expect_err("should fail");
        assert!(
            e.message.contains(needle),
            "error `{}` does not mention `{needle}`",
            e.message
        );
    }

    #[test]
    fn rejects_garbage_toplevel() {
        expect_err("banana\n", "expected `global` or `func`");
    }

    #[test]
    fn rejects_unterminated_function() {
        let e = parse_module("func f() locals 0 {\nentry:\n    ret\n").expect_err("eof");
        assert!(e.message.contains("unexpected end of input"));
    }

    #[test]
    fn rejects_bad_register() {
        expect_err(
            "func f() locals 0 {\nentry:\n    add %q1, %r2 => %r3\n    ret\n}\n",
            "register",
        );
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        expect_err(
            "func f() locals 0 {\nentry:\n    frobnicate %r1 => %r2\n    ret\n}\n",
            "unknown mnemonic",
        );
    }

    #[test]
    fn rejects_duplicate_label() {
        expect_err(
            "func f() locals 0 {\nentry:\n    ret\nentry:\n    ret\n}\n",
            "duplicate block label",
        );
    }

    #[test]
    fn rejects_instruction_before_label() {
        expect_err(
            "func f() locals 0 {\n    ret\n}\n",
            "before first block label",
        );
    }

    #[test]
    fn rejects_missing_arrow() {
        expect_err(
            "func f() locals 0 {\nentry:\n    i2i %r65\n    ret\n}\n",
            "missing `=>`",
        );
    }

    #[test]
    fn rejects_odd_hex_global() {
        expect_err("global g 4 = 0ab\n", "odd-length hex");
    }

    #[test]
    fn rejects_bad_ccm_reference() {
        expect_err(
            "func f() locals 0 {\nentry:\n    restore ccm(8) => %r64\n    ret\n}\n",
            "expected ccm[OFF]",
        );
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_module("global g 8\nfunc f() locals 0 {\nentry:\n    nope\n    ret\n}\n")
            .expect_err("bad mnemonic");
        assert_eq!(e.line, 4);
        // And the Display form mentions it.
        assert!(e.to_string().contains("line 4"));
    }
}
