//! Registers and register classes.

use std::fmt;

/// The first virtual-register index.
///
/// Indices below this value denote *physical* registers (colors assigned by
/// the register allocator, plus the reserved activation-record pointer).
/// Indices at or above it denote virtual registers produced by the front end
/// and the optimizer.
pub const FIRST_VREG: u32 = 64;

/// A register class: the machine has disjoint integer and floating-point
/// register files, mirroring the paper's 32 general-purpose + 32
/// floating-point register model.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegClass {
    /// General-purpose (integer / address) registers, printed `%rN`.
    Gpr,
    /// Floating-point registers, printed `%fN`.
    Fpr,
}

impl RegClass {
    /// Both classes, in a fixed order — handy for per-class loops.
    pub const ALL: [RegClass; 2] = [RegClass::Gpr, RegClass::Fpr];

    /// A small dense index (0 for GPR, 1 for FPR) for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Gpr => 0,
            RegClass::Fpr => 1,
        }
    }

    /// Size in bytes of a value of this class (`INTEGER` = 4, `REAL*8` = 8),
    /// matching the Fortran-derived codes of the paper.
    #[inline]
    pub fn value_size(self) -> u32 {
        match self {
            RegClass::Gpr => 4,
            RegClass::Fpr => 8,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Gpr => write!(f, "gpr"),
            RegClass::Fpr => write!(f, "fpr"),
        }
    }
}

/// A register: a class plus an index.
///
/// Indices `< FIRST_VREG` are physical; `>= FIRST_VREG` are virtual. The
/// distinguished register [`Reg::RARP`] (`%r0`) is the activation-record
/// pointer and is never allocated.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg {
    class: RegClass,
    index: u32,
}

impl Reg {
    /// The activation-record pointer (frame pointer), `%r0`. Reserved: the
    /// allocator never assigns it, and spill code addresses the frame
    /// through it.
    pub const RARP: Reg = Reg {
        class: RegClass::Gpr,
        index: 0,
    };

    /// Creates a general-purpose register with the given index.
    #[inline]
    pub fn gpr(index: u32) -> Reg {
        Reg {
            class: RegClass::Gpr,
            index,
        }
    }

    /// Creates a floating-point register with the given index.
    #[inline]
    pub fn fpr(index: u32) -> Reg {
        Reg {
            class: RegClass::Fpr,
            index,
        }
    }

    /// Creates a register of `class` with the given index.
    #[inline]
    pub fn new(class: RegClass, index: u32) -> Reg {
        Reg { class, index }
    }

    /// This register's class.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// This register's index within its class.
    #[inline]
    pub fn index(self) -> u32 {
        self.index
    }

    /// Whether this is a virtual register (index `>= FIRST_VREG`).
    #[inline]
    pub fn is_virtual(self) -> bool {
        self.index >= FIRST_VREG
    }

    /// Whether this is a physical register (including [`Reg::RARP`]).
    #[inline]
    pub fn is_physical(self) -> bool {
        !self.is_virtual()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Gpr => write!(f, "%r{}", self.index),
            RegClass::Fpr => write!(f, "%f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg::gpr(3).to_string(), "%r3");
        assert_eq!(Reg::fpr(64).to_string(), "%f64");
        assert_eq!(Reg::RARP.to_string(), "%r0");
    }

    #[test]
    fn virtual_physical_split() {
        assert!(Reg::gpr(FIRST_VREG).is_virtual());
        assert!(Reg::gpr(FIRST_VREG - 1).is_physical());
        assert!(Reg::RARP.is_physical());
    }

    #[test]
    fn value_sizes_match_fortran_model() {
        assert_eq!(RegClass::Gpr.value_size(), 4);
        assert_eq!(RegClass::Fpr.value_size(), 8);
    }

    #[test]
    fn class_indices_are_dense() {
        assert_eq!(RegClass::Gpr.index(), 0);
        assert_eq!(RegClass::Fpr.index(), 1);
        for (i, c) in RegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn ordering_is_class_then_index() {
        assert!(Reg::gpr(5) < Reg::fpr(0));
        assert!(Reg::gpr(1) < Reg::gpr(2));
    }
}
