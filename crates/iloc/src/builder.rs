//! A fluent builder for constructing functions.
//!
//! The builder tracks a *current block*; emit methods append to it and
//! return the freshly allocated destination register. Control-flow helpers
//! create and link blocks. The workload suite uses this interface to
//! generate its Fortran-kernel analogs.

use crate::block::BlockId;
use crate::func::Function;
use crate::op::{CmpKind, FBinKind, IBinKind, Instr, Op};
use crate::reg::{Reg, RegClass};

/// Builds a [`Function`] incrementally.
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: BlockId,
}

impl FuncBuilder {
    /// Starts building a function with the given name. The entry block is
    /// current initially.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        let func = Function::new(name);
        FuncBuilder {
            current: func.entry(),
            func,
        }
    }

    /// Declares a parameter of the given class and returns its register.
    pub fn param(&mut self, class: RegClass) -> Reg {
        let r = self.func.new_vreg(class);
        self.func.params.push(r);
        r
    }

    /// Declares the classes of the function's return values.
    pub fn set_ret_classes(&mut self, classes: &[RegClass]) {
        self.func.ret_classes = classes.to_vec();
    }

    /// Reserves `bytes` of local (program) data in the frame and returns the
    /// byte offset of the reservation, 8-byte aligned.
    pub fn alloc_local(&mut self, bytes: u32) -> u32 {
        let off = (self.func.frame.locals_size + 7) & !7;
        self.func.frame.locals_size = off + bytes;
        off
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.func.entry()
    }

    /// The block instructions are currently appended to.
    pub fn current(&self) -> BlockId {
        self.current
    }

    /// Creates a new empty block (does not switch to it).
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        self.func.add_block(label)
    }

    /// Makes `b` the current block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self, class: RegClass) -> Reg {
        self.func.new_vreg(class)
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, op: Op) {
        let cur = self.current;
        self.func.block_mut(cur).instrs.push(Instr::new(op));
    }

    // ---- constants -------------------------------------------------------

    /// `loadI imm => fresh` — integer constant.
    pub fn loadi(&mut self, imm: i64) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::LoadI { imm, dst });
        dst
    }

    /// `loadF imm => fresh` — floating-point constant.
    pub fn loadf(&mut self, imm: f64) -> Reg {
        let dst = self.vreg(RegClass::Fpr);
        self.emit(Op::LoadF { imm, dst });
        dst
    }

    /// `loadSym @name => fresh` — address of a global.
    pub fn loadsym(&mut self, sym: impl Into<String>) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::LoadSym {
            sym: sym.into(),
            dst,
        });
        dst
    }

    // ---- integer arithmetic ---------------------------------------------

    fn ibin(&mut self, kind: IBinKind, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::IBin {
            kind,
            lhs,
            rhs,
            dst,
        });
        dst
    }

    fn ibini(&mut self, kind: IBinKind, lhs: Reg, imm: i64) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::IBinI {
            kind,
            lhs,
            imm,
            dst,
        });
        dst
    }

    /// `add lhs, rhs => fresh`.
    pub fn add(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.ibin(IBinKind::Add, lhs, rhs)
    }

    /// `sub lhs, rhs => fresh`.
    pub fn sub(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.ibin(IBinKind::Sub, lhs, rhs)
    }

    /// `mult lhs, rhs => fresh`.
    pub fn mult(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.ibin(IBinKind::Mult, lhs, rhs)
    }

    /// `div lhs, rhs => fresh`.
    pub fn idiv(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.ibin(IBinKind::Div, lhs, rhs)
    }

    /// `addI lhs, imm => fresh`.
    pub fn addi(&mut self, lhs: Reg, imm: i64) -> Reg {
        self.ibini(IBinKind::Add, lhs, imm)
    }

    /// `subI lhs, imm => fresh`.
    pub fn subi(&mut self, lhs: Reg, imm: i64) -> Reg {
        self.ibini(IBinKind::Sub, lhs, imm)
    }

    /// `multI lhs, imm => fresh`.
    pub fn multi(&mut self, lhs: Reg, imm: i64) -> Reg {
        self.ibini(IBinKind::Mult, lhs, imm)
    }

    /// `lshiftI lhs, imm => fresh`.
    pub fn shli(&mut self, lhs: Reg, imm: i64) -> Reg {
        self.ibini(IBinKind::Shl, lhs, imm)
    }

    // ---- float arithmetic -------------------------------------------------

    fn fbin(&mut self, kind: FBinKind, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.vreg(RegClass::Fpr);
        self.emit(Op::FBin {
            kind,
            lhs,
            rhs,
            dst,
        });
        dst
    }

    /// `fadd lhs, rhs => fresh`.
    pub fn fadd(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.fbin(FBinKind::Add, lhs, rhs)
    }

    /// `fsub lhs, rhs => fresh`.
    pub fn fsub(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.fbin(FBinKind::Sub, lhs, rhs)
    }

    /// `fmult lhs, rhs => fresh`.
    pub fn fmult(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.fbin(FBinKind::Mult, lhs, rhs)
    }

    /// `fdiv lhs, rhs => fresh`.
    pub fn fdiv(&mut self, lhs: Reg, rhs: Reg) -> Reg {
        self.fbin(FBinKind::Div, lhs, rhs)
    }

    // ---- compares, copies, conversions ------------------------------------

    /// Integer compare producing 0/1.
    pub fn icmp(&mut self, kind: CmpKind, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::ICmp {
            kind,
            lhs,
            rhs,
            dst,
        });
        dst
    }

    /// Floating compare producing 0/1 in an integer register.
    pub fn fcmp(&mut self, kind: CmpKind, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::FCmp {
            kind,
            lhs,
            rhs,
            dst,
        });
        dst
    }

    /// Integer copy `i2i src => fresh`.
    pub fn copy(&mut self, src: Reg) -> Reg {
        match src.class() {
            RegClass::Gpr => {
                let dst = self.vreg(RegClass::Gpr);
                self.emit(Op::I2I { src, dst });
                dst
            }
            RegClass::Fpr => {
                let dst = self.vreg(RegClass::Fpr);
                self.emit(Op::F2F { src, dst });
                dst
            }
        }
    }

    /// Convert integer → float.
    pub fn i2f(&mut self, src: Reg) -> Reg {
        let dst = self.vreg(RegClass::Fpr);
        self.emit(Op::I2F { src, dst });
        dst
    }

    /// Convert float → integer (truncating).
    pub fn f2i(&mut self, src: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::F2I { src, dst });
        dst
    }

    // ---- memory ------------------------------------------------------------

    /// Integer load `load addr => fresh`.
    pub fn load(&mut self, addr: Reg) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::Load { addr, dst });
        dst
    }

    /// Integer load `loadAI addr, off => fresh`.
    pub fn loadai(&mut self, addr: Reg, off: i64) -> Reg {
        let dst = self.vreg(RegClass::Gpr);
        self.emit(Op::LoadAI { addr, off, dst });
        dst
    }

    /// Integer store.
    pub fn store(&mut self, val: Reg, addr: Reg) {
        self.emit(Op::Store { val, addr });
    }

    /// Integer store with offset.
    pub fn storeai(&mut self, val: Reg, addr: Reg, off: i64) {
        self.emit(Op::StoreAI { val, addr, off });
    }

    /// Float load `fload addr => fresh`.
    pub fn fload(&mut self, addr: Reg) -> Reg {
        let dst = self.vreg(RegClass::Fpr);
        self.emit(Op::FLoad { addr, dst });
        dst
    }

    /// Float load with offset.
    pub fn floadai(&mut self, addr: Reg, off: i64) -> Reg {
        let dst = self.vreg(RegClass::Fpr);
        self.emit(Op::FLoadAI { addr, off, dst });
        dst
    }

    /// Float store.
    pub fn fstore(&mut self, val: Reg, addr: Reg) {
        self.emit(Op::FStore { val, addr });
    }

    /// Float store with offset.
    pub fn fstoreai(&mut self, val: Reg, addr: Reg, off: i64) {
        self.emit(Op::FStoreAI { val, addr, off });
    }

    // ---- control flow -------------------------------------------------------

    /// `jump -> target`.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Op::Jump { target });
    }

    /// `cbr cond -> taken, not_taken`.
    pub fn cbr(&mut self, cond: Reg, taken: BlockId, not_taken: BlockId) {
        self.emit(Op::Cbr {
            cond,
            taken,
            not_taken,
        });
    }

    /// Direct call returning `ret_classes.len()` fresh registers.
    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: &[Reg],
        ret_classes: &[RegClass],
    ) -> Vec<Reg> {
        let rets: Vec<Reg> = ret_classes.iter().map(|c| self.vreg(*c)).collect();
        self.emit(Op::Call {
            callee: callee.into(),
            args: args.to_vec(),
            rets: rets.clone(),
        });
        rets
    }

    /// `ret vals...`.
    pub fn ret(&mut self, vals: &[Reg]) {
        self.emit(Op::Ret {
            vals: vals.to_vec(),
        });
    }

    /// Finishes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    // ---- structured-loop helper ----------------------------------------------

    /// Emits a counted loop `for iv in start..bound step step { body }`.
    ///
    /// Creates header/body/exit blocks, calls `body(self, iv)` with the
    /// induction-variable register while the body block is current, then
    /// leaves the *exit* block current. `start`, `bound` are immediates;
    /// the induction variable is a fresh integer vreg updated with `addI`.
    ///
    /// The generated shape is the canonical one our loop unroller and the
    /// suite rely on:
    ///
    /// ```text
    ///        iv0 = start; jump header
    /// header: iv = φ-like via copy chain (non-SSA: single reg reused)
    ///        t = cmp_lt iv, bound; cbr t -> body, exit
    /// body:  ... ; iv += step; jump header
    /// exit:
    /// ```
    pub fn counted_loop(
        &mut self,
        start: i64,
        bound: i64,
        step: i64,
        body: impl FnOnce(&mut FuncBuilder, Reg),
    ) -> Reg {
        assert!(step != 0, "loop step must be nonzero");
        let iv = self.vreg(RegClass::Gpr);
        self.emit(Op::LoadI {
            imm: start,
            dst: iv,
        });
        let n = self.func.blocks.len();
        let header = self.block(format!("loop{n}_header"));
        let body_b = self.block(format!("loop{n}_body"));
        let exit = self.block(format!("loop{n}_exit"));
        self.jump(header);
        self.switch_to(header);
        let bound_r = self.loadi(bound);
        let kind = if step > 0 { CmpKind::Lt } else { CmpKind::Gt };
        let cond = self.icmp(kind, iv, bound_r);
        self.cbr(cond, body_b, exit);
        self.switch_to(body_b);
        body(self, iv);
        let next = self.addi(iv, step);
        self.emit(Op::I2I { src: next, dst: iv });
        self.jump(header);
        self.switch_to(exit);
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn straight_line_build_verifies() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.loadi(2);
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let f = fb.finish();
        assert_eq!(f.instr_count(), 4);
        verify_function(&f).unwrap();
    }

    #[test]
    fn counted_loop_shape() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 4); // entry, header, body, exit
        verify_function(&f).unwrap();
        // Header ends in cbr with two successors.
        let header = &f.blocks[1];
        assert_eq!(header.successors().len(), 2);
    }

    #[test]
    fn params_recorded_in_order() {
        let mut fb = FuncBuilder::new("f");
        let p0 = fb.param(RegClass::Gpr);
        let p1 = fb.param(RegClass::Fpr);
        fb.ret(&[]);
        let f = fb.finish();
        assert_eq!(f.params, vec![p0, p1]);
    }

    #[test]
    fn locals_are_eight_byte_aligned() {
        let mut fb = FuncBuilder::new("f");
        let a = fb.alloc_local(4);
        let b = fb.alloc_local(16);
        assert_eq!(a, 0);
        assert_eq!(b, 8);
        fb.ret(&[]);
        assert_eq!(fb.finish().frame.locals_size, 24);
    }
}
