//! IR well-formedness checking.
//!
//! The verifier enforces the structural rules the analyses and the
//! simulator rely on: every block ends in exactly one terminator, branch
//! targets exist, φ-nodes lead their blocks and name actual predecessors,
//! register classes match opcode signatures, and calls/returns agree with
//! the named function's signature.

use std::collections::HashSet;
use std::fmt;

use crate::block::BlockId;
use crate::func::Function;
use crate::module::Module;
use crate::op::Op;
use crate::reg::RegClass;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the failure occurred (empty for module-level).
    pub function: String,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "verify error: {}", self.message)
        } else {
            write!(f, "verify error in `{}`: {}", self.function, self.message)
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(function: &str, message: impl Into<String>) -> VerifyError {
    VerifyError {
        function: function.to_string(),
        message: message.into(),
    }
}

/// Verifies a single function in isolation (no cross-function checks).
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let n = f.blocks.len();
    if n == 0 {
        return Err(err(&f.name, "function has no blocks"));
    }

    let mut labels = HashSet::new();
    for b in &f.blocks {
        if !labels.insert(b.label.as_str()) {
            return Err(err(&f.name, format!("duplicate block label `{}`", b.label)));
        }
    }

    let preds = f.predecessors();

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if b.instrs.is_empty() {
            return Err(err(&f.name, format!("block `{}` is empty", b.label)));
        }
        let last = b.instrs.len() - 1;
        for (ii, instr) in b.instrs.iter().enumerate() {
            let op = &instr.op;
            if op.is_terminator() != (ii == last) {
                return Err(err(
                    &f.name,
                    format!(
                        "block `{}` instr {}: terminator placement (only the last instruction may be a terminator, and it must be one)",
                        b.label, ii
                    ),
                ));
            }
            if matches!(op, Op::Phi { .. }) && ii >= b.phi_count() {
                return Err(err(
                    &f.name,
                    format!("block `{}`: phi not at block head", b.label),
                ));
            }
            for t in op.successors() {
                if t.index() >= n {
                    return Err(err(
                        &f.name,
                        format!("block `{}`: branch to nonexistent block {}", b.label, t),
                    ));
                }
            }
            check_classes(f, &b.label, op)?;
            if let Op::Phi { args, .. } = op {
                let ps: HashSet<BlockId> = preds[bid.index()].iter().copied().collect();
                for (pb, _) in args {
                    if !ps.contains(pb) {
                        return Err(err(
                            &f.name,
                            format!(
                                "block `{}`: phi names non-predecessor `{}`",
                                b.label,
                                f.block(*pb).label
                            ),
                        ));
                    }
                }
            }
            if let Op::Ret { vals } = op {
                if vals.len() != f.ret_classes.len() {
                    return Err(err(
                        &f.name,
                        format!(
                            "ret with {} values but signature declares {}",
                            vals.len(),
                            f.ret_classes.len()
                        ),
                    ));
                }
                for (v, c) in vals.iter().zip(&f.ret_classes) {
                    if v.class() != *c {
                        return Err(err(&f.name, "ret value class mismatch"));
                    }
                }
            }
            if let Some(slot) = instr.spill_slot() {
                if slot.index() >= f.frame.slots.len() {
                    return Err(err(
                        &f.name,
                        format!("spill tag names nonexistent {}", slot),
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_classes(f: &Function, label: &str, op: &Op) -> Result<(), VerifyError> {
    let want_gpr = |r: crate::reg::Reg, what: &str| -> Result<(), VerifyError> {
        if r.class() != RegClass::Gpr {
            Err(err(
                &f.name,
                format!("block `{label}`: {what} of `{op:?}` must be a GPR"),
            ))
        } else {
            Ok(())
        }
    };
    let want_fpr = |r: crate::reg::Reg, what: &str| -> Result<(), VerifyError> {
        if r.class() != RegClass::Fpr {
            Err(err(
                &f.name,
                format!("block `{label}`: {what} of `{op:?}` must be an FPR"),
            ))
        } else {
            Ok(())
        }
    };

    match op {
        Op::IBin { lhs, rhs, dst, .. } | Op::ICmp { lhs, rhs, dst, .. } => {
            want_gpr(*lhs, "lhs")?;
            want_gpr(*rhs, "rhs")?;
            want_gpr(*dst, "dst")?;
        }
        Op::IBinI { lhs, dst, .. } => {
            want_gpr(*lhs, "lhs")?;
            want_gpr(*dst, "dst")?;
        }
        Op::FBin { lhs, rhs, dst, .. } => {
            want_fpr(*lhs, "lhs")?;
            want_fpr(*rhs, "rhs")?;
            want_fpr(*dst, "dst")?;
        }
        Op::FCmp { lhs, rhs, dst, .. } => {
            want_fpr(*lhs, "lhs")?;
            want_fpr(*rhs, "rhs")?;
            want_gpr(*dst, "dst")?;
        }
        Op::I2I { src, dst } => {
            want_gpr(*src, "src")?;
            want_gpr(*dst, "dst")?;
        }
        Op::F2F { src, dst } => {
            want_fpr(*src, "src")?;
            want_fpr(*dst, "dst")?;
        }
        Op::I2F { src, dst } => {
            want_gpr(*src, "src")?;
            want_fpr(*dst, "dst")?;
        }
        Op::F2I { src, dst } => {
            want_fpr(*src, "src")?;
            want_gpr(*dst, "dst")?;
        }
        Op::LoadI { dst, .. } | Op::LoadSym { dst, .. } => want_gpr(*dst, "dst")?,
        Op::LoadF { dst, .. } => want_fpr(*dst, "dst")?,
        Op::Load { addr, dst } => {
            want_gpr(*addr, "addr")?;
            want_gpr(*dst, "dst")?;
        }
        Op::LoadAI { addr, dst, .. } => {
            want_gpr(*addr, "addr")?;
            want_gpr(*dst, "dst")?;
        }
        Op::FLoad { addr, dst } => {
            want_gpr(*addr, "addr")?;
            want_fpr(*dst, "dst")?;
        }
        Op::FLoadAI { addr, dst, .. } => {
            want_gpr(*addr, "addr")?;
            want_fpr(*dst, "dst")?;
        }
        Op::Store { val, addr } => {
            want_gpr(*val, "val")?;
            want_gpr(*addr, "addr")?;
        }
        Op::StoreAI { val, addr, .. } => {
            want_gpr(*val, "val")?;
            want_gpr(*addr, "addr")?;
        }
        Op::FStore { val, addr } => {
            want_fpr(*val, "val")?;
            want_gpr(*addr, "addr")?;
        }
        Op::FStoreAI { val, addr, .. } => {
            want_fpr(*val, "val")?;
            want_gpr(*addr, "addr")?;
        }
        Op::CcmStore { val, .. } => want_gpr(*val, "val")?,
        Op::CcmLoad { dst, .. } => want_gpr(*dst, "dst")?,
        Op::CcmFStore { val, .. } => want_fpr(*val, "val")?,
        Op::CcmFLoad { dst, .. } => want_fpr(*dst, "dst")?,
        Op::Cbr { cond, .. } => want_gpr(*cond, "cond")?,
        Op::Phi { dst, args } => {
            for (_, r) in args {
                if r.class() != dst.class() {
                    return Err(err(
                        &f.name,
                        format!("block `{label}`: phi argument class mismatch"),
                    ));
                }
            }
        }
        Op::Jump { .. } | Op::Call { .. } | Op::Ret { .. } | Op::Nop => {}
    }
    Ok(())
}

/// Verifies every function plus module-level rules: unique global names,
/// and every [`Op::Call`]/[`Op::LoadSym`] referring to an entity that
/// exists with a matching signature.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut globals = HashSet::new();
    for g in &m.globals {
        if !globals.insert(g.name.as_str()) {
            return Err(err("", format!("duplicate global `{}`", g.name)));
        }
        if g.init.len() > g.size as usize {
            return Err(err(
                "",
                format!("global `{}` initializer exceeds its size", g.name),
            ));
        }
    }
    let mut names = HashSet::new();
    for f in &m.functions {
        if !names.insert(f.name.as_str()) {
            return Err(err("", format!("duplicate function `{}`", f.name)));
        }
    }
    for f in &m.functions {
        verify_function(f)?;
        for b in &f.blocks {
            for i in &b.instrs {
                match &i.op {
                    Op::Call { callee, args, rets } => {
                        let target = m.function(callee).ok_or_else(|| {
                            err(&f.name, format!("call to unknown function `{callee}`"))
                        })?;
                        if args.len() != target.params.len() {
                            return Err(err(
                                &f.name,
                                format!(
                                    "call to `{callee}` passes {} args, expects {}",
                                    args.len(),
                                    target.params.len()
                                ),
                            ));
                        }
                        for (a, p) in args.iter().zip(&target.params) {
                            if a.class() != p.class() {
                                return Err(err(
                                    &f.name,
                                    format!("call to `{callee}`: argument class mismatch"),
                                ));
                            }
                        }
                        if rets.len() != target.ret_classes.len() {
                            return Err(err(
                                &f.name,
                                format!(
                                    "call to `{callee}` expects {} returns, function declares {}",
                                    rets.len(),
                                    target.ret_classes.len()
                                ),
                            ));
                        }
                        for (r, c) in rets.iter().zip(&target.ret_classes) {
                            if r.class() != *c {
                                return Err(err(
                                    &f.name,
                                    format!("call to `{callee}`: return class mismatch"),
                                ));
                            }
                        }
                    }
                    Op::LoadSym { sym, .. } if m.global(sym).is_none() => {
                        return Err(err(&f.name, format!("loadSym of unknown global `{sym}`")));
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Global;
    use crate::op::Instr;
    use crate::reg::Reg;

    #[test]
    fn missing_terminator_rejected() {
        let mut f = Function::new("f");
        f.block_mut(BlockId(0)).instrs.push(Instr::new(Op::LoadI {
            imm: 0,
            dst: Reg::gpr(64),
        }));
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn terminator_in_middle_rejected() {
        let mut f = Function::new("f");
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn class_mismatch_rejected() {
        let mut f = Function::new("f");
        f.block_mut(BlockId(0)).instrs.push(Instr::new(Op::I2F {
            src: Reg::fpr(64), // wrong: src must be GPR
            dst: Reg::fpr(65),
        }));
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn call_signature_checked() {
        let mut callee = FuncBuilder::new("callee");
        callee.param(RegClass::Gpr);
        callee.ret(&[]);

        let mut caller = FuncBuilder::new("caller");
        caller.emit(Op::Call {
            callee: "callee".into(),
            args: vec![], // wrong arity
            rets: vec![],
        });
        caller.ret(&[]);

        let mut m = Module::new();
        m.push_function(callee.finish());
        m.push_function(caller.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("args"));
    }

    #[test]
    fn unknown_global_rejected() {
        let mut fb = FuncBuilder::new("f");
        fb.loadsym("nope");
        fb.ret(&[]);
        let mut m = Module::new();
        m.push_function(fb.finish());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn clean_module_passes() {
        let mut fb = FuncBuilder::new("main");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let g = fb.loadsym("g");
        let v = fb.loadai(g, 0);
        fb.ret(&[v]);
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_function(fb.finish());
        verify_module(&m).unwrap();
    }

    #[test]
    fn phi_must_name_predecessors() {
        let mut f = Function::new("f");
        let e = f.entry();
        let j = f.add_block("join");
        let other = f.add_block("other");
        f.block_mut(e)
            .instrs
            .push(Instr::new(Op::Jump { target: j }));
        f.block_mut(j).instrs.push(Instr::new(Op::Phi {
            dst: Reg::gpr(70),
            args: vec![(other, Reg::gpr(64))], // `other` is not a pred of join
        }));
        f.block_mut(j)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        f.block_mut(other)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("non-predecessor"));
    }

    #[test]
    fn ret_arity_must_match_signature() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        fb.ret(&[]); // missing the declared return value
        assert!(verify_function(&fb.finish()).is_err());
    }
}
