//! Instructions and opcodes.

use crate::block::BlockId;
use crate::func::{SlotId, SpillKind};
use crate::reg::{Reg, RegClass};

/// Integer binary operation kinds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IBinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mult,
    /// Signed division (traps on zero divisor).
    Div,
    /// Signed remainder (traps on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Left shift (count taken mod 32).
    Shl,
    /// Arithmetic right shift (count taken mod 32).
    Shr,
}

impl IBinKind {
    /// The ILOC mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IBinKind::Add => "add",
            IBinKind::Sub => "sub",
            IBinKind::Mult => "mult",
            IBinKind::Div => "div",
            IBinKind::Rem => "rem",
            IBinKind::And => "and",
            IBinKind::Or => "or",
            IBinKind::Xor => "xor",
            IBinKind::Shl => "lshift",
            IBinKind::Shr => "rshift",
        }
    }

    /// Whether `x OP y == y OP x` for all inputs.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            IBinKind::Add | IBinKind::Mult | IBinKind::And | IBinKind::Or | IBinKind::Xor
        )
    }

    /// All kinds, for exhaustive testing.
    pub const ALL: [IBinKind; 10] = [
        IBinKind::Add,
        IBinKind::Sub,
        IBinKind::Mult,
        IBinKind::Div,
        IBinKind::Rem,
        IBinKind::And,
        IBinKind::Or,
        IBinKind::Xor,
        IBinKind::Shl,
        IBinKind::Shr,
    ];
}

/// Floating-point binary operation kinds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FBinKind {
    /// IEEE-754 addition.
    Add,
    /// IEEE-754 subtraction.
    Sub,
    /// IEEE-754 multiplication.
    Mult,
    /// IEEE-754 division.
    Div,
}

impl FBinKind {
    /// The ILOC mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FBinKind::Add => "fadd",
            FBinKind::Sub => "fsub",
            FBinKind::Mult => "fmult",
            FBinKind::Div => "fdiv",
        }
    }

    /// Whether the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(self, FBinKind::Add | FBinKind::Mult)
    }

    /// All kinds, for exhaustive testing.
    pub const ALL: [FBinKind; 4] = [FBinKind::Add, FBinKind::Sub, FBinKind::Mult, FBinKind::Div];
}

/// Comparison kinds (shared by integer and floating-point compares).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpKind {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpKind {
    /// The mnemonic suffix (`cmp_LT` style in classic ILOC; we use lowercase).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpKind {
        match self {
            CmpKind::Lt => CmpKind::Gt,
            CmpKind::Le => CmpKind::Ge,
            CmpKind::Gt => CmpKind::Lt,
            CmpKind::Ge => CmpKind::Le,
            CmpKind::Eq => CmpKind::Eq,
            CmpKind::Ne => CmpKind::Ne,
        }
    }

    /// The logically negated comparison (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpKind {
        match self {
            CmpKind::Lt => CmpKind::Ge,
            CmpKind::Le => CmpKind::Gt,
            CmpKind::Gt => CmpKind::Le,
            CmpKind::Ge => CmpKind::Lt,
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
        }
    }

    /// All kinds, for exhaustive testing.
    pub const ALL: [CmpKind; 6] = [
        CmpKind::Lt,
        CmpKind::Le,
        CmpKind::Gt,
        CmpKind::Ge,
        CmpKind::Eq,
        CmpKind::Ne,
    ];
}

/// An ILOC operation.
///
/// Main-memory accesses (`Load*`/`Store*`) live in the ordinary address
/// space and cost two cycles in the paper's machine model. The `Ccm*`
/// operations access the **compiler-controlled memory**, a small disjoint
/// address space reached by absolute offsets, and cost a single cycle.
///
/// Field meanings follow each variant's doc comment, which gives the full
/// assembly syntax (destinations after `=>`).
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum Op {
    /// `loadI imm => dst` — integer constant.
    LoadI { imm: i64, dst: Reg },
    /// `loadF imm => dst` — floating-point constant.
    LoadF { imm: f64, dst: Reg },
    /// `loadSym @name => dst` — address of a module global.
    LoadSym { sym: String, dst: Reg },

    /// Integer three-address arithmetic: `kind lhs, rhs => dst`.
    IBin {
        kind: IBinKind,
        lhs: Reg,
        rhs: Reg,
        dst: Reg,
    },
    /// Integer register-immediate arithmetic: `kindI lhs, imm => dst`.
    IBinI {
        kind: IBinKind,
        lhs: Reg,
        imm: i64,
        dst: Reg,
    },
    /// Floating-point three-address arithmetic.
    FBin {
        kind: FBinKind,
        lhs: Reg,
        rhs: Reg,
        dst: Reg,
    },
    /// Integer compare producing 0/1 in an integer register.
    ICmp {
        kind: CmpKind,
        lhs: Reg,
        rhs: Reg,
        dst: Reg,
    },
    /// Floating-point compare producing 0/1 in an *integer* register.
    FCmp {
        kind: CmpKind,
        lhs: Reg,
        rhs: Reg,
        dst: Reg,
    },

    /// `i2i src => dst` — integer register copy.
    I2I { src: Reg, dst: Reg },
    /// `f2f src => dst` — floating-point register copy.
    F2F { src: Reg, dst: Reg },
    /// `i2f src => dst` — convert integer to floating point.
    I2F { src: Reg, dst: Reg },
    /// `f2i src => dst` — truncate floating point to integer.
    F2I { src: Reg, dst: Reg },

    /// `load addr => dst` — 4-byte integer load from main memory.
    Load { addr: Reg, dst: Reg },
    /// `loadAI addr, off => dst` — integer load at `addr + off`.
    LoadAI { addr: Reg, off: i64, dst: Reg },
    /// `store val => addr` — 4-byte integer store to main memory.
    Store { val: Reg, addr: Reg },
    /// `storeAI val => addr, off` — integer store at `addr + off`.
    StoreAI { val: Reg, addr: Reg, off: i64 },
    /// `fload addr => dst` — 8-byte float load from main memory.
    FLoad { addr: Reg, dst: Reg },
    /// `floadAI addr, off => dst` — float load at `addr + off`.
    FLoadAI { addr: Reg, off: i64, dst: Reg },
    /// `fstore val => addr` — 8-byte float store to main memory.
    FStore { val: Reg, addr: Reg },
    /// `fstoreAI val => addr, off` — float store at `addr + off`.
    FStoreAI { val: Reg, addr: Reg, off: i64 },

    /// `spill val => ccm[off]` — integer store into the CCM (1 cycle).
    CcmStore { val: Reg, off: u32 },
    /// `restore ccm[off] => dst` — integer load from the CCM (1 cycle).
    CcmLoad { off: u32, dst: Reg },
    /// `fspill val => ccm[off]` — float store into the CCM (1 cycle).
    CcmFStore { val: Reg, off: u32 },
    /// `frestore ccm[off] => dst` — float load from the CCM (1 cycle).
    CcmFLoad { off: u32, dst: Reg },

    /// `jump -> target`.
    Jump { target: BlockId },
    /// `cbr cond -> taken, fallthrough` — branch if `cond != 0`.
    Cbr {
        cond: Reg,
        taken: BlockId,
        not_taken: BlockId,
    },
    /// `call name(args...) => rets...` — direct call.
    Call {
        callee: String,
        args: Vec<Reg>,
        rets: Vec<Reg>,
    },
    /// `ret vals...`.
    Ret { vals: Vec<Reg> },

    /// SSA φ-node: `dst = φ(block₁: reg₁, …)`. Only present while the
    /// function is in SSA form.
    Phi { dst: Reg, args: Vec<(BlockId, Reg)> },

    /// No operation (used transiently by rewriting passes).
    Nop,
}

impl Op {
    /// Whether this operation ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Jump { .. } | Op::Cbr { .. } | Op::Ret { .. })
    }

    /// Whether this operation touches *main* memory (2-cycle cost in the
    /// paper's machine model). CCM operations are **not** main-memory ops.
    pub fn is_main_memory_op(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::LoadAI { .. }
                | Op::Store { .. }
                | Op::StoreAI { .. }
                | Op::FLoad { .. }
                | Op::FLoadAI { .. }
                | Op::FStore { .. }
                | Op::FStoreAI { .. }
        )
    }

    /// Whether this operation touches the compiler-controlled memory.
    pub fn is_ccm_op(&self) -> bool {
        matches!(
            self,
            Op::CcmStore { .. } | Op::CcmLoad { .. } | Op::CcmFStore { .. } | Op::CcmFLoad { .. }
        )
    }

    /// Whether this is a register-to-register copy of either class.
    pub fn is_copy(&self) -> bool {
        matches!(self, Op::I2I { .. } | Op::F2F { .. })
    }

    /// Whether this is a memory *read* (main memory or CCM).
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::LoadAI { .. }
                | Op::FLoad { .. }
                | Op::FLoadAI { .. }
                | Op::CcmLoad { .. }
                | Op::CcmFLoad { .. }
        )
    }

    /// Whether this is a memory *write* (main memory or CCM).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Op::Store { .. }
                | Op::StoreAI { .. }
                | Op::FStore { .. }
                | Op::FStoreAI { .. }
                | Op::CcmStore { .. }
                | Op::CcmFStore { .. }
        )
    }

    /// Whether the operation has side effects beyond its register defs
    /// (stores, calls, control flow) and therefore may not be removed by
    /// dead-code elimination even if its results are unused.
    pub fn has_side_effects(&self) -> bool {
        self.is_store() || matches!(self, Op::Call { .. }) || self.is_terminator()
    }

    /// Visits every register *used* (read) by this operation.
    pub fn visit_uses(&self, mut f: impl FnMut(Reg)) {
        match self {
            Op::LoadI { .. } | Op::LoadF { .. } | Op::LoadSym { .. } | Op::Nop => {}
            Op::IBin { lhs, rhs, .. }
            | Op::FBin { lhs, rhs, .. }
            | Op::ICmp { lhs, rhs, .. }
            | Op::FCmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Op::IBinI { lhs, .. } => f(*lhs),
            Op::I2I { src, .. }
            | Op::F2F { src, .. }
            | Op::I2F { src, .. }
            | Op::F2I { src, .. } => f(*src),
            Op::Load { addr, .. } | Op::FLoad { addr, .. } => f(*addr),
            Op::LoadAI { addr, .. } | Op::FLoadAI { addr, .. } => f(*addr),
            Op::Store { val, addr } | Op::FStore { val, addr } => {
                f(*val);
                f(*addr);
            }
            Op::StoreAI { val, addr, .. } | Op::FStoreAI { val, addr, .. } => {
                f(*val);
                f(*addr);
            }
            Op::CcmStore { val, .. } | Op::CcmFStore { val, .. } => f(*val),
            Op::CcmLoad { .. } | Op::CcmFLoad { .. } => {}
            Op::Jump { .. } => {}
            Op::Cbr { cond, .. } => f(*cond),
            Op::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Op::Ret { vals } => {
                for v in vals {
                    f(*v);
                }
            }
            Op::Phi { args, .. } => {
                for (_, r) in args {
                    f(*r);
                }
            }
        }
    }

    /// Visits every register *defined* (written) by this operation.
    pub fn visit_defs(&self, mut f: impl FnMut(Reg)) {
        match self {
            Op::LoadI { dst, .. }
            | Op::LoadF { dst, .. }
            | Op::LoadSym { dst, .. }
            | Op::IBin { dst, .. }
            | Op::IBinI { dst, .. }
            | Op::FBin { dst, .. }
            | Op::ICmp { dst, .. }
            | Op::FCmp { dst, .. }
            | Op::I2I { dst, .. }
            | Op::F2F { dst, .. }
            | Op::I2F { dst, .. }
            | Op::F2I { dst, .. }
            | Op::Load { dst, .. }
            | Op::LoadAI { dst, .. }
            | Op::FLoad { dst, .. }
            | Op::FLoadAI { dst, .. }
            | Op::CcmLoad { dst, .. }
            | Op::CcmFLoad { dst, .. }
            | Op::Phi { dst, .. } => f(*dst),
            Op::Call { rets, .. } => {
                for r in rets {
                    f(*r);
                }
            }
            Op::Store { .. }
            | Op::StoreAI { .. }
            | Op::FStore { .. }
            | Op::FStoreAI { .. }
            | Op::CcmStore { .. }
            | Op::CcmFStore { .. }
            | Op::Jump { .. }
            | Op::Cbr { .. }
            | Op::Ret { .. }
            | Op::Nop => {}
        }
    }

    /// Collects the used registers into a vector (convenience wrapper
    /// around [`Op::visit_uses`]).
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.visit_uses(|r| v.push(r));
        v
    }

    /// Collects the defined registers into a vector.
    pub fn defs(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.visit_defs(|r| v.push(r));
        v
    }

    /// Rewrites every *use* through `f` (register renaming).
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::LoadI { .. } | Op::LoadF { .. } | Op::LoadSym { .. } | Op::Nop => {}
            Op::IBin { lhs, rhs, .. }
            | Op::FBin { lhs, rhs, .. }
            | Op::ICmp { lhs, rhs, .. }
            | Op::FCmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::IBinI { lhs, .. } => *lhs = f(*lhs),
            Op::I2I { src, .. }
            | Op::F2F { src, .. }
            | Op::I2F { src, .. }
            | Op::F2I { src, .. } => *src = f(*src),
            Op::Load { addr, .. } | Op::FLoad { addr, .. } => *addr = f(*addr),
            Op::LoadAI { addr, .. } | Op::FLoadAI { addr, .. } => *addr = f(*addr),
            Op::Store { val, addr } | Op::FStore { val, addr } => {
                *val = f(*val);
                *addr = f(*addr);
            }
            Op::StoreAI { val, addr, .. } | Op::FStoreAI { val, addr, .. } => {
                *val = f(*val);
                *addr = f(*addr);
            }
            Op::CcmStore { val, .. } | Op::CcmFStore { val, .. } => *val = f(*val),
            Op::CcmLoad { .. } | Op::CcmFLoad { .. } => {}
            Op::Jump { .. } => {}
            Op::Cbr { cond, .. } => *cond = f(*cond),
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::Ret { vals } => {
                for v in vals {
                    *v = f(*v);
                }
            }
            Op::Phi { args, .. } => {
                for (_, r) in args {
                    *r = f(*r);
                }
            }
        }
    }

    /// Rewrites every *def* through `f` (register renaming).
    pub fn map_defs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::LoadI { dst, .. }
            | Op::LoadF { dst, .. }
            | Op::LoadSym { dst, .. }
            | Op::IBin { dst, .. }
            | Op::IBinI { dst, .. }
            | Op::FBin { dst, .. }
            | Op::ICmp { dst, .. }
            | Op::FCmp { dst, .. }
            | Op::I2I { dst, .. }
            | Op::F2F { dst, .. }
            | Op::I2F { dst, .. }
            | Op::F2I { dst, .. }
            | Op::Load { dst, .. }
            | Op::LoadAI { dst, .. }
            | Op::FLoad { dst, .. }
            | Op::FLoadAI { dst, .. }
            | Op::CcmLoad { dst, .. }
            | Op::CcmFLoad { dst, .. }
            | Op::Phi { dst, .. } => *dst = f(*dst),
            Op::Call { rets, .. } => {
                for r in rets {
                    *r = f(*r);
                }
            }
            _ => {}
        }
    }

    /// Successor blocks named by this operation (empty unless terminator).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Jump { target } => vec![*target],
            Op::Cbr {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            _ => Vec::new(),
        }
    }

    /// Rewrites successor block ids through `f` (used by CFG editing).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Op::Jump { target } => *target = f(*target),
            Op::Cbr {
                taken, not_taken, ..
            } => {
                *taken = f(*taken);
                *not_taken = f(*not_taken);
            }
            Op::Phi { args, .. } => {
                for (b, _) in args {
                    *b = f(*b);
                }
            }
            _ => {}
        }
    }

    /// The register class a destination of this op must have, if the op has
    /// exactly one destination with a fixed class. Used by the verifier.
    pub fn fixed_dst_class(&self) -> Option<RegClass> {
        match self {
            Op::LoadI { .. }
            | Op::LoadSym { .. }
            | Op::IBin { .. }
            | Op::IBinI { .. }
            | Op::ICmp { .. }
            | Op::FCmp { .. }
            | Op::I2I { .. }
            | Op::F2I { .. }
            | Op::Load { .. }
            | Op::LoadAI { .. }
            | Op::CcmLoad { .. } => Some(RegClass::Gpr),
            Op::LoadF { .. }
            | Op::FBin { .. }
            | Op::F2F { .. }
            | Op::I2F { .. }
            | Op::FLoad { .. }
            | Op::FLoadAI { .. }
            | Op::CcmFLoad { .. } => Some(RegClass::Fpr),
            _ => None,
        }
    }
}

/// An instruction: an [`Op`] plus a spill tag.
///
/// The tag records the provenance the paper's techniques rely on: *the
/// compiler itself inserted spill instructions, so it knows exactly which
/// memory operations they are*. `SpillKind::Store`/`SpillKind::Restore`
/// mark the stores/loads the register allocator inserted for a given frame
/// spill slot; everything else is `SpillKind::None`.
#[derive(Clone, PartialEq, Debug)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Spill provenance (see [`SpillKind`]).
    pub spill: SpillKind,
}

impl Instr {
    /// An ordinary (non-spill) instruction.
    pub fn new(op: Op) -> Instr {
        Instr {
            op,
            spill: SpillKind::None,
        }
    }

    /// A spill store for `slot`.
    pub fn spill_store(op: Op, slot: SlotId) -> Instr {
        Instr {
            op,
            spill: SpillKind::Store(slot),
        }
    }

    /// A spill restore (reload) for `slot`.
    pub fn spill_restore(op: Op, slot: SlotId) -> Instr {
        Instr {
            op,
            spill: SpillKind::Restore(slot),
        }
    }

    /// The spill slot this instruction accesses, if it is spill code.
    pub fn spill_slot(&self) -> Option<SlotId> {
        match self.spill {
            SpillKind::None => None,
            SpillKind::Store(s) | SpillKind::Restore(s) => Some(s),
        }
    }
}

impl From<Op> for Instr {
    fn from(op: Op) -> Instr {
        Instr::new(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> Reg {
        Reg::gpr(i)
    }

    #[test]
    fn uses_and_defs_of_arith() {
        let op = Op::IBin {
            kind: IBinKind::Add,
            lhs: r(64),
            rhs: r(65),
            dst: r(66),
        };
        assert_eq!(op.uses(), vec![r(64), r(65)]);
        assert_eq!(op.defs(), vec![r(66)]);
    }

    #[test]
    fn store_has_no_defs() {
        let op = Op::StoreAI {
            val: r(64),
            addr: Reg::RARP,
            off: 8,
        };
        assert!(op.defs().is_empty());
        assert_eq!(op.uses(), vec![r(64), Reg::RARP]);
        assert!(op.has_side_effects());
    }

    #[test]
    fn ccm_ops_are_not_main_memory() {
        let s = Op::CcmStore { val: r(64), off: 0 };
        let l = Op::CcmLoad { off: 0, dst: r(64) };
        assert!(!s.is_main_memory_op());
        assert!(!l.is_main_memory_op());
        assert!(s.is_ccm_op() && l.is_ccm_op());
        assert!(s.is_store() && l.is_load());
    }

    #[test]
    fn main_memory_classification() {
        let op = Op::FLoadAI {
            addr: Reg::RARP,
            off: 16,
            dst: Reg::fpr(64),
        };
        assert!(op.is_main_memory_op());
        assert!(op.is_load());
        assert!(!op.is_store());
    }

    #[test]
    fn map_uses_renames() {
        let mut op = Op::IBin {
            kind: IBinKind::Add,
            lhs: r(64),
            rhs: r(64),
            dst: r(65),
        };
        op.map_uses(|x| if x == r(64) { r(99) } else { x });
        assert_eq!(op.uses(), vec![r(99), r(99)]);
        assert_eq!(op.defs(), vec![r(65)]);
    }

    #[test]
    fn cmp_swapped_negated() {
        for k in CmpKind::ALL {
            // Swapping twice and negating twice are identities.
            assert_eq!(k.swapped().swapped(), k);
            assert_eq!(k.negated().negated(), k);
        }
        assert_eq!(CmpKind::Lt.swapped(), CmpKind::Gt);
        assert_eq!(CmpKind::Lt.negated(), CmpKind::Ge);
    }

    #[test]
    fn terminator_successors() {
        let j = Op::Jump { target: BlockId(3) };
        assert_eq!(j.successors(), vec![BlockId(3)]);
        let c = Op::Cbr {
            cond: r(64),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert_eq!(c.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(c.is_terminator());
        let ret = Op::Ret { vals: vec![] };
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn copies_are_recognized() {
        assert!(Op::I2I {
            src: r(64),
            dst: r(65)
        }
        .is_copy());
        assert!(!Op::I2F {
            src: r(64),
            dst: Reg::fpr(64)
        }
        .is_copy());
    }

    #[test]
    fn phi_uses_and_successor_mapping() {
        let mut op = Op::Phi {
            dst: r(70),
            args: vec![(BlockId(0), r(64)), (BlockId(1), r(65))],
        };
        assert_eq!(op.uses(), vec![r(64), r(65)]);
        op.map_successors(|b| BlockId(b.0 + 10));
        if let Op::Phi { args, .. } = &op {
            assert_eq!(args[0].0, BlockId(10));
            assert_eq!(args[1].0, BlockId(11));
        } else {
            unreachable!()
        }
    }
}
