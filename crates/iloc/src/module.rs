//! Modules: a set of functions plus global data.

use std::collections::HashMap;

use crate::func::Function;
use crate::verify::{verify_module, VerifyError};

/// A named global data region in main memory.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Symbol name, referenced by [`Op::LoadSym`](crate::Op::LoadSym).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Optional initial contents as raw little-endian bytes (zero-filled if
    /// shorter than `size`).
    pub init: Vec<u8>,
}

impl Global {
    /// A zero-initialized global of `size` bytes.
    pub fn zeroed(name: impl Into<String>, size: u32) -> Global {
        Global {
            name: name.into(),
            size,
            init: Vec::new(),
        }
    }

    /// A global initialized with the given `f64` values (8 bytes each).
    pub fn from_f64s(name: impl Into<String>, values: &[f64]) -> Global {
        let mut init = Vec::with_capacity(values.len() * 8);
        for v in values {
            init.extend_from_slice(&v.to_le_bytes());
        }
        Global {
            name: name.into(),
            size: init.len() as u32,
            init,
        }
    }

    /// A global initialized with the given `i32` values (4 bytes each).
    pub fn from_i32s(name: impl Into<String>, values: &[i32]) -> Global {
        let mut init = Vec::with_capacity(values.len() * 4);
        for v in values {
            init.extend_from_slice(&v.to_le_bytes());
        }
        Global {
            name: name.into(),
            size: init.len() as u32,
            init,
        }
    }
}

/// A compilation unit: functions plus globals.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// The functions, in definition order.
    pub functions: Vec<Function>,
    /// Global data regions.
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Appends a function.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn push_function(&mut self, f: Function) {
        assert!(
            self.function(&f.name).is_none(),
            "duplicate function {}",
            f.name
        );
        self.functions.push(f);
    }

    /// Appends a global.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn push_global(&mut self, g: Global) {
        assert!(
            self.global(&g.name).is_none(),
            "duplicate global {}",
            g.name
        );
        self.globals.push(g);
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Map from function name to index in [`Module::functions`].
    pub fn function_indices(&self) -> HashMap<&str, usize> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect()
    }

    /// Runs the verifier over every function and the module-level rules.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] encountered.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify_module(self)
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instr_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_init_encoding() {
        let g = Global::from_f64s("w", &[1.0, 2.0]);
        assert_eq!(g.size, 16);
        assert_eq!(&g.init[0..8], &1.0f64.to_le_bytes());
        let gi = Global::from_i32s("v", &[7, -1]);
        assert_eq!(gi.size, 8);
        assert_eq!(&gi.init[4..8], &(-1i32).to_le_bytes());
    }

    #[test]
    fn function_lookup() {
        let mut m = Module::new();
        m.push_function(Function::new("a"));
        m.push_function(Function::new("b"));
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        assert_eq!(m.function_indices()["b"], 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new();
        m.push_function(Function::new("a"));
        m.push_function(Function::new("a"));
    }

    #[test]
    #[should_panic(expected = "duplicate global")]
    fn duplicate_global_panics() {
        let mut m = Module::new();
        m.push_global(Global::zeroed("g", 8));
        m.push_global(Global::zeroed("g", 4));
    }
}
