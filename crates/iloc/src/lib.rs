#![warn(missing_docs)]
//! An ILOC-like low-level intermediate representation.
//!
//! This crate implements the substrate IR for the *Compiler-Controlled
//! Memory* reproduction: a three-address, register-based linear IR in the
//! style of Rice's ILOC (the input language of the experiments in Cooper &
//! Harvey, ASPLOS 1998). It provides:
//!
//! * two register classes ([`RegClass::Gpr`] and [`RegClass::Fpr`]) with an
//!   unbounded virtual register space and a reserved activation-record
//!   pointer ([`Reg::RARP`]);
//! * an instruction set ([`Op`]) covering integer/float arithmetic,
//!   comparisons, main-memory loads/stores, **compiler-controlled-memory
//!   (CCM) `spill`/`restore` operations in a disjoint address space**,
//!   control flow, calls, and SSA φ-nodes;
//! * functions as explicit control-flow graphs ([`Function`], [`Block`]);
//! * a fluent [`builder::FuncBuilder`] for constructing programs, a textual
//!   [`parse`]r and printer that round-trip, and a [`verify`]er.
//!
//! # Example
//!
//! ```
//! use iloc::{builder::FuncBuilder, Module, RegClass};
//!
//! let mut f = FuncBuilder::new("answer");
//! f.set_ret_classes(&[RegClass::Gpr]);
//! let entry = f.entry();
//! f.switch_to(entry);
//! let a = f.loadi(40);
//! let b = f.loadi(2);
//! let c = f.add(a, b);
//! f.ret(&[c]);
//! let func = f.finish();
//! let mut m = Module::new();
//! m.push_function(func);
//! m.verify().unwrap();
//! ```

pub mod block;
pub mod builder;
pub mod func;
pub mod module;
pub mod op;
pub mod parse;
pub mod print;
pub mod reg;
pub mod verify;

pub use block::{Block, BlockId};
pub use func::{FrameInfo, Function, SlotId, SpillKind, SpillSlot};
pub use module::{Global, Module};
pub use op::{CmpKind, FBinKind, IBinKind, Instr, Op};
pub use parse::{parse_module, ParseError};
pub use reg::{Reg, RegClass, FIRST_VREG};
pub use verify::{verify_function, verify_module, VerifyError};
