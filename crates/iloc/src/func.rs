//! Functions, frames, and spill slots.

use std::fmt;

use crate::block::{Block, BlockId};
use crate::op::{Instr, Op};
use crate::reg::{Reg, RegClass, FIRST_VREG};

/// Index of a spill slot within a function's [`FrameInfo`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The slot index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Spill provenance of an instruction.
///
/// The register allocator tags the stores and loads it inserts, preserving
/// the knowledge the paper's CCM techniques exploit: compiler-inserted
/// memory traffic is precisely identifiable, unlike program memory traffic.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpillKind {
    /// Not spill code.
    None,
    /// A spill store (register → memory) for the given slot.
    Store(SlotId),
    /// A spill restore (memory → register) for the given slot.
    Restore(SlotId),
}

/// A spill slot in the activation record (or, after promotion, in the CCM).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SpillSlot {
    /// Byte offset. For frame slots this is relative to the activation-
    /// record pointer; for promoted slots it is an absolute CCM offset.
    pub offset: u32,
    /// The value class stored here (determines the slot's size).
    pub class: RegClass,
    /// Whether this slot has been promoted into the CCM.
    pub in_ccm: bool,
}

impl SpillSlot {
    /// Size of the slot in bytes (4 for integer values, 8 for floats).
    #[inline]
    pub fn size(&self) -> u32 {
        self.class.value_size()
    }
}

/// Layout of a function's activation record.
///
/// The frame holds, in order: program locals (`locals_size` bytes, laid out
/// by the front end) followed by allocator-created spill slots. Spill slots
/// are recorded individually so the CCM passes can rename, color, compact,
/// and promote them.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FrameInfo {
    /// Bytes reserved for program locals (arrays, scalars the front end
    /// placed in memory). Spill slots start above this.
    pub locals_size: u32,
    /// All spill slots created by the register allocator.
    pub slots: Vec<SpillSlot>,
}

impl FrameInfo {
    /// Total frame size in bytes, rounded up to 8-byte alignment.
    pub fn frame_size(&self) -> u32 {
        let end = self
            .slots
            .iter()
            .filter(|s| !s.in_ccm)
            .map(|s| s.offset + s.size())
            .max()
            .unwrap_or(self.locals_size)
            .max(self.locals_size);
        (end + 7) & !7
    }

    /// Bytes of spill memory in the main-memory frame (the quantity Table 1
    /// of the paper reports): the extent of the spill area beyond locals.
    pub fn spill_bytes(&self) -> u32 {
        let end = self
            .slots
            .iter()
            .filter(|s| !s.in_ccm)
            .map(|s| s.offset + s.size())
            .max()
            .unwrap_or(self.locals_size);
        end.saturating_sub(self.locals_size)
    }

    /// Appends a new spill slot of `class` at the current end of the frame,
    /// naturally aligned, and returns its id.
    pub fn new_slot(&mut self, class: RegClass) -> SlotId {
        let size = class.value_size();
        let end = self
            .slots
            .iter()
            .filter(|s| !s.in_ccm)
            .map(|s| s.offset + s.size())
            .max()
            .unwrap_or(self.locals_size)
            .max(self.locals_size);
        let offset = (end + size - 1) & !(size - 1);
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(SpillSlot {
            offset,
            class,
            in_ccm: false,
        });
        id
    }

    /// Appends a slot with an explicit placement (used by the CCM passes
    /// to record compiler-controlled-memory slots) and returns its id.
    pub fn push_slot(&mut self, slot: SpillSlot) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(slot);
        id
    }

    /// Looks up a slot.
    pub fn slot(&self, id: SlotId) -> &SpillSlot {
        &self.slots[id.index()]
    }

    /// Mutable access to a slot.
    pub fn slot_mut(&mut self, id: SlotId) -> &mut SpillSlot {
        &mut self.slots[id.index()]
    }
}

/// A function: a named CFG with parameters, return classes, and a frame.
///
/// Equality compares the observable program (name, signature, frame, and
/// body) and ignores the internal virtual-register counter, so a printed
/// and re-parsed function compares equal to the original.
#[derive(Clone, Debug)]
pub struct Function {
    /// The function's name, unique within its module.
    pub name: String,
    /// Parameter registers (virtual until allocation).
    pub params: Vec<Reg>,
    /// Classes of the return values.
    pub ret_classes: Vec<RegClass>,
    /// The basic blocks. `blocks[0]` is always the entry block.
    pub blocks: Vec<Block>,
    /// Activation-record layout.
    pub frame: FrameInfo,
    /// Next unused virtual-register index per class (GPR, FPR).
    next_vreg: [u32; 2],
}

impl PartialEq for Function {
    fn eq(&self, other: &Function) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.ret_classes == other.ret_classes
            && self.blocks == other.blocks
            && self.frame == other.frame
    }
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_classes: Vec::new(),
            blocks: vec![Block::new("entry")],
            frame: FrameInfo::default(),
            next_vreg: [FIRST_VREG, FIRST_VREG],
        }
    }

    /// The entry block id (always block 0).
    #[inline]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Shared access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(label));
        id
    }

    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> Reg {
        let idx = self.next_vreg[class.index()];
        self.next_vreg[class.index()] += 1;
        Reg::new(class, idx)
    }

    /// Ensures future [`Function::new_vreg`] calls return indices strictly
    /// above every register currently appearing in the body. Call after
    /// bulk-rewriting registers (e.g., after parsing or SSA renaming).
    pub fn reset_vreg_counter(&mut self) {
        let mut max = [FIRST_VREG; 2];
        self.for_each_reg(|r| {
            let slot = &mut max[r.class().index()];
            *slot = (*slot).max(r.index() + 1);
        });
        self.next_vreg = max;
    }

    /// Visits every register mentioned anywhere in the body and parameters.
    pub fn for_each_reg(&self, mut f: impl FnMut(Reg)) {
        for p in &self.params {
            f(*p);
        }
        for b in &self.blocks {
            for i in &b.instrs {
                i.op.visit_uses(&mut f);
                i.op.visit_defs(&mut f);
            }
        }
    }

    /// Successors of `id` (from the terminator).
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).successors()
    }

    /// Computes the full predecessor table in one pass.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for id in self.block_ids() {
            for s in self.successors(id) {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Blocks reachable from entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut state = vec![0u8; n]; // 0 = unseen, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        state[self.entry().index()] = 1;
        while let Some((b, child)) = stack.pop() {
            let succs = self.successors(b);
            if child < succs.len() {
                stack.push((b, child + 1));
                let s = succs[child];
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Total number of instructions across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Count of instructions tagged as spill code.
    pub fn spill_instr_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.spill != SpillKind::None)
            .count()
    }

    /// Names of all callees invoked by this function (with repeats).
    pub fn callees(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.instrs {
                if let Op::Call { callee, .. } = &i.op {
                    out.push(callee.as_str());
                }
            }
        }
        out
    }

    /// Replaces every instruction satisfying the predicate with `Nop`, then
    /// sweeps all `Nop`s out of the body. Returns the number removed.
    pub fn remove_instrs(&mut self, mut pred: impl FnMut(&Instr) -> bool) -> usize {
        let mut removed = 0;
        for b in &mut self.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|i| !(pred(i) || matches!(i.op, Op::Nop)));
            removed += before - b.instrs.len();
        }
        removed
    }

    /// Deletes every block not reachable from the entry, compacting block
    /// ids and retargeting the surviving terminators. Returns the number
    /// of blocks removed.
    ///
    /// Simplification passes (and the fuzzer's minimizer) turn `cbr`s into
    /// `jump`s; this sweeps out the half of the CFG those edits orphan.
    pub fn prune_unreachable(&mut self) -> usize {
        let n = self.blocks.len();
        let mut reachable = vec![false; n];
        let mut stack = vec![self.entry()];
        reachable[self.entry().index()] = true;
        while let Some(b) = stack.pop() {
            for s in self.successors(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        if reachable.iter().all(|&r| r) {
            return 0;
        }
        // Old id -> new id for survivors, in layout order (entry stays 0).
        let mut remap = vec![BlockId(0); n];
        let mut next = 0u32;
        for (i, r) in reachable.iter().enumerate() {
            if *r {
                remap[i] = BlockId(next);
                next += 1;
            }
        }
        let mut keep = reachable.iter().copied();
        self.blocks.retain(|_| keep.next().unwrap());
        for b in &mut self.blocks {
            if let Some(t) = b.terminator_mut() {
                t.map_successors(|s| remap[s.index()]);
            }
        }
        n - next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_unreachable_compacts_and_retargets() {
        let mut f = Function::new("t");
        let dead = f.add_block("dead");
        let live = f.add_block("live");
        let r = f.new_vreg(RegClass::Gpr);
        f.block_mut(f.entry())
            .instrs
            .push(Instr::new(Op::Jump { target: live }));
        f.block_mut(dead)
            .instrs
            .push(Instr::new(Op::Jump { target: live }));
        f.block_mut(live)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![r] }));
        assert_eq!(f.prune_unreachable(), 1);
        assert_eq!(f.blocks.len(), 2);
        // The surviving jump must now target the compacted id of "live".
        assert_eq!(f.successors(f.entry()), vec![BlockId(1)]);
        assert_eq!(f.block(BlockId(1)).label, "live");
        assert_eq!(f.prune_unreachable(), 0, "second prune is a no-op");
    }

    #[test]
    fn fresh_vregs_are_distinct_per_class() {
        let mut f = Function::new("t");
        let a = f.new_vreg(RegClass::Gpr);
        let b = f.new_vreg(RegClass::Gpr);
        let c = f.new_vreg(RegClass::Fpr);
        assert_ne!(a, b);
        assert_eq!(a.index(), FIRST_VREG);
        assert_eq!(c.index(), FIRST_VREG);
        assert!(a.is_virtual() && c.is_virtual());
    }

    #[test]
    fn frame_slot_layout_is_aligned_and_disjoint() {
        let mut fr = FrameInfo {
            locals_size: 10,
            slots: vec![],
        };
        let a = fr.new_slot(RegClass::Gpr); // aligned to 4 → offset 12
        let b = fr.new_slot(RegClass::Fpr); // aligned to 8 → offset 16
        let c = fr.new_slot(RegClass::Gpr); // offset 24
        assert_eq!(fr.slot(a).offset, 12);
        assert_eq!(fr.slot(b).offset, 16);
        assert_eq!(fr.slot(c).offset, 24);
        assert_eq!(fr.spill_bytes(), 28 - 10);
        assert_eq!(fr.frame_size(), 28 + 4); // 28 → aligned 32
    }

    #[test]
    fn promoted_slots_do_not_count_toward_frame() {
        let mut fr = FrameInfo::default();
        let a = fr.new_slot(RegClass::Fpr);
        assert_eq!(fr.spill_bytes(), 8);
        fr.slot_mut(a).in_ccm = true;
        assert_eq!(fr.spill_bytes(), 0);
    }

    #[test]
    fn reverse_postorder_visits_entry_first() {
        let mut f = Function::new("t");
        let e = f.entry();
        let b1 = f.add_block("L1");
        let b2 = f.add_block("L2");
        f.block_mut(e)
            .instrs
            .push(Instr::new(Op::Jump { target: b1 }));
        f.block_mut(b1)
            .instrs
            .push(Instr::new(Op::Jump { target: b2 }));
        f.block_mut(b2)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        let rpo = f.reverse_postorder();
        assert_eq!(rpo, vec![e, b1, b2]);
    }

    #[test]
    fn rpo_skips_unreachable_blocks() {
        let mut f = Function::new("t");
        let e = f.entry();
        let dead = f.add_block("dead");
        f.block_mut(e)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        f.block_mut(dead)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        let rpo = f.reverse_postorder();
        assert_eq!(rpo, vec![e]);
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let mut f = Function::new("t");
        let e = f.entry();
        let b1 = f.add_block("L1");
        let cond = f.new_vreg(RegClass::Gpr);
        f.block_mut(e).instrs.push(Instr::new(Op::Cbr {
            cond,
            taken: b1,
            not_taken: b1,
        }));
        f.block_mut(b1)
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        let preds = f.predecessors();
        assert_eq!(preds[b1.index()], vec![e, e]);
    }

    #[test]
    fn reset_vreg_counter_clears_collisions() {
        let mut f = Function::new("t");
        f.block_mut(BlockId(0)).instrs.push(Instr::new(Op::LoadI {
            imm: 0,
            dst: Reg::gpr(200),
        }));
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::new(Op::Ret { vals: vec![] }));
        f.reset_vreg_counter();
        let next = f.new_vreg(RegClass::Gpr);
        assert_eq!(next.index(), 201);
    }
}
