//! Textual printing of the IR.
//!
//! The output of [`std::fmt::Display`] for [`Module`] is accepted verbatim
//! by [`crate::parse::parse_module`]; printing and parsing round-trip.

use std::fmt;

use crate::block::BlockId;
use crate::func::{Function, SpillKind};
use crate::module::{Global, Module};
use crate::op::{Instr, Op};

struct OpPrinter<'a> {
    op: &'a Op,
    func: &'a Function,
}

fn label(f: &Function, b: BlockId) -> &str {
    &f.block(b).label
}

impl fmt::Display for OpPrinter<'_> {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fun = self.func;
        match self.op {
            Op::LoadI { imm, dst } => write!(w, "loadI {} => {}", imm, dst),
            Op::LoadF { imm, dst } => write!(w, "loadF {:?} => {}", imm, dst),
            Op::LoadSym { sym, dst } => write!(w, "loadSym @{} => {}", sym, dst),
            Op::IBin {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                write!(w, "{} {}, {} => {}", kind.mnemonic(), lhs, rhs, dst)
            }
            Op::IBinI {
                kind,
                lhs,
                imm,
                dst,
            } => {
                write!(w, "{}I {}, {} => {}", kind.mnemonic(), lhs, imm, dst)
            }
            Op::FBin {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                write!(w, "{} {}, {} => {}", kind.mnemonic(), lhs, rhs, dst)
            }
            Op::ICmp {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                write!(w, "cmp_{} {}, {} => {}", kind.mnemonic(), lhs, rhs, dst)
            }
            Op::FCmp {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                write!(w, "fcmp_{} {}, {} => {}", kind.mnemonic(), lhs, rhs, dst)
            }
            Op::I2I { src, dst } => write!(w, "i2i {} => {}", src, dst),
            Op::F2F { src, dst } => write!(w, "f2f {} => {}", src, dst),
            Op::I2F { src, dst } => write!(w, "i2f {} => {}", src, dst),
            Op::F2I { src, dst } => write!(w, "f2i {} => {}", src, dst),
            Op::Load { addr, dst } => write!(w, "load {} => {}", addr, dst),
            Op::LoadAI { addr, off, dst } => write!(w, "loadAI {}, {} => {}", addr, off, dst),
            Op::Store { val, addr } => write!(w, "store {} => {}", val, addr),
            Op::StoreAI { val, addr, off } => write!(w, "storeAI {} => {}, {}", val, addr, off),
            Op::FLoad { addr, dst } => write!(w, "fload {} => {}", addr, dst),
            Op::FLoadAI { addr, off, dst } => write!(w, "floadAI {}, {} => {}", addr, off, dst),
            Op::FStore { val, addr } => write!(w, "fstore {} => {}", val, addr),
            Op::FStoreAI { val, addr, off } => write!(w, "fstoreAI {} => {}, {}", val, addr, off),
            Op::CcmStore { val, off } => write!(w, "spill {} => ccm[{}]", val, off),
            Op::CcmLoad { off, dst } => write!(w, "restore ccm[{}] => {}", off, dst),
            Op::CcmFStore { val, off } => write!(w, "fspill {} => ccm[{}]", val, off),
            Op::CcmFLoad { off, dst } => write!(w, "frestore ccm[{}] => {}", off, dst),
            Op::Jump { target } => write!(w, "jump -> {}", label(fun, *target)),
            Op::Cbr {
                cond,
                taken,
                not_taken,
            } => write!(
                w,
                "cbr {} -> {}, {}",
                cond,
                label(fun, *taken),
                label(fun, *not_taken)
            ),
            Op::Call { callee, args, rets } => {
                write!(w, "call {}(", callee)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "{}", a)?;
                }
                write!(w, ")")?;
                if !rets.is_empty() {
                    write!(w, " =>")?;
                    for (i, r) in rets.iter().enumerate() {
                        write!(w, "{}{}", if i > 0 { ", " } else { " " }, r)?;
                    }
                }
                Ok(())
            }
            Op::Ret { vals } => {
                write!(w, "ret")?;
                for (i, v) in vals.iter().enumerate() {
                    write!(w, "{}{}", if i > 0 { ", " } else { " " }, v)?;
                }
                Ok(())
            }
            Op::Phi { dst, args } => {
                write!(w, "phi [")?;
                for (i, (b, r)) in args.iter().enumerate() {
                    if i > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "{}: {}", label(fun, *b), r)?;
                }
                write!(w, "] => {}", dst)
            }
            Op::Nop => write!(w, "nop"),
        }
    }
}

/// Formats one instruction (with its spill tag) in the context of `func`.
pub fn format_instr(func: &Function, instr: &Instr) -> String {
    let body = OpPrinter {
        op: &instr.op,
        func,
    }
    .to_string();
    match instr.spill {
        SpillKind::None => body,
        SpillKind::Store(s) => format!("{} !store({})", body, s.0),
        SpillKind::Restore(s) => format!("{} !restore({})", body, s.0),
    }
}

impl fmt::Display for Function {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(w, "func {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(w, ", ")?;
            }
            write!(w, "{}", p)?;
        }
        write!(w, ")")?;
        if !self.ret_classes.is_empty() {
            write!(w, " rets ")?;
            for (i, c) in self.ret_classes.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{}", c)?;
            }
        }
        writeln!(w, " locals {} {{", self.frame.locals_size)?;
        for (i, s) in self.frame.slots.iter().enumerate() {
            writeln!(
                w,
                "  slot {}: {} @ {}{}",
                i,
                s.class,
                s.offset,
                if s.in_ccm { " ccm" } else { "" }
            )?;
        }
        for b in &self.blocks {
            writeln!(w, "{}:", b.label)?;
            for instr in &b.instrs {
                writeln!(w, "    {}", format_instr(self, instr))?;
            }
        }
        writeln!(w, "}}")
    }
}

impl fmt::Display for Global {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(w, "global {} {}", self.name, self.size)?;
        if !self.init.is_empty() {
            write!(w, " = ")?;
            for b in &self.init {
                write!(w, "{:02x}", b)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(w, "{}", g)?;
        }
        for f in &self.functions {
            writeln!(w, "{}", f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::reg::RegClass;

    #[test]
    fn function_prints_blocks_and_instrs() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(7);
        fb.ret(&[a]);
        let s = fb.finish().to_string();
        assert!(s.contains("func f() rets gpr locals 0 {"));
        assert!(s.contains("loadI 7 => %r64"));
        assert!(s.contains("ret %r64"));
    }

    #[test]
    fn float_constants_round_trip_precision() {
        let mut fb = FuncBuilder::new("f");
        let v = fb.loadf(0.1 + 0.2);
        fb.ret(&[v]);
        let s = fb.finish().to_string();
        // Debug formatting of f64 prints the shortest form that parses back
        // to the identical value.
        assert!(s.contains("loadF 0.30000000000000004"));
    }

    #[test]
    fn global_init_hex() {
        let g = Global::from_i32s("g", &[1]);
        assert_eq!(g.to_string(), "global g 4 = 01000000");
    }
}

/// Renders the function's control-flow graph in Graphviz DOT format, one
/// node per basic block (label plus instruction count), for debugging and
/// documentation.
pub fn to_dot(f: &Function) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", f.name);
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for (i, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(
            s,
            "  B{} [label=\"{}\\n{} instrs\"];",
            i,
            b.label,
            b.instrs.len()
        );
    }
    for id in f.block_ids() {
        for t in f.successors(id) {
            let _ = writeln!(s, "  B{} -> B{};", id.index(), t.index());
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod dot_tests {
    use crate::builder::FuncBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut fb = FuncBuilder::new("f");
        let cond = fb.loadi(1);
        let a = fb.block("then_side");
        let b = fb.block("else_side");
        fb.cbr(cond, a, b);
        fb.switch_to(a);
        fb.ret(&[]);
        fb.switch_to(b);
        fb.ret(&[]);
        let f = fb.finish();
        let dot = super::to_dot(&f);
        assert!(dot.starts_with("digraph \"f\""));
        assert!(dot.contains("then_side"));
        assert!(dot.contains("B0 -> B1;"));
        assert!(dot.contains("B0 -> B2;"));
        assert!(dot.ends_with("}\n"));
    }
}
