//! Dominator-based global value numbering on SSA form.
//!
//! Walks the dominator tree with a scoped hash table of available
//! expressions. A recomputation of an expression whose representative
//! dominates it is deleted and its uses rewritten to the representative.
//! Commutative operations are canonicalized by sorting operands so
//! `a + b` and `b + a` share a value number. Copies and φs with identical
//! arguments are folded into their source.

use std::collections::HashMap;

use analysis::Dominators;
use iloc::{BlockId, Function, Op, Reg};

/// An expression key: opcode discriminator plus canonicalized operands.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Int(i64),
    Float(u64),
    Sym(String),
    IBin(iloc::IBinKind, Reg, Reg),
    IBinI(iloc::IBinKind, Reg, i64),
    FBin(iloc::FBinKind, Reg, Reg),
    ICmp(iloc::CmpKind, Reg, Reg),
    FCmp(iloc::CmpKind, Reg, Reg),
    I2F(Reg),
    F2I(Reg),
}

/// Runs GVN over `f` (must be in SSA form). Returns the number of
/// redundant instructions removed.
pub fn gvn(f: &mut Function) -> usize {
    let dom = Dominators::compute(f);
    // replacement[r] = canonical value for r (path-compressed on lookup).
    let mut replacement: HashMap<Reg, Reg> = HashMap::new();
    // Scoped available-expression table: stack of (key, rep) frames.
    let mut table: HashMap<Key, Vec<Reg>> = HashMap::new();
    let mut removed = 0;

    fn resolve(replacement: &HashMap<Reg, Reg>, mut r: Reg) -> Reg {
        while let Some(&n) = replacement.get(&r) {
            if n == r {
                break;
            }
            r = n;
        }
        r
    }

    fn walk(
        f: &mut Function,
        dom: &Dominators,
        b: BlockId,
        replacement: &mut HashMap<Reg, Reg>,
        table: &mut HashMap<Key, Vec<Reg>>,
        removed: &mut usize,
    ) {
        let mut pushed: Vec<Key> = Vec::new();
        let n = f.block(b).instrs.len();
        for i in 0..n {
            // Rewrite uses through the replacement map first.
            {
                let repl = &*replacement;
                f.block_mut(b).instrs[i].op.map_uses(|r| resolve(repl, r));
            }
            let op = f.block(b).instrs[i].op.clone();

            // Copies: dst is just an alias of src.
            match &op {
                Op::I2I { src, dst } | Op::F2F { src, dst } => {
                    replacement.insert(*dst, *src);
                    f.block_mut(b).instrs[i].op = Op::Nop;
                    *removed += 1;
                    continue;
                }
                Op::Phi { dst, args } => {
                    // φ with all-identical arguments (ignoring self) folds.
                    let mut distinct: Vec<Reg> = Vec::new();
                    for (_, r) in args {
                        let r = resolve(replacement, *r);
                        if r != *dst && !distinct.contains(&r) {
                            distinct.push(r);
                        }
                    }
                    if distinct.len() == 1 {
                        replacement.insert(*dst, distinct[0]);
                        f.block_mut(b).instrs[i].op = Op::Nop;
                        *removed += 1;
                    }
                    continue;
                }
                _ => {}
            }

            let key = match &op {
                Op::LoadI { imm, .. } => Some(Key::Int(*imm)),
                Op::LoadF { imm, .. } => Some(Key::Float(imm.to_bits())),
                Op::LoadSym { sym, .. } => Some(Key::Sym(sym.clone())),
                Op::IBin { kind, lhs, rhs, .. } => {
                    let (mut a, mut b2) = (*lhs, *rhs);
                    if kind.is_commutative() && b2 < a {
                        std::mem::swap(&mut a, &mut b2);
                    }
                    Some(Key::IBin(*kind, a, b2))
                }
                Op::IBinI { kind, lhs, imm, .. } => Some(Key::IBinI(*kind, *lhs, *imm)),
                Op::FBin { kind, lhs, rhs, .. } => {
                    let (mut a, mut b2) = (*lhs, *rhs);
                    if kind.is_commutative() && b2 < a {
                        std::mem::swap(&mut a, &mut b2);
                    }
                    Some(Key::FBin(*kind, a, b2))
                }
                Op::ICmp { kind, lhs, rhs, .. } => Some(Key::ICmp(*kind, *lhs, *rhs)),
                Op::FCmp { kind, lhs, rhs, .. } => Some(Key::FCmp(*kind, *lhs, *rhs)),
                Op::I2F { src, .. } => Some(Key::I2F(*src)),
                Op::F2I { src, .. } => Some(Key::F2I(*src)),
                // Loads, stores, calls, control flow: not value-numbered
                // (memory is not tracked).
                _ => None,
            };

            if let Some(key) = key {
                let dst = op.defs()[0];
                if let Some(rep) = table.get(&key).and_then(|v| v.last()).copied() {
                    replacement.insert(dst, rep);
                    f.block_mut(b).instrs[i].op = Op::Nop;
                    *removed += 1;
                } else {
                    table.entry(key.clone()).or_default().push(dst);
                    pushed.push(key);
                }
            }
        }

        // Also rewrite φ arguments in successors (the use point is the end
        // of this block, so everything available here applies).
        for s in f.successors(b) {
            let phis = f.block(s).phi_count();
            for i in 0..phis {
                let repl = &*replacement;
                if let Op::Phi { args, .. } = &mut f.block_mut(s).instrs[i].op {
                    for (p, r) in args {
                        if *p == b {
                            *r = resolve(repl, *r);
                        }
                    }
                }
            }
        }

        for c in dom.children(b).to_vec() {
            walk(f, dom, c, replacement, table, removed);
        }

        for key in pushed {
            table.get_mut(&key).expect("pushed").pop();
        }
    }

    walk(
        f,
        &dom,
        f.entry(),
        &mut replacement,
        &mut table,
        &mut removed,
    );

    // Final sweep: resolve any uses recorded before their replacement, and
    // drop the Nops.
    for b in f.block_ids().collect::<Vec<_>>() {
        let n = f.block(b).instrs.len();
        for i in 0..n {
            let repl = &replacement;
            f.block_mut(b).instrs[i].op.map_uses(|r| resolve(repl, r));
        }
    }
    f.remove_instrs(|i| matches!(i.op, Op::Nop));
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::to_ssa;
    use iloc::builder::FuncBuilder;
    use iloc::{IBinKind, RegClass};

    fn count_op(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| pred(&i.op))
            .count()
    }

    #[test]
    fn duplicate_expression_removed() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let q = fb.param(RegClass::Gpr);
        let a = fb.add(p, q);
        let b = fb.add(p, q); // redundant
        let c = fb.mult(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        let removed = gvn(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(
            count_op(&f, |o| matches!(
                o,
                Op::IBin {
                    kind: IBinKind::Add,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn commutative_operands_canonicalized() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let q = fb.param(RegClass::Gpr);
        let a = fb.add(p, q);
        let b = fb.add(q, p); // same value, swapped operands
        let c = fb.mult(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(gvn(&mut f), 1);
    }

    #[test]
    fn subtraction_not_commuted() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let q = fb.param(RegClass::Gpr);
        let a = fb.sub(p, q);
        let b = fb.sub(q, p); // different value!
        let c = fb.mult(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(gvn(&mut f), 0);
    }

    #[test]
    fn duplicate_constants_merged() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(42);
        let b = fb.loadi(42);
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(gvn(&mut f), 1);
        assert_eq!(count_op(&f, |o| matches!(o, Op::LoadI { .. })), 1);
    }

    #[test]
    fn expression_not_reused_across_siblings() {
        // Compute p*p in both arms of a diamond: neither dominates the
        // other, so GVN must keep both.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        let cond = fb.param(RegClass::Gpr);
        fb.cbr(cond, t, e);
        fb.switch_to(t);
        let x = fb.mult(p, p);
        fb.storeai(x, iloc::Reg::RARP, 0);
        fb.jump(j);
        fb.switch_to(e);
        let y = fb.mult(p, p);
        fb.storeai(y, iloc::Reg::RARP, 0);
        fb.jump(j);
        fb.switch_to(j);
        let r = fb.loadi(0);
        fb.ret(&[r]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        gvn(&mut f);
        assert_eq!(
            count_op(&f, |o| matches!(
                o,
                Op::IBin {
                    kind: IBinKind::Mult,
                    ..
                }
            )),
            2,
            "sibling blocks must not share:\n{f}"
        );
    }

    #[test]
    fn dominating_expression_reused_downstream() {
        // p*p computed before the branch is reused in an arm.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let cond = fb.param(RegClass::Gpr);
        let x = fb.mult(p, p);
        let t = fb.block("t");
        let e = fb.block("e");
        fb.cbr(cond, t, e);
        fb.switch_to(t);
        let y = fb.mult(p, p); // redundant with x
        let s = fb.add(x, y);
        fb.ret(&[s]);
        fb.switch_to(e);
        fb.ret(&[x]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(gvn(&mut f), 1);
    }

    #[test]
    fn copies_are_folded() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let c = fb.copy(p);
        let d = fb.copy(c);
        let s = fb.add(d, p);
        fb.ret(&[s]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        let removed = gvn(&mut f);
        assert_eq!(removed, 2);
        // The add must now use p twice.
        let ok = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            if let Op::IBin { lhs, rhs, .. } = i.op {
                lhs == rhs
            } else {
                false
            }
        });
        assert!(ok, "copy chain should collapse to p:\n{f}");
    }

    #[test]
    fn loads_never_value_numbered() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let a = fb.loadai(p, 0);
        let store_val = fb.loadi(1);
        fb.storeai(store_val, p, 0);
        let b = fb.loadai(p, 0); // NOT redundant: store intervened
        let c = fb.add(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        gvn(&mut f);
        assert_eq!(count_op(&f, |o| matches!(o, Op::LoadAI { .. })), 2);
    }
}
