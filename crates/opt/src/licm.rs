//! Loop-invariant code motion.
//!
//! Hoists pure, loop-invariant computations (constants, arithmetic on
//! invariant operands, global-address formation) out of natural loops
//! into dedicated preheaders. Works on SSA form, where "invariant" is
//! simply "every operand is defined outside the loop" and hoisting needs
//! no renaming.
//!
//! LICM stands in for part of the paper's partial-redundancy elimination:
//! it lengthens live ranges across loop bodies, which is exactly the
//! register-pressure effect the paper attributes to its aggressive scalar
//! optimization. The pipeline exposes it as an option
//! ([`crate::OptOptions::licm`], default off) and the harness ablates it.

use std::collections::HashSet;

use analysis::{Dominators, LoopInfo};
use iloc::{BlockId, Function, Instr, Op, Reg};

/// Hoists invariant code out of every natural loop, innermost-last.
/// Returns the number of instructions moved. The function must be in SSA
/// form (every virtual register has a single definition).
pub fn licm(f: &mut Function) -> usize {
    let mut moved_total = 0;
    // Iterate: hoisting into a preheader may expose invariance in an
    // enclosing loop on the next round.
    loop {
        let dom = Dominators::compute(f);
        let loops = LoopInfo::compute(f, &dom);
        if loops.loops.is_empty() {
            return moved_total;
        }
        let mut moved_this_round = 0;
        // Process larger (outer) loops last so their preheaders see code
        // already hoisted from inner loops.
        let mut order: Vec<usize> = (0..loops.loops.len()).collect();
        order.sort_by_key(|&i| loops.loops[i].blocks.len());
        for li in order {
            let l = &loops.loops[li];
            moved_this_round += hoist_one_loop(f, &dom, l.header, &l.blocks);
            if moved_this_round > 0 {
                // CFG may have changed (preheader insertion); recompute.
                break;
            }
        }
        if moved_this_round == 0 {
            return moved_total;
        }
        moved_total += moved_this_round;
    }
}

/// Whether an op may be hoisted: pure (no side effects, no memory reads —
/// loads are unsafe to hoist without alias analysis) and not control flow.
fn hoistable(op: &Op) -> bool {
    matches!(
        op,
        Op::LoadI { .. }
            | Op::LoadF { .. }
            | Op::LoadSym { .. }
            | Op::IBin { .. }
            | Op::IBinI { .. }
            | Op::FBin { .. }
            | Op::ICmp { .. }
            | Op::FCmp { .. }
            | Op::I2I { .. }
            | Op::F2F { .. }
            | Op::I2F { .. }
            | Op::F2I { .. }
    ) && !matches!(op, Op::IBin { kind, .. } if matches!(kind, iloc::IBinKind::Div | iloc::IBinKind::Rem))
}

fn hoist_one_loop(
    f: &mut Function,
    dom: &Dominators,
    header: BlockId,
    blocks: &[BlockId],
) -> usize {
    let in_loop: HashSet<BlockId> = blocks.iter().copied().collect();

    // Registers defined inside the loop.
    let mut defined_in: HashSet<Reg> = HashSet::new();
    for &b in blocks {
        for i in &f.block(b).instrs {
            i.op.visit_defs(|r| {
                defined_in.insert(r);
            });
        }
    }

    // Collect invariant instructions in loop-body order, transitively:
    // an instruction is invariant if hoistable and all used registers are
    // defined outside the loop or by an already-collected invariant.
    let mut invariant_defs: HashSet<Reg> = HashSet::new();
    let mut to_hoist: Vec<(BlockId, usize)> = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in blocks {
            for (i, instr) in f.block(b).instrs.iter().enumerate() {
                if to_hoist.contains(&(b, i)) || !hoistable(&instr.op) {
                    continue;
                }
                let mut ok = true;
                instr.op.visit_uses(|r| {
                    if defined_in.contains(&r) && !invariant_defs.contains(&r) {
                        ok = false;
                    }
                });
                if ok {
                    to_hoist.push((b, i));
                    instr.op.visit_defs(|r| {
                        invariant_defs.insert(r);
                    });
                    changed = true;
                }
            }
        }
    }
    if to_hoist.is_empty() {
        return 0;
    }

    // Build (or find) the preheader: the unique out-of-loop predecessor
    // of the header with the header as its only successor.
    let preds = f.predecessors();
    let outside: Vec<BlockId> = preds[header.index()]
        .iter()
        .copied()
        .filter(|p| !in_loop.contains(p) && dom.is_reachable(*p))
        .collect();
    let preheader = match &outside[..] {
        [single] if f.successors(*single).len() == 1 => *single,
        _ => {
            // Create one and retarget every outside edge through it.
            let label = format!("preheader_{}", header.index());
            let ph = f.add_block(label);
            f.block_mut(ph)
                .instrs
                .push(Instr::new(Op::Jump { target: header }));
            for p in outside {
                if let Some(t) = f.block_mut(p).terminator_mut() {
                    t.map_successors(|x| if x == header { ph } else { x });
                }
            }
            // Update header φs: outside-edge arguments now flow from ph.
            let phis = f.block(header).phi_count();
            for i in 0..phis {
                if let Op::Phi { args, .. } = &mut f.block_mut(header).instrs[i].op {
                    for (pb, _) in args {
                        if !in_loop.contains(pb) {
                            *pb = ph;
                        }
                    }
                }
            }
            ph
        }
    };

    // Move the instructions, preserving their relative (dominance) order:
    // process blocks in reverse postorder and indices ascending.
    let rpo = f.reverse_postorder();
    let order_of = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap_or(usize::MAX);
    to_hoist.sort_by_key(|&(b, i)| (order_of(b), i));
    let mut moved = Vec::new();
    // Remove from the back of each block first so indices stay valid.
    let mut removal = to_hoist.clone();
    removal.sort_by_key(|&(b, i)| (b, std::cmp::Reverse(i)));
    let mut taken: std::collections::HashMap<(BlockId, usize), Instr> =
        std::collections::HashMap::new();
    for (b, i) in removal {
        let instr = f.block_mut(b).instrs.remove(i);
        taken.insert((b, i), instr);
    }
    for key in to_hoist {
        moved.push(taken.remove(&key).expect("collected"));
    }
    let count = moved.len();
    for instr in moved {
        f.block_mut(preheader).insert_before_terminator(instr);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::to_ssa;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, RegClass};

    fn loop_with_invariant() -> Function {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let acc = fb.vreg(RegClass::Fpr);
        fb.emit(Op::LoadF { imm: 0.0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, _| {
            // 2.5 * 4.0 is invariant; the add of acc is not.
            let a = fb.loadf(2.5);
            let b = fb.loadf(4.0);
            let c = fb.fmult(a, b);
            let t = fb.fadd(acc, c);
            fb.emit(Op::F2F { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        fb.finish()
    }

    #[test]
    fn hoists_invariant_constants_and_arithmetic() {
        let mut f = loop_with_invariant();
        to_ssa(&mut f);
        let moved = licm(&mut f);
        verify_function(&f).unwrap();
        assert!(moved >= 3, "loadf×2 + fmult should move, got {moved}");
        // The loop body must no longer contain a LoadF.
        let body = f
            .block_ids()
            .find(|b| f.block(*b).label.contains("body"))
            .unwrap();
        let body_has_const = f
            .block(body)
            .instrs
            .iter()
            .any(|i| matches!(i.op, Op::LoadF { .. }));
        assert!(!body_has_const, "constants must be hoisted:\n{f}");
    }

    #[test]
    fn hoisting_preserves_semantics() {
        let mut f = loop_with_invariant();
        let mut m0 = iloc::Module::new();
        m0.push_function(f.clone());
        let (v0, _) = sim::run_module(&m0, sim::MachineConfig::default(), "f").unwrap();

        to_ssa(&mut f);
        licm(&mut f);
        analysis::from_ssa(&mut f);
        let mut m1 = iloc::Module::new();
        m1.push_function(f);
        let (v1, _) = sim::run_module(&m1, sim::MachineConfig::default(), "f").unwrap();
        assert_eq!(v0, v1);
    }

    #[test]
    fn loads_and_stores_never_hoisted() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let base = fb.loadsym("g");
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, _| {
            let v = fb.loadai(base, 0); // may change between iterations!
            let t = fb.add(acc, v);
            fb.emit(Op::I2I { src: t, dst: acc });
            fb.storeai(t, base, 0);
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        licm(&mut f);
        verify_function(&f).unwrap();
        // The load must still be inside the loop.
        let dom = Dominators::compute(&f);
        let loops = LoopInfo::compute(&f, &dom);
        let mut load_in_loop = false;
        for l in &loops.loops {
            for &b in &l.blocks {
                if f.block(b)
                    .instrs
                    .iter()
                    .any(|i| matches!(i.op, Op::LoadAI { .. }))
                {
                    load_in_loop = true;
                }
            }
        }
        assert!(load_in_loop, "memory reads must not move");
    }

    #[test]
    fn division_not_hoisted() {
        // A division that would fault if executed when the loop runs zero
        // times must stay put (we hoist conservatively: never).
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr); // possibly zero
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        let hundred = fb.loadi(100);
        fb.counted_loop(0, 4, 1, |fb, _| {
            let q = fb.idiv(hundred, p);
            let t = fb.add(acc, q);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        licm(&mut f);
        let dom = Dominators::compute(&f);
        let loops = LoopInfo::compute(&f, &dom);
        let mut div_in_loop = false;
        for l in &loops.loops {
            for &b in &l.blocks {
                if f.block(b).instrs.iter().any(|i| {
                    matches!(
                        i.op,
                        Op::IBin {
                            kind: iloc::IBinKind::Div,
                            ..
                        }
                    )
                }) {
                    div_in_loop = true;
                }
            }
        }
        assert!(div_in_loop, "div must not be hoisted");
    }

    #[test]
    fn nested_loops_hoist_through_both_levels() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let acc = fb.vreg(RegClass::Fpr);
        fb.emit(Op::LoadF { imm: 0.0, dst: acc });
        fb.counted_loop(0, 4, 1, |fb, _| {
            fb.counted_loop(0, 4, 1, |fb, _| {
                let c = fb.loadf(3.0); // invariant w.r.t. both loops
                let t = fb.fadd(acc, c);
                fb.emit(Op::F2F { src: t, dst: acc });
            });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let mut m0 = iloc::Module::new();
        m0.push_function(f.clone());
        let (v0, _) = sim::run_module(&m0, sim::MachineConfig::default(), "f").unwrap();
        to_ssa(&mut f);
        let moved = licm(&mut f);
        assert!(moved >= 1);
        analysis::from_ssa(&mut f);
        verify_function(&f).unwrap();
        let mut m1 = iloc::Module::new();
        m1.push_function(f.clone());
        let (v1, _) = sim::run_module(&m1, sim::MachineConfig::default(), "f").unwrap();
        assert_eq!(v0, v1);
        // The constant must end up outside every loop.
        let dom = Dominators::compute(&f);
        let loops = LoopInfo::compute(&f, &dom);
        for b in f.block_ids() {
            if f.block(b)
                .instrs
                .iter()
                .any(|i| matches!(i.op, Op::LoadF { imm, .. } if imm == 3.0))
            {
                assert_eq!(loops.depth(b), 0, "constant still at depth > 0");
            }
        }
    }
}
