//! Local peephole optimization.
//!
//! Block-local rewrites: algebraic identities (`x+0`, `x*1`, `x*0`),
//! strength reduction (`x * 2ᵏ` → shift), and conversion of
//! register-register arithmetic to immediate forms when one operand is a
//! block-local constant.

use std::collections::HashMap;

use iloc::{Function, IBinKind, Op, Reg};

/// Runs the peephole pass; returns the number of rewrites performed.
pub fn peephole(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // Block-local constant environment (register → known value).
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        let n = f.block(b).instrs.len();
        for i in 0..n {
            let op = f.block(b).instrs[i].op.clone();
            let mut new_op: Option<Op> = None;

            match &op {
                Op::LoadI { imm, dst } => {
                    consts.insert(*dst, *imm);
                }
                Op::IBin {
                    kind,
                    lhs,
                    rhs,
                    dst,
                } => {
                    // Prefer folding to an immediate form when either side
                    // is a known block-local constant.
                    if let Some(&c) = consts.get(rhs) {
                        new_op = Some(Op::IBinI {
                            kind: *kind,
                            lhs: *lhs,
                            imm: c,
                            dst: *dst,
                        });
                    } else if let Some(&c) = consts.get(lhs) {
                        if kind.is_commutative() {
                            new_op = Some(Op::IBinI {
                                kind: *kind,
                                lhs: *rhs,
                                imm: c,
                                dst: *dst,
                            });
                        }
                    }
                }
                Op::IBinI {
                    kind,
                    lhs,
                    imm,
                    dst,
                } => {
                    new_op = simplify_ibini(*kind, *lhs, *imm, *dst);
                }
                Op::FBin {
                    kind: iloc::FBinKind::Mult,
                    lhs,
                    rhs,
                    dst,
                } => {
                    // x * 1.0 → copy (exact for all finite and NaN inputs).
                    // We cannot see float constants here without tracking
                    // them; handled in the match arm below via consts? No:
                    // float constants are tracked separately.
                    let _ = (lhs, rhs, dst);
                }
                _ => {}
            }

            // A second chance: simplify whatever we just created.
            if let Some(Op::IBinI {
                kind,
                lhs,
                imm,
                dst,
            }) = new_op
            {
                new_op = Some(simplify_ibini(kind, lhs, imm, dst).unwrap_or(Op::IBinI {
                    kind,
                    lhs,
                    imm,
                    dst,
                }));
            }

            if let Some(new) = new_op {
                if new != op {
                    // Maintain the constant environment for the rewrite.
                    f.block_mut(b).instrs[i].op = new;
                    changed += 1;
                }
            }

            // Kill constants on redefinition.
            let cur = f.block(b).instrs[i].op.clone();
            if !matches!(cur, Op::LoadI { .. }) {
                cur.visit_defs(|r| {
                    consts.remove(&r);
                });
            }
        }
    }
    changed
}

/// Simplifies `lhs KIND imm => dst`, or returns `None` to keep it.
fn simplify_ibini(kind: IBinKind, lhs: Reg, imm: i64, dst: Reg) -> Option<Op> {
    match (kind, imm) {
        (IBinKind::Add, 0)
        | (IBinKind::Sub, 0)
        | (IBinKind::Mult, 1)
        | (IBinKind::Div, 1)
        | (IBinKind::Shl, 0)
        | (IBinKind::Shr, 0)
        | (IBinKind::Or, 0)
        | (IBinKind::Xor, 0) => Some(Op::I2I { src: lhs, dst }),
        (IBinKind::Mult, 0) | (IBinKind::And, 0) => Some(Op::LoadI { imm: 0, dst }),
        (IBinKind::Mult, c) if c > 1 && (c & (c - 1)) == 0 => Some(Op::IBinI {
            kind: IBinKind::Shl,
            lhs,
            imm: c.trailing_zeros() as i64,
            dst,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    fn first_matching(f: &Function, pred: impl Fn(&Op) -> bool) -> Option<Op> {
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .map(|i| i.op.clone())
            .find(|o| pred(o))
    }

    #[test]
    fn add_zero_becomes_copy() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let r = fb.addi(p, 0);
        fb.ret(&[r]);
        let mut f = fb.finish();
        assert_eq!(peephole(&mut f), 1);
        assert!(first_matching(&f, |o| matches!(o, Op::I2I { .. })).is_some());
    }

    #[test]
    fn mult_power_of_two_becomes_shift() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let r = fb.multi(p, 8);
        fb.ret(&[r]);
        let mut f = fb.finish();
        assert_eq!(peephole(&mut f), 1);
        match first_matching(&f, |o| {
            matches!(
                o,
                Op::IBinI {
                    kind: IBinKind::Shl,
                    ..
                }
            )
        }) {
            Some(Op::IBinI { imm, .. }) => assert_eq!(imm, 3),
            other => panic!("expected shift, got {other:?}"),
        }
    }

    #[test]
    fn reg_reg_with_known_const_becomes_immediate() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let four = fb.loadi(4);
        let r = fb.add(p, four);
        fb.ret(&[r]);
        let mut f = fb.finish();
        assert!(peephole(&mut f) >= 1);
        assert!(
            first_matching(&f, |o| matches!(
                o,
                Op::IBinI {
                    kind: IBinKind::Add,
                    imm: 4,
                    ..
                }
            ))
            .is_some(),
            "{f}"
        );
    }

    #[test]
    fn commuted_const_folds_when_commutative() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let four = fb.loadi(4);
        let r = fb.mult(four, p); // const on the left
        fb.ret(&[r]);
        let mut f = fb.finish();
        assert!(peephole(&mut f) >= 1);
        // 4 is a power of two → should end as a shift by 2.
        assert!(first_matching(&f, |o| matches!(
            o,
            Op::IBinI {
                kind: IBinKind::Shl,
                imm: 2,
                ..
            }
        ))
        .is_some());
    }

    #[test]
    fn const_killed_by_redefinition() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let c = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 4, dst: c });
        fb.emit(Op::I2I { src: p, dst: c }); // c no longer constant
        let r = fb.add(p, c);
        fb.ret(&[r]);
        let mut f = fb.finish();
        peephole(&mut f);
        // The add must remain register-register.
        assert!(first_matching(&f, |o| matches!(o, Op::IBin { .. })).is_some());
    }

    #[test]
    fn mult_zero_becomes_load_zero() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let r = fb.multi(p, 0);
        fb.ret(&[r]);
        let mut f = fb.finish();
        assert_eq!(peephole(&mut f), 1);
        assert!(first_matching(&f, |o| matches!(o, Op::LoadI { imm: 0, .. })).is_some());
    }
}
