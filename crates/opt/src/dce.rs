//! Dead-code elimination (SSA mark-sweep).
//!
//! Marks side-effecting instructions (stores, calls, terminators) live and
//! propagates liveness backwards through SSA use-def edges; everything
//! unmarked is deleted.

use std::collections::{HashMap, HashSet, VecDeque};

use iloc::{Function, Op, Reg};

/// Removes dead instructions from `f` (must be in SSA form for precise
/// results; sound on any single-assignment-per-name code). Returns the
/// number of instructions removed.
pub fn dce(f: &mut Function) -> usize {
    // Map each register to its defining site.
    let mut def_site: HashMap<Reg, (usize, usize)> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, instr) in b.instrs.iter().enumerate() {
            instr.op.visit_defs(|r| {
                def_site.insert(r, (bi, ii));
            });
        }
    }

    let mut live: HashSet<(usize, usize)> = HashSet::new();
    let mut work: VecDeque<(usize, usize)> = VecDeque::new();

    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, instr) in b.instrs.iter().enumerate() {
            if instr.op.has_side_effects() {
                live.insert((bi, ii));
                work.push_back((bi, ii));
            }
        }
    }

    while let Some((bi, ii)) = work.pop_front() {
        f.blocks[bi].instrs[ii].op.visit_uses(|r| {
            if let Some(&site) = def_site.get(&r) {
                if live.insert(site) {
                    work.push_back(site);
                }
            }
        });
    }

    let mut removed = 0;
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        let before = b.instrs.len();
        let mut ii = 0;
        b.instrs.retain(|_| {
            let keep = live.contains(&(bi, ii));
            ii += 1;
            keep
        });
        removed += before - b.instrs.len();
    }
    removed
}

/// Removes blocks unreachable from entry, remapping block ids in branch
/// targets and φ-nodes. Also drops φ-arguments from removed predecessors.
/// Returns the number of blocks removed.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    let reachable: HashSet<usize> = f.reverse_postorder().iter().map(|b| b.index()).collect();
    let n = f.blocks.len();
    if reachable.len() == n {
        return 0;
    }
    // Build old→new id map.
    let mut remap: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    for (i, slot) in remap.iter_mut().enumerate() {
        if reachable.contains(&i) {
            *slot = Some(next);
            next += 1;
        }
    }
    // Drop unreachable blocks.
    let mut kept = Vec::with_capacity(next as usize);
    for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if reachable.contains(&i) {
            kept.push(b);
        }
    }
    f.blocks = kept;
    // Rewrite targets and φs.
    for b in &mut f.blocks {
        for instr in &mut b.instrs {
            if let Op::Phi { args, .. } = &mut instr.op {
                args.retain(|(p, _)| remap[p.index()].is_some());
            }
            instr
                .op
                .map_successors(|t| iloc::BlockId(remap[t.index()].expect("reachable target")));
        }
    }
    n - f.blocks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::to_ssa;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn removes_unused_computation() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let _dead = fb.mult(a, a); // unused
        fb.ret(&[a]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        let removed = dce(&mut f);
        assert_eq!(removed, 1);
    }

    #[test]
    fn keeps_transitively_used_chain() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let b = fb.addi(a, 1);
        let c = fb.addi(b, 1);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn stores_and_calls_always_kept() {
        let mut fb = FuncBuilder::new("f");
        let v = fb.loadi(1);
        fb.storeai(v, iloc::Reg::RARP, 0);
        fb.ret(&[]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn dead_chain_removed_together() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let keep = fb.loadi(5);
        let d1 = fb.loadi(1);
        let d2 = fb.addi(d1, 1);
        let _d3 = fb.mult(d2, d2);
        fb.ret(&[keep]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        assert_eq!(dce(&mut f), 3);
        assert_eq!(f.instr_count(), 2);
    }

    #[test]
    fn unreachable_block_removal_remaps_targets() {
        let mut fb = FuncBuilder::new("f");
        let dead = fb.block("dead");
        let live = fb.block("live");
        fb.jump(live);
        fb.switch_to(dead);
        fb.ret(&[]);
        fb.switch_to(live);
        fb.ret(&[]);
        let mut f = fb.finish();
        assert_eq!(remove_unreachable_blocks(&mut f), 1);
        iloc::verify_function(&f).unwrap();
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.block(f.successors(f.entry())[0]).label, "live");
    }

    #[test]
    fn phi_args_from_removed_preds_dropped() {
        // After folding a branch, the dead arm's φ-argument must go.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let x = fb.vreg(RegClass::Gpr);
        let one = fb.loadi(1);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(one, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 10, dst: x });
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 20, dst: x });
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(&[x]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        crate::sccp::sccp(&mut f); // folds the branch, making `e` dead
        remove_unreachable_blocks(&mut f);
        iloc::verify_function(&f).unwrap();
        for b in &f.blocks {
            for i in &b.instrs {
                if let Op::Phi { args, .. } = &i.op {
                    assert_eq!(args.len(), 1);
                }
            }
        }
    }
}
