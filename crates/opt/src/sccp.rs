//! Sparse conditional constant propagation (Wegman–Zadeck) on SSA form.
//!
//! Runs the classic two-worklist algorithm over the constant lattice
//! ⊤ → const → ⊥, simultaneously tracking CFG edge executability so
//! constants propagate through φ-nodes only along executable edges.
//! Afterwards, constant-valued instructions are rewritten to `loadI` /
//! `loadF` and conditional branches on known conditions become jumps.

use std::collections::{HashMap, HashSet, VecDeque};

use iloc::{BlockId, CmpKind, FBinKind, Function, IBinKind, Op, Reg};

/// A lattice value.
#[derive(Copy, Clone, PartialEq, Debug)]
enum Lattice {
    /// Undetermined (optimistic).
    Top,
    /// A known integer constant.
    Int(i64),
    /// A known float constant.
    Float(f64),
    /// Known to vary.
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        use Lattice::*;
        match (self, other) {
            (Top, x) | (x, Top) => x,
            (Int(a), Int(b)) if a == b => Int(a),
            (Float(a), Float(b)) if a.to_bits() == b.to_bits() => Float(a),
            _ => Bottom,
        }
    }
}

/// Evaluates an integer binary op on constants; `None` means the result
/// must be treated as varying (e.g., division by zero traps at run time).
fn eval_ibin(kind: IBinKind, a: i64, b: i64) -> Option<i64> {
    // Mirror the machine's 32-bit integer semantics exactly (see
    // `sim::machine`): results wrap to 32 bits, kept sign-extended.
    let (a, b) = (a as i32, b as i32);
    let r: i32 = match kind {
        IBinKind::Add => a.wrapping_add(b),
        IBinKind::Sub => a.wrapping_sub(b),
        IBinKind::Mult => a.wrapping_mul(b),
        IBinKind::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        IBinKind::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        IBinKind::And => a & b,
        IBinKind::Or => a | b,
        IBinKind::Xor => a ^ b,
        IBinKind::Shl => a.wrapping_shl(b as u32),
        IBinKind::Shr => a.wrapping_shr(b as u32),
    };
    Some(r as i64)
}

fn eval_fbin(kind: FBinKind, a: f64, b: f64) -> f64 {
    match kind {
        FBinKind::Add => a + b,
        FBinKind::Sub => a - b,
        FBinKind::Mult => a * b,
        FBinKind::Div => a / b,
    }
}

fn eval_icmp(kind: CmpKind, a: i64, b: i64) -> i64 {
    let r = match kind {
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
    };
    r as i64
}

fn eval_fcmp(kind: CmpKind, a: f64, b: f64) -> i64 {
    let r = match kind {
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
    };
    r as i64
}

/// Runs SCCP over `f` (which must be in SSA form) and rewrites what it
/// proves constant. Returns the number of instructions rewritten.
pub fn sccp(f: &mut Function) -> usize {
    let mut value: HashMap<Reg, Lattice> = HashMap::new();
    // Parameters and anything not otherwise defined are varying.
    for &p in &f.params {
        value.insert(p, Lattice::Bottom);
    }

    // Map from each register to the (block, index) of its single SSA def
    // and to its use sites.
    let du = analysis::DefUse::build(f);

    let mut exec_edge: HashSet<(BlockId, BlockId)> = HashSet::new();
    let mut exec_block: HashSet<BlockId> = HashSet::new();
    let mut cfg_work: VecDeque<(Option<BlockId>, BlockId)> = VecDeque::new();
    let mut ssa_work: VecDeque<Reg> = VecDeque::new();
    cfg_work.push_back((None, f.entry()));

    let lat = |value: &HashMap<Reg, Lattice>, r: Reg| -> Lattice {
        if !r.is_virtual() {
            return Lattice::Bottom;
        }
        value.get(&r).copied().unwrap_or(Lattice::Top)
    };

    // Evaluates one instruction, returning the new lattice values of its
    // defs and (for terminators) which successor edges become executable.
    let eval = |f: &Function,
                value: &HashMap<Reg, Lattice>,
                exec_edge: &HashSet<(BlockId, BlockId)>,
                b: BlockId,
                i: usize|
     -> (Vec<(Reg, Lattice)>, Vec<BlockId>) {
        let op = &f.block(b).instrs[i].op;
        let mut defs = Vec::new();
        let mut succs = Vec::new();
        match op {
            Op::LoadI { imm, dst } => defs.push((*dst, Lattice::Int(*imm as i32 as i64))),
            Op::LoadF { imm, dst } => defs.push((*dst, Lattice::Float(*imm))),
            Op::IBin {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                let v = match (lat(value, *lhs), lat(value, *rhs)) {
                    (Lattice::Int(a), Lattice::Int(b)) => {
                        eval_ibin(*kind, a, b).map_or(Lattice::Bottom, Lattice::Int)
                    }
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::IBinI {
                kind,
                lhs,
                imm,
                dst,
            } => {
                let v = match lat(value, *lhs) {
                    Lattice::Int(a) => {
                        eval_ibin(*kind, a, *imm).map_or(Lattice::Bottom, Lattice::Int)
                    }
                    Lattice::Top => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::FBin {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                let v = match (lat(value, *lhs), lat(value, *rhs)) {
                    (Lattice::Float(a), Lattice::Float(b)) => {
                        Lattice::Float(eval_fbin(*kind, a, b))
                    }
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::ICmp {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                let v = match (lat(value, *lhs), lat(value, *rhs)) {
                    (Lattice::Int(a), Lattice::Int(b)) => Lattice::Int(eval_icmp(*kind, a, b)),
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::FCmp {
                kind,
                lhs,
                rhs,
                dst,
            } => {
                let v = match (lat(value, *lhs), lat(value, *rhs)) {
                    (Lattice::Float(a), Lattice::Float(b)) => Lattice::Int(eval_fcmp(*kind, a, b)),
                    (Lattice::Top, _) | (_, Lattice::Top) => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::I2I { src, dst } | Op::F2F { src, dst } => {
                defs.push((*dst, lat(value, *src)));
            }
            Op::I2F { src, dst } => {
                let v = match lat(value, *src) {
                    Lattice::Int(a) => Lattice::Float(a as f64),
                    Lattice::Top => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::F2I { src, dst } => {
                let v = match lat(value, *src) {
                    Lattice::Float(a) => Lattice::Int(a as i32 as i64),
                    Lattice::Top => Lattice::Top,
                    _ => Lattice::Bottom,
                };
                defs.push((*dst, v));
            }
            Op::Phi { dst, args } => {
                let mut acc = Lattice::Top;
                for (p, r) in args {
                    if exec_edge.contains(&(*p, b)) {
                        acc = acc.meet(lat(value, *r));
                    }
                }
                defs.push((*dst, acc));
            }
            Op::Jump { target } => succs.push(*target),
            Op::Cbr {
                cond,
                taken,
                not_taken,
            } => match lat(value, *cond) {
                Lattice::Int(0) => succs.push(*not_taken),
                Lattice::Int(_) => succs.push(*taken),
                Lattice::Top => {}
                _ => {
                    succs.push(*taken);
                    succs.push(*not_taken);
                }
            },
            // Everything else (loads, calls, …) defines ⊥.
            other => {
                other.visit_defs(|r| defs.push((r, Lattice::Bottom)));
            }
        }
        (defs, succs)
    };

    // Main propagation loop.
    while !cfg_work.is_empty() || !ssa_work.is_empty() {
        while let Some((from, to)) = cfg_work.pop_front() {
            if let Some(fr) = from {
                if !exec_edge.insert((fr, to)) {
                    continue;
                }
            }
            let first_visit = exec_block.insert(to);
            // (Re)evaluate φs always; the rest of the block on first visit.
            let n = f.block(to).instrs.len();
            for i in 0..n {
                let is_phi = matches!(f.block(to).instrs[i].op, Op::Phi { .. });
                if !first_visit && !is_phi {
                    continue;
                }
                let (defs, succs) = eval(f, &value, &exec_edge, to, i);
                for (r, v) in defs {
                    let old = lat(&value, r);
                    let new = old.meet(v);
                    if new != old {
                        value.insert(r, new);
                        ssa_work.push_back(r);
                    }
                }
                for s in succs {
                    cfg_work.push_back((Some(to), s));
                }
            }
        }
        while let Some(r) = ssa_work.pop_front() {
            for site in du.uses(r).to_vec() {
                if !exec_block.contains(&site.block) {
                    continue;
                }
                let (defs, succs) = eval(f, &value, &exec_edge, site.block, site.index);
                for (d, v) in defs {
                    let old = lat(&value, d);
                    let new = old.meet(v);
                    if new != old {
                        value.insert(d, new);
                        ssa_work.push_back(d);
                    }
                }
                for s in succs {
                    cfg_work.push_back((Some(site.block), s));
                }
            }
        }
    }

    // Rewrite pass: materialize constants, fold known branches.
    let mut rewritten = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let n = f.block(b).instrs.len();
        for i in 0..n {
            let op = f.block(b).instrs[i].op.clone();
            if op.has_side_effects() && !matches!(op, Op::Cbr { .. }) {
                continue;
            }
            match &op {
                Op::Cbr {
                    cond,
                    taken,
                    not_taken,
                } => {
                    if let Lattice::Int(c) = lat(&value, *cond) {
                        let target = if c != 0 { *taken } else { *not_taken };
                        f.block_mut(b).instrs[i].op = Op::Jump { target };
                        rewritten += 1;
                    }
                }
                Op::LoadI { .. } | Op::LoadF { .. } => {}
                other => {
                    let defs = other.defs();
                    if defs.len() != 1 {
                        continue;
                    }
                    let dst = defs[0];
                    match lat(&value, dst) {
                        Lattice::Int(c) => {
                            f.block_mut(b).instrs[i].op = Op::LoadI { imm: c, dst };
                            rewritten += 1;
                        }
                        Lattice::Float(c) => {
                            f.block_mut(b).instrs[i].op = Op::LoadF { imm: c, dst };
                            rewritten += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        // A φ rewritten into a constant load may now sit between other
        // φ-nodes, violating the φs-lead-the-block invariant. The
        // materialized constants read no registers, so stably moving the
        // remaining φs back to the head is safe.
        let instrs = &mut f.block_mut(b).instrs;
        if instrs
            .iter()
            .skip(
                instrs
                    .iter()
                    .take_while(|i| matches!(i.op, Op::Phi { .. }))
                    .count(),
            )
            .any(|i| matches!(i.op, Op::Phi { .. }))
        {
            let (phis, rest): (Vec<_>, Vec<_>) = std::mem::take(instrs)
                .into_iter()
                .partition(|i| matches!(i.op, Op::Phi { .. }));
            *instrs = phis.into_iter().chain(rest).collect();
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::to_ssa;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    #[test]
    fn folds_straightline_arithmetic() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(6);
        let b = fb.loadi(7);
        let c = fb.mult(a, b);
        fb.ret(&[c]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        let n = sccp(&mut f);
        assert!(n >= 1);
        // The mult must have become loadI 42.
        let found = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::LoadI { imm: 42, .. }));
        assert!(found, "expected folded 42:\n{f}");
    }

    #[test]
    fn folds_branch_on_constant_condition() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let one = fb.loadi(1);
        let two = fb.loadi(2);
        let c = fb.icmp(CmpKind::Lt, one, two); // always true
        let t = fb.block("t");
        let e = fb.block("e");
        fb.cbr(c, t, e);
        fb.switch_to(t);
        let x = fb.loadi(10);
        fb.ret(&[x]);
        fb.switch_to(e);
        let y = fb.loadi(20);
        fb.ret(&[y]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        // Entry's terminator must now be an unconditional jump to `t`.
        let term = f.block(f.entry()).terminator().unwrap().clone();
        match term {
            Op::Jump { target } => assert_eq!(f.block(target).label, "t"),
            other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn constant_survives_diamond_when_arms_agree() {
        // x = 5 on both arms → φ is 5.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr); // unknown condition
        let x = fb.vreg(RegClass::Gpr);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(p, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 5, dst: x });
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 5, dst: x });
        fb.jump(j);
        fb.switch_to(j);
        let y = fb.addi(x, 1);
        fb.ret(&[y]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        let found = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::LoadI { imm: 6, .. }));
        assert!(found, "expected x+1 folded to 6:\n{f}");
    }

    #[test]
    fn disagreeing_arms_stay_varying() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let x = fb.vreg(RegClass::Gpr);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(p, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 5, dst: x });
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 9, dst: x });
        fb.jump(j);
        fb.switch_to(j);
        let y = fb.addi(x, 1);
        fb.ret(&[y]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        // No folded 6 or 10 — the add must remain.
        let still_add = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i.op,
                Op::IBinI {
                    kind: IBinKind::Add,
                    ..
                }
            )
        });
        assert!(still_add);
    }

    #[test]
    fn unreachable_arm_does_not_pollute_phi() {
        // cond is constant false → only the else arm's value reaches the φ.
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let zero = fb.loadi(0);
        let x = fb.vreg(RegClass::Gpr);
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(zero, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 111, dst: x });
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 5, dst: x });
        fb.jump(j);
        fb.switch_to(j);
        let y = fb.addi(x, 1);
        fb.ret(&[y]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        let found = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::LoadI { imm: 6, .. }));
        assert!(found, "φ should see only the executable arm:\n{f}");
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let a = fb.loadi(1);
        let z = fb.loadi(0);
        let q = fb.idiv(a, z);
        fb.ret(&[q]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        let still_div = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i.op,
                Op::IBin {
                    kind: IBinKind::Div,
                    ..
                }
            )
        });
        assert!(still_div, "div by zero must not be folded away");
    }
}

#[cfg(test)]
mod phi_prefix_tests {
    use super::*;
    use analysis::to_ssa;
    use iloc::builder::FuncBuilder;
    use iloc::RegClass;

    /// A block with two φs where the first folds to a constant: the
    /// surviving φ must still lead the block (regression test for the
    /// φ-prefix invariant).
    #[test]
    fn folding_one_of_two_phis_keeps_prefix() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr, RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr); // unknown
        let a = fb.vreg(RegClass::Gpr); // constant on both arms → folds
        let b = fb.vreg(RegClass::Gpr); // differs per arm → stays a φ
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.cbr(p, t, e);
        fb.switch_to(t);
        fb.emit(Op::LoadI { imm: 7, dst: a });
        fb.emit(Op::LoadI { imm: 1, dst: b });
        fb.jump(j);
        fb.switch_to(e);
        fb.emit(Op::LoadI { imm: 7, dst: a });
        fb.emit(Op::LoadI { imm: 2, dst: b });
        fb.jump(j);
        fb.switch_to(j);
        let s = fb.add(a, b);
        fb.ret(&[s, a]);
        let mut f = fb.finish();
        to_ssa(&mut f);
        sccp(&mut f);
        iloc::verify_function(&f).expect("phi prefix intact");
        // And destruction still works.
        analysis::from_ssa(&mut f);
        iloc::verify_function(&f).unwrap();
        for blk in &f.blocks {
            for i in &blk.instrs {
                assert!(!matches!(i.op, Op::Phi { .. }), "leftover phi");
            }
        }
    }
}
