//! Pass management and the standard optimization pipeline.
//!
//! The paper's input routines were "subjected to extensive scalar
//! optimization, including global value numbering, global constant
//! propagation, global dead-code elimination, partial redundancy
//! elimination, and peephole optimization". [`optimize_function`] applies
//! the analogous pipeline here so the spills measured downstream are
//! allocator-induced rather than artifacts of naive code generation.

use iloc::{Function, Module};

use crate::dce::{dce, remove_unreachable_blocks};
use crate::gvn::gvn;
use crate::peephole::peephole;
use crate::sccp::sccp;
use crate::unroll::unroll_loops;

/// Options controlling the pipeline.
#[derive(Copy, Clone, Debug)]
pub struct OptOptions {
    /// Unroll factor applied to canonical counted loops before the scalar
    /// passes; `None` disables unrolling. This is the register-pressure
    /// transformation standing in for the paper's prefetch-oriented loop
    /// transformations (routines so transformed carry an `X` suffix).
    pub unroll: Option<u32>,
    /// Maximum number of SCCP→GVN→DCE rounds (the pipeline stops early
    /// when a round changes nothing).
    pub max_rounds: u32,
    /// Run loop-invariant code motion after the scalar rounds. Off by
    /// default: LICM lengthens live ranges across loops, substantially
    /// raising register pressure — the harness ablates this choice.
    pub licm: bool,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            unroll: None,
            max_rounds: 3,
            licm: false,
        }
    }
}

/// Statistics from one pipeline run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Loops unrolled.
    pub loops_unrolled: usize,
    /// Instructions constant-folded by SCCP.
    pub constants_folded: usize,
    /// Redundancies removed by GVN.
    pub redundancies_removed: usize,
    /// Instructions deleted by DCE.
    pub dead_removed: usize,
    /// Peephole rewrites.
    pub peephole_rewrites: usize,
    /// Unreachable blocks deleted.
    pub blocks_removed: usize,
    /// Instructions hoisted by LICM.
    pub hoisted: usize,
}

/// Runs the standard scalar pipeline over one function:
/// optional unrolling, then iterated SSA-based SCCP + GVN + DCE, then
/// peephole and CFG cleanup, finishing in non-SSA form.
pub fn optimize_function(f: &mut Function, opts: &OptOptions) -> OptStats {
    let mut stats = OptStats::default();

    if let Some(factor) = opts.unroll {
        stats.loops_unrolled = unroll_loops(f, factor);
    }

    analysis::to_ssa(f);
    for _ in 0..opts.max_rounds {
        let folded = sccp(f);
        let redundant = gvn(f);
        let dead = dce(f);
        stats.constants_folded += folded;
        stats.redundancies_removed += redundant;
        stats.dead_removed += dead;
        stats.blocks_removed += remove_unreachable_blocks(f);
        if folded + redundant + dead == 0 {
            break;
        }
    }
    if opts.licm {
        stats.hoisted = crate::licm::licm(f);
    }
    analysis::from_ssa(f);

    stats.peephole_rewrites = peephole(f);
    // Peephole may create dead `loadI`s (e.g. after strength reduction the
    // original constant may be unused); a final sweep is cheap. The code
    // is out of SSA, so run a conservative local cleanup: remove register
    // defs with no uses anywhere and no side effects.
    let du = analysis::DefUse::build(f);
    let mut dead_regs = std::collections::HashSet::new();
    for r in du.registers() {
        if du.is_dead(r) {
            dead_regs.insert(r);
        }
    }
    stats.dead_removed += f.remove_instrs(|i| {
        if i.op.has_side_effects() {
            return false;
        }
        let defs = i.op.defs();
        !defs.is_empty() && defs.iter().all(|d| dead_regs.contains(d))
    });

    stats
}

/// Runs [`optimize_function`] over every function in the module.
pub fn optimize_module(m: &mut Module, opts: &OptOptions) -> OptStats {
    let mut total = OptStats::default();
    for f in &mut m.functions {
        let s = optimize_function(f, opts);
        total.loops_unrolled += s.loops_unrolled;
        total.constants_folded += s.constants_folded;
        total.redundancies_removed += s.redundancies_removed;
        total.dead_removed += s.dead_removed;
        total.peephole_rewrites += s.peephole_rewrites;
        total.blocks_removed += s.blocks_removed;
        total.hoisted += s.hoisted;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, Op, RegClass};

    #[test]
    fn pipeline_shrinks_redundant_code_and_verifies() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let a = fb.loadi(21);
        let b = fb.loadi(21);
        let c = fb.add(a, b); // folds to 42
        let d = fb.add(p, c);
        let e = fb.add(p, c); // redundant with d
        let r = fb.add(d, e);
        let _dead = fb.mult(r, r);
        fb.ret(&[r]);
        let mut f = fb.finish();
        let before = f.instr_count();
        let stats = optimize_function(&mut f, &OptOptions::default());
        verify_function(&f).unwrap();
        assert!(f.instr_count() < before);
        assert!(stats.constants_folded > 0);
        assert!(stats.dead_removed > 0);
    }

    #[test]
    fn pipeline_with_unrolling_replicates_body() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Fpr]);
        let acc = fb.vreg(RegClass::Fpr);
        fb.emit(Op::LoadF { imm: 0.0, dst: acc });
        fb.counted_loop(0, 16, 1, |fb, iv| {
            let x = fb.i2f(iv);
            let t = fb.fadd(acc, x);
            fb.emit(Op::F2F { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        let stats = optimize_function(
            &mut f,
            &OptOptions {
                unroll: Some(4),
                ..OptOptions::default()
            },
        );
        verify_function(&f).unwrap();
        assert_eq!(stats.loops_unrolled, 1);
    }

    #[test]
    fn pipeline_leaves_no_phis() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 10, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        optimize_function(&mut f, &OptOptions::default());
        verify_function(&f).unwrap();
        for b in &f.blocks {
            for i in &b.instrs {
                assert!(!matches!(i.op, Op::Phi { .. }));
            }
        }
    }
}
