#![warn(missing_docs)]
//! Scalar optimizations over the ILOC-like IR.
//!
//! Implements the pipeline the paper's input codes were subjected to:
//! sparse conditional constant propagation ([`sccp()`]), dominator-based
//! global value numbering ([`gvn()`]), dead-code elimination ([`dce()`]),
//! peephole optimization ([`peephole()`]), loop-invariant code motion
//! ([`licm()`], optional), and loop unrolling
//! ([`unroll_loops()`]) as the register-pressure transformation standing in
//! for the paper's prefetch-oriented loop transformations.
//!
//! [`optimize_function`] / [`optimize_module`] run the standard pipeline.
//!
//! # Example
//!
//! ```
//! use iloc::builder::FuncBuilder;
//! use iloc::RegClass;
//!
//! let mut fb = FuncBuilder::new("f");
//! fb.set_ret_classes(&[RegClass::Gpr]);
//! let a = fb.loadi(6);
//! let b = fb.loadi(7);
//! let c = fb.mult(a, b);          // folds to 42
//! let d = fb.mult(a, b);          // redundant — GVN removes it
//! let s = fb.add(c, d);
//! fb.ret(&[s]);
//! let mut f = fb.finish();
//!
//! let stats = opt::optimize_function(&mut f, &opt::OptOptions::default());
//! assert!(stats.constants_folded + stats.redundancies_removed > 0);
//! iloc::verify_function(&f).unwrap();
//! ```

pub mod dce;
pub mod gvn;
pub mod licm;
pub mod peephole;
pub mod pipeline;
pub mod sccp;
pub mod unroll;

pub use dce::{dce, remove_unreachable_blocks};
pub use gvn::gvn;
pub use licm::licm;
pub use peephole::peephole;
pub use pipeline::{optimize_function, optimize_module, OptOptions, OptStats};
pub use sccp::sccp;
pub use unroll::unroll_loops;
