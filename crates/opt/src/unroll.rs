//! Loop unrolling for canonical counted loops.
//!
//! This is the "register-pressure transformation" of the reproduction: the
//! paper's `X`-suffixed routines were loop-transformed (for prefetching)
//! in ways that *greatly increased register pressure*. Unrolling followed
//! by global value numbering has the same effect here — address
//! computations and constants become common subexpressions whose live
//! ranges stretch across the whole unrolled body.
//!
//! Only loops in the canonical shape produced by
//! [`FuncBuilder::counted_loop`](iloc::builder::FuncBuilder::counted_loop)
//! with compile-time-constant trip counts divisible by the unroll factor
//! are transformed; anything else is left untouched.

use analysis::{Dominators, LoopInfo};
use iloc::{BlockId, CmpKind, Function, IBinKind, Instr, Op, Reg};

/// Description of a recognized canonical counted loop.
#[derive(Debug)]
struct Candidate {
    body: BlockId,
    trip: i64,
}

/// Unrolls every canonical counted loop whose trip count is a known
/// constant divisible by `factor`. The loop body is replicated `factor`
/// times (each replica keeps its induction-variable update, so the
/// transformation is trivially semantics-preserving) and the back-edge
/// test now fires every `factor` iterations. Returns the number of loops
/// unrolled.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_loops(f: &mut Function, factor: u32) -> usize {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let dom = Dominators::compute(f);
    let loops = LoopInfo::compute(f, &dom);
    let preds = f.predecessors();

    let mut candidates = Vec::new();
    for l in &loops.loops {
        if let Some(c) = recognize(f, &preds, l.header, &l.blocks) {
            if c.trip >= factor as i64 && c.trip % factor as i64 == 0 {
                candidates.push(c);
            }
        }
    }

    for c in &candidates {
        let body = f.block(c.body).instrs.clone();
        let (iter, jump) = body.split_at(body.len() - 1);
        debug_assert!(matches!(jump[0].op, Op::Jump { .. }));
        let mut new_instrs: Vec<Instr> = Vec::with_capacity(iter.len() * factor as usize + 1);
        for _ in 0..factor {
            new_instrs.extend_from_slice(iter);
        }
        new_instrs.push(jump[0].clone());
        f.block_mut(c.body).instrs = new_instrs;
    }
    candidates.len()
}

/// Matches the canonical shape:
///
/// ```text
/// preheader: … loadI START => iv …   (last def of iv)
/// header:    loadI BOUND => b
///            cmp_lt iv, b => c        (or cmp_gt for negative step)
///            cbr c -> body, exit
/// body:      …
///            addI iv, STEP => t
///            i2i t => iv
///            jump -> header
/// ```
fn recognize(
    f: &Function,
    preds: &[Vec<BlockId>],
    header: BlockId,
    loop_blocks: &[BlockId],
) -> Option<Candidate> {
    if loop_blocks.len() != 2 {
        return None;
    }
    let h = f.block(header);
    if h.instrs.len() != 3 {
        return None;
    }
    let (bound, bound_reg) = match &h.instrs[0].op {
        Op::LoadI { imm, dst } => (*imm, *dst),
        _ => return None,
    };
    let (cmp_kind, iv) = match &h.instrs[1].op {
        Op::ICmp { kind, lhs, rhs, .. } if *rhs == bound_reg => (*kind, *lhs),
        _ => return None,
    };
    let body = match &h.instrs[2].op {
        Op::Cbr { taken, .. } => *taken,
        _ => return None,
    };
    if !loop_blocks.contains(&body) || body == header {
        return None;
    }
    let bb = f.block(body);
    if bb.instrs.len() < 3 {
        return None;
    }
    let n = bb.instrs.len();
    match &bb.instrs[n - 1].op {
        Op::Jump { target } if *target == header => {}
        _ => return None,
    }
    let (step, t) = match &bb.instrs[n - 3].op {
        Op::IBinI {
            kind: IBinKind::Add,
            lhs,
            imm,
            dst,
        } if *lhs == iv => (*imm, *dst),
        _ => return None,
    };
    match &bb.instrs[n - 2].op {
        Op::I2I { src, dst } if *src == t && *dst == iv => {}
        _ => return None,
    }
    // The comparison direction must match the step direction.
    match (cmp_kind, step.signum()) {
        (CmpKind::Lt, 1) | (CmpKind::Gt, -1) => {}
        _ => return None,
    }
    // No other def of iv inside the body.
    let mut defs_of_iv = 0;
    for i in &bb.instrs {
        i.op.visit_defs(|r| {
            if r == iv {
                defs_of_iv += 1;
            }
        });
    }
    if defs_of_iv != 1 {
        return None;
    }
    // Find the loop-entry value of iv: last def in the unique preheader
    // must be a loadI.
    let outside: Vec<BlockId> = preds[header.index()]
        .iter()
        .copied()
        .filter(|p| *p != body)
        .collect();
    if outside.len() != 1 {
        return None;
    }
    let start = last_def_as_const(f, outside[0], iv)?;
    let span = bound - start;
    if step == 0 || span % step != 0 || span / step <= 0 {
        return None;
    }
    Some(Candidate {
        body,
        trip: span / step,
    })
}

fn last_def_as_const(f: &Function, b: BlockId, reg: Reg) -> Option<i64> {
    let mut result = None;
    for i in &f.block(b).instrs {
        let mut defines = false;
        i.op.visit_defs(|r| {
            if r == reg {
                defines = true;
            }
        });
        if defines {
            result = match &i.op {
                Op::LoadI { imm, .. } => Some(*imm),
                _ => None,
            };
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use iloc::builder::FuncBuilder;
    use iloc::{verify_function, RegClass};

    fn sum_loop(n: i64) -> Function {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, n, 1, |fb, iv| {
            let t = fb.add(acc, iv);
            fb.emit(Op::I2I { src: t, dst: acc });
        });
        fb.ret(&[acc]);
        fb.finish()
    }

    #[test]
    fn canonical_loop_unrolls() {
        let mut f = sum_loop(16);
        let body_before = f.block(BlockId(2)).instrs.len();
        assert_eq!(unroll_loops(&mut f, 4), 1);
        verify_function(&f).unwrap();
        let body_after = f.block(BlockId(2)).instrs.len();
        // (body - jump) × 4 + jump
        assert_eq!(body_after, (body_before - 1) * 4 + 1);
    }

    #[test]
    fn non_divisible_trip_skipped() {
        let mut f = sum_loop(10);
        assert_eq!(unroll_loops(&mut f, 4), 0);
    }

    #[test]
    fn trip_smaller_than_factor_skipped() {
        let mut f = sum_loop(2);
        assert_eq!(unroll_loops(&mut f, 4), 0);
    }

    #[test]
    fn nested_loops_unroll_inner_and_outer() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let acc = fb.vreg(RegClass::Gpr);
        fb.emit(Op::LoadI { imm: 0, dst: acc });
        fb.counted_loop(0, 8, 1, |fb, _| {
            fb.counted_loop(0, 8, 1, |fb, j| {
                let t = fb.add(acc, j);
                fb.emit(Op::I2I { src: t, dst: acc });
            });
        });
        fb.ret(&[acc]);
        let mut f = fb.finish();
        // The inner loop matches. The outer loop's body spans several
        // blocks, so only the inner is transformed.
        assert_eq!(unroll_loops(&mut f, 2), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn unknown_start_skipped() {
        let mut fb = FuncBuilder::new("f");
        fb.set_ret_classes(&[RegClass::Gpr]);
        let p = fb.param(RegClass::Gpr);
        let iv = fb.vreg(RegClass::Gpr);
        fb.emit(Op::I2I { src: p, dst: iv }); // start is not a constant
        let header = fb.block("h");
        let body = fb.block("b");
        let exit = fb.block("x");
        fb.jump(header);
        fb.switch_to(header);
        let bound = fb.loadi(8);
        let c = fb.icmp(CmpKind::Lt, iv, bound);
        fb.cbr(c, body, exit);
        fb.switch_to(body);
        let t = fb.addi(iv, 1);
        fb.emit(Op::I2I { src: t, dst: iv });
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(&[iv]);
        let mut f = fb.finish();
        assert_eq!(unroll_loops(&mut f, 2), 0);
    }
}
