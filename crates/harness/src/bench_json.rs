//! The perf trajectory: `repro --bench-json PATH`.
//!
//! Writes a machine-readable snapshot of simulator throughput so future
//! changes have a baseline to compare against (`BENCH_sim.json` at the
//! repo root is the committed seed). For every suite kernel, the module
//! is built and allocated once (post-pass + call graph at 512 bytes,
//! the paper's headline configuration), then run under **both**
//! execution engines on a reused [`sim::Machine`] — so the decoded
//! engine's one-time lowering is amortized exactly as in a campaign —
//! and the steady-state instructions/second are reported per engine.
//! Any stage timings recorded by [`exec::timed`] earlier in the same
//! `repro` invocation (e.g. `--all`) are appended, giving one file that
//! tracks both raw simulator speed and end-to-end experiment time.
//!
//! JSON is hand-rolled: the fields are flat numbers and strings, and
//! the container has no serde (vendored-shim policy).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use sim::{Engine, Machine, MachineConfig};

use crate::pipeline::{allocate_variant, Variant};

/// Throughput of one engine on one kernel.
#[derive(Clone, Copy, Debug)]
pub struct EngineSample {
    /// Steady-state wall-clock seconds per run (median-free mean over
    /// the timed window).
    pub secs_per_run: f64,
    /// Executed instructions per wall-clock second.
    pub instrs_per_sec: f64,
}

/// Both engines' throughput on one kernel.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Kernel name.
    pub name: String,
    /// Dynamic instruction count of one run.
    pub instrs: u64,
    /// Simulated cycles of one run.
    pub cycles: u64,
    /// AST (reference) engine throughput.
    pub ast: EngineSample,
    /// Decoded engine throughput.
    pub decoded: EngineSample,
}

impl KernelBench {
    /// Decoded-over-AST throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.decoded.instrs_per_sec / self.ast.instrs_per_sec
    }
}

/// Times `machine` running `main` repeatedly until the sample window is
/// statistically useful (at least ~80ms or 64 runs, after one warm-up
/// run that also pays the decoded engine's one-time lowering).
fn sample(machine: &mut Machine) -> Result<EngineSample, String> {
    machine.run("main").map_err(|e| e.to_string())?;
    let instrs = machine.metrics.instrs;
    let start = std::time::Instant::now();
    let mut runs = 0u32;
    loop {
        machine.run("main").map_err(|e| e.to_string())?;
        runs += 1;
        if runs >= 64 || start.elapsed().as_secs_f64() > 0.08 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let per_run = secs / f64::from(runs);
    Ok(EngineSample {
        secs_per_run: per_run,
        instrs_per_sec: instrs as f64 / per_run,
    })
}

/// Benchmarks every suite kernel under both engines.
///
/// # Errors
///
/// Returns a message naming the kernel and trap if any run fails —
/// suite kernels are deterministic, so a trap here is a real bug.
pub fn bench_kernels() -> Result<Vec<KernelBench>, String> {
    let mut out = Vec::new();
    for k in suite::kernels() {
        let mut m = suite::build_optimized(&k);
        allocate_variant(&mut m, Variant::PostPassCallGraph, 512);
        let bench = |engine: Engine| -> Result<(EngineSample, u64, u64), String> {
            let cfg = MachineConfig {
                engine,
                ..MachineConfig::with_ccm(512)
            };
            let mut machine = Machine::new(&m, cfg);
            let s =
                sample(&mut machine).map_err(|e| format!("{} [{}]: {e}", k.name, engine.name()))?;
            Ok((s, machine.metrics.instrs, machine.metrics.cycles))
        };
        let (ast, instrs, cycles) = bench(Engine::Ast)?;
        let (decoded, d_instrs, d_cycles) = bench(Engine::Decoded)?;
        debug_assert_eq!((instrs, cycles), (d_instrs, d_cycles));
        out.push(KernelBench {
            name: k.name.to_string(),
            instrs,
            cycles,
            ast,
            decoded,
        });
    }
    Ok(out)
}

/// Renders the snapshot as JSON: per-kernel engine throughput plus any
/// stage timings recorded so far this process.
pub fn render_json(kernels: &[KernelBench], stages: &[(String, f64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"ccm-bench-sim/1\",\n  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let sep = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"instrs\": {}, \"cycles\": {}, \
             \"ast_secs_per_run\": {:.6e}, \"ast_instrs_per_sec\": {:.4e}, \
             \"decoded_secs_per_run\": {:.6e}, \"decoded_instrs_per_sec\": {:.4e}, \
             \"speedup\": {:.2}}}{sep}",
            k.name,
            k.instrs,
            k.cycles,
            k.ast.secs_per_run,
            k.ast.instrs_per_sec,
            k.decoded.secs_per_run,
            k.decoded.instrs_per_sec,
            k.speedup(),
        );
    }
    s.push_str("  ],\n  \"stages\": [\n");
    for (i, (name, secs)) in stages.iter().enumerate() {
        let sep = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(s, "    {{\"name\": \"{name}\", \"secs\": {secs:.3}}}{sep}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the kernel benchmark and writes the JSON snapshot to `path`,
/// including all stage timings recorded so far. Returns the geometric
/// mean decoded-over-AST speedup for the summary line.
///
/// # Errors
///
/// Returns an IO error from writing, or a synthesized one naming the
/// kernel if a simulation trapped.
pub fn write_bench_json(path: &Path) -> io::Result<f64> {
    let kernels = bench_kernels().map_err(io::Error::other)?;
    let json = render_json(&kernels, &exec::recorded_stages());
    std::fs::write(path, json)?;
    let gm = kernels.iter().map(|k| k.speedup().ln()).sum::<f64>() / kernels.len() as f64;
    Ok(gm.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough() {
        let kernels = vec![KernelBench {
            name: "k".to_string(),
            instrs: 1000,
            cycles: 1500,
            ast: EngineSample {
                secs_per_run: 1e-3,
                instrs_per_sec: 1e6,
            },
            decoded: EngineSample {
                secs_per_run: 2.5e-4,
                instrs_per_sec: 4e6,
            },
        }];
        let stages = vec![("table1".to_string(), 1.25)];
        let j = render_json(&kernels, &stages);
        assert!(j.contains("\"schema\": \"ccm-bench-sim/1\""));
        assert!(j.contains("\"name\": \"k\""));
        assert!(j.contains("\"speedup\": 4.00"));
        assert!(j.contains("\"name\": \"table1\", \"secs\": 1.250"));
        // Balanced braces/brackets (cheap well-formedness check without
        // a JSON parser in the workspace).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.chars().filter(|&c| c == open).count(),
                j.chars().filter(|&c| c == close).count()
            );
        }
    }

    #[test]
    fn one_kernel_benchmarks_under_both_engines() {
        let k = suite::kernel("zeroin").expect("kernel exists");
        let mut m = suite::build_optimized(&k);
        allocate_variant(&mut m, Variant::PostPassCallGraph, 512);
        for engine in [Engine::Ast, Engine::Decoded] {
            let cfg = MachineConfig {
                engine,
                ..MachineConfig::with_ccm(512)
            };
            let mut machine = Machine::new(&m, cfg);
            let s = sample(&mut machine).expect("kernel runs");
            assert!(s.instrs_per_sec > 0.0);
        }
    }
}
