//! Extension experiments beyond the paper's tables: the CCM sizing curve
//! (§4.1's "how much CCM is necessary?"), and ablations of the design
//! choices DESIGN.md calls out — scalar optimization, LICM, coalescing,
//! and the calling convention.

use regalloc::AllocConfig;
use sim::MachineConfig;

use crate::error::{self, PipelineError, Stage};
use crate::pipeline::Variant;

/// One point on the CCM sizing curve.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// CCM capacity in bytes.
    pub ccm_size: u32,
    /// Suite-weighted percent reduction in total cycles (post-pass w/
    /// call graph vs. baseline).
    pub total_pct: f64,
    /// Suite-weighted percent reduction in memory-operation cycles.
    pub mem_pct: f64,
    /// Fraction of spilled live ranges promoted into the CCM.
    pub promoted_fraction: f64,
}

/// Sweeps the CCM size over the spilling kernels, answering the paper's
/// sizing question: most of the benefit arrives by a few hundred bytes.
pub fn ccm_sweep(sizes: &[u32]) -> Vec<SweepPoint> {
    ccm_sweep_jobs(sizes, exec::default_jobs())
}

/// [`ccm_sweep`] with an explicit worker count.
pub fn ccm_sweep_jobs(sizes: &[u32], jobs: usize) -> Vec<SweepPoint> {
    // Measure the baseline once, in parallel over the (cached) builds.
    let kernels = suite::kernels();
    let machine0 = MachineConfig::with_ccm(16);
    let baselines = error::par_contained(
        jobs,
        &kernels,
        |k| format!("sweep baseline {}", k.name),
        |k| {
            let m = crate::cache::optimized(k)?;
            crate::cache::measure_unit(k.name, &m, Variant::Baseline, &machine0)
        },
    );
    // A kernel whose baseline failed is recorded and excluded from the
    // curve entirely (never half-counted in one size's totals).
    let spilling: Vec<usize> = (0..kernels.len())
        .filter(|&i| baselines[i].as_ref().is_some_and(|b| b.spilled_ranges > 0))
        .collect();
    let base = |i: &usize| baselines[*i].as_ref();
    let base_total: u64 = spilling.iter().filter_map(base).map(|b| b.cycles).sum();
    let base_mem: u64 = spilling.iter().filter_map(base).map(|b| b.mem_cycles).sum();

    // One work item per (size, spilling kernel); per-size totals are
    // folded in item order afterward.
    let mut items: Vec<(usize, u32, usize)> = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        for &ki in &spilling {
            items.push((si, size, ki));
        }
    }
    let cells = error::par_contained(
        jobs,
        &items,
        |(_, size, ki)| format!("sweep {} @ {size} B", kernels[*ki].name),
        |(si, size, ki)| {
            let machine = MachineConfig::with_ccm(*size);
            let k = &kernels[*ki];
            let m = crate::cache::optimized(k)?;
            let r = crate::cache::measure_unit(k.name, &m, Variant::PostPassCallGraph, &machine)?;
            Ok((
                *si,
                r.cycles,
                r.mem_cycles,
                r.metrics.ccm_ops,
                r.metrics.spill_stores + r.metrics.spill_restores,
            ))
        },
    );

    let mut sums = vec![(0u64, 0u64, 0u64, 0u64); sizes.len()];
    for (si, cycles, mem, promoted, possible) in cells.into_iter().flatten() {
        sums[si].0 += cycles;
        sums[si].1 += mem;
        sums[si].2 += promoted;
        sums[si].3 += possible;
    }
    sizes
        .iter()
        .zip(sums)
        .map(|(&size, (total, mem, promoted, ccm_possible))| SweepPoint {
            ccm_size: size,
            total_pct: 100.0 * (1.0 - total as f64 / base_total.max(1) as f64),
            mem_pct: 100.0 * (1.0 - mem as f64 / base_mem.max(1) as f64),
            promoted_fraction: promoted as f64 / ccm_possible.max(1) as f64,
        })
        .collect()
}

/// One row of a design-choice ablation.
#[derive(Clone, Debug)]
pub struct DesignRow {
    /// Configuration label.
    pub config: String,
    /// Spilled live ranges across the subset.
    pub spilled: usize,
    /// Bytes of main-memory spill space.
    pub spill_bytes: u32,
    /// Total cycles.
    pub cycles: u64,
}

const ABLATION_KERNELS: [&str; 5] = ["fpppp", "radf5", "deseco", "urand", "erhs"];

fn run_config(
    opts: &opt::OptOptions,
    alloc: &AllocConfig,
    promote: bool,
) -> Result<DesignRow, PipelineError> {
    let machine = MachineConfig::with_ccm(512);
    let mut spilled = 0;
    let mut spill_bytes = 0;
    let mut cycles = 0;
    for name in ABLATION_KERNELS {
        let k = suite::kernel(name)
            .ok_or_else(|| PipelineError::new(Stage::Parse, name, "unknown suite kernel"))?;
        let mut m = (k.build)();
        let o = opt::OptOptions {
            unroll: k.unroll,
            ..*opts
        };
        opt::optimize_module(&mut m, &o);
        spilled += regalloc::allocate_module(&mut m, alloc).total_spilled();
        if promote {
            ccm::postpass_promote(
                &mut m,
                &ccm::PostpassConfig {
                    ccm_size: 512,
                    interprocedural: true,
                },
            );
            // Paper, footnote 3: repack the remaining heavyweight slots
            // so the reported spill space is honest.
            ccm::compact_module(&mut m);
        }
        spill_bytes += m
            .functions
            .iter()
            .map(|f| f.frame.spill_bytes())
            .sum::<u32>();
        let (_, metrics) = sim::run_module(&m, machine.clone(), "main")
            .map_err(|e| PipelineError::new(Stage::Sim, name, e.to_string()))?;
        cycles += metrics.cycles;
    }
    Ok(DesignRow {
        config: String::new(),
        spilled,
        spill_bytes,
        cycles,
    })
}

/// Ablates the design choices: scalar optimization on/off, LICM on/off,
/// coalescing on/off, and caller-saved conventions — each measured by
/// spills produced and cycles executed on a spill-heavy subset.
pub fn design_ablation() -> Vec<DesignRow> {
    let base_opts = opt::OptOptions::default();
    let base_alloc = AllocConfig::default();
    let mut rows = Vec::new();
    // A failed configuration is recorded and its row dropped; the other
    // configurations still report.
    let mut push = |label: &str, r: Result<DesignRow, PipelineError>| match r {
        Ok(mut row) => {
            row.config = label.to_string();
            rows.push(row);
        }
        Err(e) => {
            error::record(PipelineError {
                unit: format!("design ablation `{label}` ({})", e.unit),
                ..e
            });
        }
    };
    push(
        "baseline (opt, coalesce, no CCM)",
        run_config(&base_opts, &base_alloc, false),
    );
    push("+ CCM post-pass", run_config(&base_opts, &base_alloc, true));
    push(
        "no scalar optimization",
        run_config(
            &opt::OptOptions {
                max_rounds: 0,
                ..base_opts
            },
            &base_alloc,
            false,
        ),
    );
    push(
        "with LICM (more pressure)",
        run_config(
            &opt::OptOptions {
                licm: true,
                ..base_opts
            },
            &base_alloc,
            false,
        ),
    );
    push(
        "with rematerialization",
        run_config(
            &base_opts,
            &AllocConfig {
                rematerialize: true,
                ..base_alloc
            },
            false,
        ),
    );
    push(
        "remat + CCM post-pass",
        run_config(
            &base_opts,
            &AllocConfig {
                rematerialize: true,
                ..base_alloc
            },
            true,
        ),
    );
    push(
        "no coalescing",
        run_config(
            &base_opts,
            &AllocConfig {
                coalesce: false,
                ..base_alloc
            },
            false,
        ),
    );
    push(
        "caller-saved = 8",
        run_config(
            &base_opts,
            &AllocConfig {
                caller_saved: 8,
                ..base_alloc
            },
            false,
        ),
    );
    push(
        "caller-saved = 16",
        run_config(
            &base_opts,
            &AllocConfig {
                caller_saved: 16,
                ..base_alloc
            },
            false,
        ),
    );
    rows
}

/// Renders the sizing sweep.
pub fn render_sweep(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "CCM sizing curve (post-pass w/ call graph, spilling kernels)"
    );
    let _ = writeln!(
        s,
        "{:>9} {:>12} {:>12} {:>10}",
        "CCM bytes", "total cyc ↓", "mem cyc ↓", "promoted"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>9} {:>11.1}% {:>11.1}% {:>9.0}%",
            p.ccm_size,
            p.total_pct,
            p.mem_pct,
            100.0 * p.promoted_fraction
        );
    }
    s
}

/// Renders the design ablation.
pub fn render_design(rows: &[DesignRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "Design-choice ablation (five spill-heavy kernels)");
    let _ = writeln!(
        s,
        "{:<36} {:>8} {:>12} {:>12}",
        "configuration", "spills", "spill bytes", "cycles"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<36} {:>8} {:>12} {:>12}",
            r.config, r.spilled, r.spill_bytes, r.cycles
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_saturates() {
        let pts = ccm_sweep(&[32, 128, 512, 2048]);
        for w in pts.windows(2) {
            assert!(
                w[1].total_pct >= w[0].total_pct - 1e-9,
                "bigger CCM must not hurt: {:?}",
                pts
            );
            assert!(w[1].promoted_fraction >= w[0].promoted_fraction - 1e-9);
        }
        // The paper's claim: a modest CCM already captures most of the
        // benefit — 512 bytes must capture over half of what 2 KiB does.
        let at_512 = pts.iter().find(|p| p.ccm_size == 512).unwrap();
        let at_2048 = pts.iter().find(|p| p.ccm_size == 2048).unwrap();
        assert!(at_512.total_pct > 0.5 * at_2048.total_pct);
    }

    #[test]
    fn design_ablation_directions() {
        let rows = design_ablation();
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.config.starts_with(label))
                .unwrap_or_else(|| panic!("row {label}"))
        };
        let base = get("baseline");
        // CCM promotion cuts cycles without changing spill decisions.
        assert!(get("+ CCM").cycles < base.cycles);
        assert_eq!(get("+ CCM").spilled, base.spilled);
        // Turning the optimizer off inflates the instruction stream.
        assert!(get("no scalar").cycles > base.cycles);
        // LICM raises pressure → at least as many spilled ranges.
        assert!(get("with LICM").spilled >= base.spilled);
        // Disabling coalescing cannot reduce spilling.
        assert!(get("no coalescing").spilled >= base.spilled);
        // Rematerialization reduces dynamic cost on its own and composes
        // with the CCM.
        let remat = get("with remat");
        assert!(remat.cycles <= base.cycles);
        let both = get("remat + CCM");
        assert!(both.cycles <= remat.cycles);
        // A stricter convention (fewer colors across calls) cannot spill
        // less than the unconstrained model.
        assert!(get("caller-saved = 16").spilled >= base.spilled);
    }
}

/// One row of the scheduling study.
#[derive(Clone, Debug)]
pub struct SchedRow {
    /// Configuration label.
    pub config: String,
    /// Spilled live ranges across the subset.
    pub spilled: usize,
    /// Cycles lost to load-delay stalls.
    pub stalls: u64,
    /// Total cycles.
    pub cycles: u64,
}

/// The scheduling study the paper declined to run (§4.3, last paragraph):
/// on a machine with pipelined 2-cycle loads, measure (a) post-allocation
/// list scheduling hiding load latency, (b) pre-allocation scheduling
/// raising spill counts, and (c) CCM spilling removing the need to hide
/// spill reloads at all ("let the scheduler place the load for a spilled
/// value next to its use", §1).
pub fn scheduling_study() -> Vec<SchedRow> {
    let machine = MachineConfig {
        load_delay: Some(2),
        ..MachineConfig::with_ccm(512)
    };
    // Kernels whose loads sit next to their uses — the code shape where
    // hoisting loads for latency genuinely lengthens live ranges. (The
    // suite's widest kernels already keep everything live at once, so
    // scheduling can only relax them; both effects are real, and the
    // paper's "can … cause added spilling" is the direction shown here.)
    let kernels = ["radf4", "radb4", "colbur", "cosqf1", "zeroin"];
    let mut rows = Vec::new();

    let mut run = |label: &str, pre_sched: bool, post_sched: bool, promote: bool| {
        let cells = error::par_contained(
            exec::default_jobs(),
            &kernels,
            |name| format!("sched study {name} ({label})"),
            |name| {
                let k = suite::kernel(name).ok_or_else(|| {
                    PipelineError::new(Stage::Parse, *name, "unknown suite kernel")
                })?;
                let mut m = (*crate::cache::optimized(&k)?).clone();
                if pre_sched {
                    sched::schedule_module(&mut m, 3);
                }
                let spilled =
                    regalloc::allocate_module(&mut m, &AllocConfig::default()).total_spilled();
                if promote {
                    ccm::postpass_promote(
                        &mut m,
                        &ccm::PostpassConfig {
                            ccm_size: 512,
                            interprocedural: true,
                        },
                    );
                }
                if post_sched {
                    sched::schedule_module(&mut m, 3);
                }
                m.verify().map_err(|e| {
                    PipelineError::new(Stage::Checker, *name, format!("({label}): {e}"))
                })?;
                let (_, metrics) = sim::run_module(&m, machine.clone(), "main").map_err(|e| {
                    PipelineError::new(Stage::Sim, *name, format!("({label}): {e}"))
                })?;
                Ok((spilled, metrics.stall_cycles, metrics.cycles))
            },
        );
        let mut row = SchedRow {
            config: label.to_string(),
            spilled: 0,
            stalls: 0,
            cycles: 0,
        };
        for (spilled, stalls, cycles) in cells.into_iter().flatten() {
            row.spilled += spilled;
            row.stalls += stalls;
            row.cycles += cycles;
        }
        rows.push(row);
    };

    run("unscheduled, no CCM", false, false, false);
    run("post-RA scheduled, no CCM", false, true, false);
    run("pre-RA scheduled, no CCM", true, false, false);
    run("unscheduled + CCM", false, false, true);
    run("post-RA scheduled + CCM", false, true, true);
    rows
}

/// Renders the scheduling study.
pub fn render_sched(rows: &[SchedRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Scheduling study (pipelined loads, 2-cycle delay; five spill-heavy kernels)"
    );
    let _ = writeln!(
        s,
        "{:<30} {:>8} {:>12} {:>12}",
        "configuration", "spills", "stall cyc", "total cyc"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<30} {:>8} {:>12} {:>12}",
            r.config, r.spilled, r.stalls, r.cycles
        );
    }
    s
}

#[cfg(test)]
mod sched_tests {
    use super::*;

    #[test]
    fn scheduling_study_directions() {
        let rows = scheduling_study();
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.config == label)
                .unwrap_or_else(|| panic!("row {label}"))
        };
        let base = get("unscheduled, no CCM");
        let post = get("post-RA scheduled, no CCM");
        let pre = get("pre-RA scheduled, no CCM");
        let ccm_only = get("unscheduled + CCM");
        let both = get("post-RA scheduled + CCM");
        // Post-RA scheduling hides load latency.
        assert!(post.stalls < base.stalls, "{post:?} vs {base:?}");
        assert!(post.cycles <= base.cycles);
        assert_eq!(
            post.spilled, base.spilled,
            "post-RA sched cannot change spills"
        );
        // Pre-RA scheduling raises register pressure → more spills on
        // this load-adjacent kernel set (the paper's warning).
        assert!(pre.spilled > base.spilled, "{pre:?} vs {base:?}");
        // CCM alone removes the spill-reload stalls (1-cycle restores
        // need no hiding) — a large stall reduction without a scheduler.
        assert!(ccm_only.stalls < base.stalls);
        assert!(ccm_only.cycles < base.cycles);
        // The combination is the best configuration of all.
        assert!(both.cycles <= post.cycles.min(ccm_only.cycles));
    }
}

/// One row of the multitasking study (§2.1/§5).
#[derive(Clone, Debug)]
pub struct MultitaskRow {
    /// Total CCM size in bytes.
    pub ccm_size: u32,
    /// Suite-weighted % cycle reduction if one process owns the full CCM.
    pub benefit_full: f64,
    /// Net % reduction when the OS copies the whole CCM at every context
    /// switch, for each quantum in [`MULTITASK_QUANTA`].
    pub net_copying: [f64; 3],
    /// % reduction when the CCM is partitioned four ways with a
    /// system-controlled base register (no switch cost, quarter capacity).
    pub benefit_partitioned: f64,
}

/// Context-switch quanta (cycles) evaluated by [`multitask_study`].
pub const MULTITASK_QUANTA: [u64; 3] = [10_000, 100_000, 1_000_000];

/// The §2.1 multitasking question: with several processes sharing the
/// chip, should the OS copy the CCM in and out on context switches, or
/// carve it up with a base register? Benefits come from the measured
/// sizing curve; copy cost is `2 × size/8` memory operations at two
/// cycles each (save + restore of 8-byte words).
pub fn multitask_study() -> Vec<MultitaskRow> {
    let processes = 4u32;
    let sizes = [1024u32, 4096, 16 * 1024, 32 * 1024];
    // Measure the sizing curve at every size we need (full + quarter).
    let mut need: Vec<u32> = Vec::new();
    for &s in &sizes {
        need.push(s);
        need.push(s / processes);
    }
    need.sort_unstable();
    need.dedup();
    let points = ccm_sweep(&need);
    let benefit = |size: u32| -> f64 {
        points
            .iter()
            .find(|p| p.ccm_size == size)
            .expect("measured")
            .total_pct
    };

    sizes
        .iter()
        .map(|&s| {
            let full = benefit(s);
            let copy_cycles = 2 * (s as u64 / 8) * 2; // save + restore
            let mut net = [0.0; 3];
            for (i, q) in MULTITASK_QUANTA.iter().enumerate() {
                let overhead_pct = 100.0 * copy_cycles as f64 / *q as f64;
                net[i] = full - overhead_pct;
            }
            MultitaskRow {
                ccm_size: s,
                benefit_full: full,
                net_copying: net,
                benefit_partitioned: benefit(s / processes),
            }
        })
        .collect()
}

/// Renders the multitasking study.
pub fn render_multitask(rows: &[MultitaskRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Multitasking study (§2.1/§5): 4 processes, copy-on-switch vs base-register partition"
    );
    let _ = writeln!(
        s,
        "{:>9} {:>9} | {:>12} {:>12} {:>12} | {:>12}",
        "CCM", "full", "copy Q=10k", "copy Q=100k", "copy Q=1M", "partitioned"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>8}B {:>8.1}% | {:>11.1}% {:>11.1}% {:>11.1}% | {:>11.1}%",
            r.ccm_size,
            r.benefit_full,
            r.net_copying[0],
            r.net_copying[1],
            r.net_copying[2],
            r.benefit_partitioned
        );
    }
    let _ = writeln!(
        s,
        "(negative = the copying overhead exceeds the CCM's entire benefit)"
    );
    s
}

#[cfg(test)]
mod multitask_tests {
    use super::*;

    #[test]
    fn partitioning_beats_copying_at_short_quanta() {
        let rows = multitask_study();
        // The paper's recommendation: with a base register, a 16-32 KB CCM
        // gives every process the full single-process benefit.
        let big = rows.iter().find(|r| r.ccm_size == 32 * 1024).unwrap();
        assert!(
            big.benefit_partitioned >= 0.99 * big.benefit_full,
            "an 8 KB partition must capture the saturated benefit"
        );
        // Copying a large CCM at a short quantum is catastrophic.
        assert!(
            big.net_copying[0] < 0.0,
            "copying 32 KB every 10k cycles must erase the benefit"
        );
        // At the short quantum, partitioning wins for every CCM large
        // enough that a quarter still performs (≥ 4 KB); at long quanta
        // and tiny CCMs, copying legitimately wins (the copy is
        // negligible and the partition loses capacity) — both directions
        // are part of the design space the paper sketches.
        for r in rows.iter().filter(|r| r.ccm_size >= 4096) {
            assert!(r.benefit_partitioned >= r.net_copying[0] - 1e-9);
        }
        let tiny = rows.iter().find(|r| r.ccm_size == 1024).unwrap();
        assert!(
            tiny.net_copying[2] > tiny.benefit_partitioned,
            "copying a 1 KB CCM at a 1M-cycle quantum should beat a 256 B partition"
        );
    }
}
