#![warn(clippy::unwrap_used)]
//! `probe` — per-kernel allocation pressure and checker diagnostics.
//!
//! For every suite kernel: spill counts and register pressure under the
//! default allocator, then the post-allocation checker's verdict on the
//! post-pass-with-call-graph CCM variant (512-byte scratchpad).
//!
//! Kernels are probed in parallel (`--jobs N`, default: available
//! parallelism); the report is assembled in suite order regardless of
//! which worker finished first, and a timing line goes to stderr.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                eprintln!("usage: probe [--jobs N] [--engine ast|decoded]");
                std::process::exit(0);
            }
            "--engine" => {
                i += 1;
                match args.get(i).and_then(|v| sim::Engine::parse(v)) {
                    Some(e) => sim::set_default_engine(e),
                    None => {
                        eprintln!("probe: --engine needs ast|decoded");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i) {
                    Some(v) => set_jobs(v),
                    None => {
                        eprintln!("probe: --jobs needs a count");
                        std::process::exit(2);
                    }
                }
            }
            a if a.starts_with("--jobs=") => set_jobs(a.trim_start_matches("--jobs=")),
            a => {
                eprintln!("probe: unknown argument `{a}` (usage: probe [--jobs N])");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    const CCM: u32 = 512;
    let kernels = suite::kernels();
    let stage = exec::Stage::start("probe");
    let reports = exec::par_map_contained(
        exec::default_jobs(),
        &kernels,
        |k| format!("probe {}", k.name),
        |k| {
            use std::fmt::Write as _;
            let m = match harness::cache::optimized(k) {
                Ok(m) => (*m).clone(),
                Err(e) => return format!("{:<10} FAILED: {e}\n", k.name),
            };
            let mut am = m.clone();
            let stats = regalloc::allocate_module(&mut am, &regalloc::AllocConfig::default());
            let bytes: u32 = am.functions.iter().map(|f| f.frame.spill_bytes()).sum();
            // pressure of the biggest routine
            let mut maxg = 0;
            let mut maxf = 0;
            for f in &m.functions {
                let lv = analysis::Liveness::compute(f);
                maxg = maxg.max(lv.max_pressure(f, iloc::RegClass::Gpr));
                maxf = maxf.max(lv.max_pressure(f, iloc::RegClass::Fpr));
            }
            // Checker verdict on the CCM-promoted allocation.
            let mut cm = m.clone();
            harness::allocate_variant(&mut cm, harness::Variant::PostPassCallGraph, CCM);
            let diags = harness::check_allocated(&cm, CCM);
            let errors = checker::errors(&diags).len();
            let verdict = if diags.is_empty() {
                "clean".to_string()
            } else {
                format!("{} errors, {} warnings", errors, diags.len() - errors)
            };
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<10} spills={:<4} bytes={:<6} pressure g={} f={} | checker: {}",
                k.name,
                stats.total_spilled(),
                bytes,
                maxg,
                maxf,
                verdict
            );
            for d in &diags {
                let _ = writeln!(out, "           {d}");
            }
            out
        },
    );
    let mut failures = 0usize;
    for r in reports {
        match r {
            Ok(s) => print!("{s}"),
            Err(e) => {
                failures += 1;
                eprintln!("probe: {e}");
            }
        }
    }
    eprintln!("probe: {}", stage.line());
    if failures > 0 {
        std::process::exit(1);
    }
}

fn set_jobs(v: &str) {
    match exec::parse_jobs(v) {
        Ok(n) => exec::set_default_jobs(n),
        Err(e) => {
            eprintln!("probe: {e}");
            std::process::exit(2);
        }
    }
}
