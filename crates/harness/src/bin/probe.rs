//! `probe` — per-kernel allocation pressure and checker diagnostics.
//!
//! For every suite kernel: spill counts and register pressure under the
//! default allocator, then the post-allocation checker's verdict on the
//! post-pass-with-call-graph CCM variant (512-byte scratchpad).

fn main() {
    const CCM: u32 = 512;
    for k in suite::kernels() {
        let m = suite::build_optimized(&k);
        let mut am = m.clone();
        let stats = regalloc::allocate_module(&mut am, &regalloc::AllocConfig::default());
        let bytes: u32 = am.functions.iter().map(|f| f.frame.spill_bytes()).sum();
        // pressure of the biggest routine
        let mut maxg = 0;
        let mut maxf = 0;
        for f in &m.functions {
            let lv = analysis::Liveness::compute(f);
            maxg = maxg.max(lv.max_pressure(f, iloc::RegClass::Gpr));
            maxf = maxf.max(lv.max_pressure(f, iloc::RegClass::Fpr));
        }
        // Checker verdict on the CCM-promoted allocation.
        let mut cm = m.clone();
        harness::allocate_variant(&mut cm, harness::Variant::PostPassCallGraph, CCM);
        let diags = harness::check_allocated(&cm, CCM);
        let errors = checker::errors(&diags).len();
        let verdict = if diags.is_empty() {
            "clean".to_string()
        } else {
            format!("{} errors, {} warnings", errors, diags.len() - errors)
        };
        println!(
            "{:<10} spills={:<4} bytes={:<6} pressure g={} f={} | checker: {}",
            k.name,
            stats.total_spilled(),
            bytes,
            maxg,
            maxf,
            verdict
        );
        for d in &diags {
            println!("           {d}");
        }
    }
}
