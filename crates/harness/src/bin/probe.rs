fn main() {
    for k in suite::kernels() {
        let m = suite::build_optimized(&k);
        let mut am = m.clone();
        let stats = regalloc::allocate_module(&mut am, &regalloc::AllocConfig::default());
        let bytes: u32 = am.functions.iter().map(|f| f.frame.spill_bytes()).sum();
        // pressure of the biggest routine
        let mut maxg = 0; let mut maxf = 0;
        for f in &m.functions {
            let lv = analysis::Liveness::compute(f);
            maxg = maxg.max(lv.max_pressure(f, iloc::RegClass::Gpr));
            maxf = maxf.max(lv.max_pressure(f, iloc::RegClass::Fpr));
        }
        println!("{:<10} spills={:<4} bytes={:<6} pressure g={} f={}", k.name, stats.total_spilled(), bytes, maxg, maxf);
    }
}
