#![warn(clippy::unwrap_used)]
//! `ccmc` — a command-line driver for the CCM compiler pipeline.
//!
//! Reads a textual ILOC module, optimizes it, allocates registers with a
//! chosen CCM strategy, then (optionally) executes it and reports the
//! paper's metrics.
//!
//! ```text
//! ccmc input.iloc [--variant base|postpass|postpass-cg|integrated]
//!                 [--ccm SIZE] [--unroll N] [--licm] [--run [ENTRY]]
//!                 [--emit] [--stats] [--check[=json]] [--jobs N]
//! ```
//!
//! `--jobs N` sets the parallel engine's worker count for any harness
//! machinery ccmc invokes; `--stats` additionally prints per-stage
//! wall-clock timing lines (parse/opt/alloc/check/run) to stderr.

use std::process::exit;

use harness::{allocate_variant, Variant};
use sim::MachineConfig;

struct Options {
    input: String,
    variant: Variant,
    ccm_size: u32,
    unroll: Option<u32>,
    licm: bool,
    run: Option<String>,
    emit: bool,
    stats: bool,
    check: Option<CheckFormat>,
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum CheckFormat {
    Text,
    Json,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut o = Options {
        input: String::new(),
        variant: Variant::PostPassCallGraph,
        ccm_size: 512,
        unroll: None,
        licm: false,
        run: None,
        emit: false,
        stats: false,
        check: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--variant" => {
                o.variant = match args.next().as_deref() {
                    Some("base") => Variant::Baseline,
                    Some("postpass") => Variant::PostPass,
                    Some("postpass-cg") => Variant::PostPassCallGraph,
                    Some("integrated") => Variant::Integrated,
                    other => die(&format!("unknown variant {other:?}")),
                }
            }
            "--ccm" => o.ccm_size = req(args.next(), "--ccm needs a size"),
            "--unroll" => o.unroll = Some(req(args.next(), "--unroll needs a factor")),
            "--licm" => o.licm = true,
            "--run" => o.run = Some("main".to_string()),
            "--entry" => o.run = Some(req_s(args.next(), "--entry needs a name")),
            "--emit" => o.emit = true,
            "--stats" => o.stats = true,
            "--check" => o.check = Some(CheckFormat::Text),
            "--check=json" => o.check = Some(CheckFormat::Json),
            "--jobs" => match exec::parse_jobs(&req_s(args.next(), "--jobs needs a count")) {
                Ok(n) => exec::set_default_jobs(n),
                Err(e) => die(&e),
            },
            "--engine" => match sim::Engine::parse(&req_s(args.next(), "--engine needs a name")) {
                Some(e) => sim::set_default_engine(e),
                None => die("invalid --engine (ast|decoded)"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ccmc INPUT.iloc [--variant base|postpass|postpass-cg|integrated]\n\
                     \x20            [--ccm SIZE] [--unroll N] [--licm] [--run] [--entry NAME]\n\
                     \x20            [--emit] [--stats] [--check[=json]] [--jobs N]\n\
                     \x20            [--engine ast|decoded]"
                );
                exit(0);
            }
            other if !other.starts_with('-') && o.input.is_empty() => o.input = other.to_string(),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if o.input.is_empty() {
        die("missing input file (try --help)");
    }
    o
}

fn die(msg: &str) -> ! {
    eprintln!("ccmc: {msg}");
    exit(2)
}

fn req<T: std::str::FromStr>(v: Option<String>, msg: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| die(msg))
}

fn req_s(v: Option<String>, msg: &str) -> String {
    v.unwrap_or_else(|| die(msg))
}

fn main() {
    let o = parse_args();
    // Per-stage wall-clock, printed (with --stats) after the run.
    let mut stage_lines: Vec<String> = Vec::new();
    let mut staged = |name: &str, f: &mut dyn FnMut()| {
        let s = exec::Stage::start(name);
        f();
        stage_lines.push(s.line());
    };

    let mut m = iloc::Module::new();
    staged("parse", &mut || {
        let text = std::fs::read_to_string(&o.input)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", o.input)));
        m = iloc::parse_module(&text).unwrap_or_else(|e| die(&e.to_string()));
        m.verify().unwrap_or_else(|e| die(&e.to_string()));
    });

    let mut opt_stats = opt::OptStats::default();
    staged("optimize", &mut || {
        opt_stats = opt::optimize_module(
            &mut m,
            &opt::OptOptions {
                unroll: o.unroll,
                licm: o.licm,
                ..opt::OptOptions::default()
            },
        );
    });
    let mut spilled = 0;
    let mut degraded: Vec<ccm::Degradation> = Vec::new();
    staged("allocate", &mut || {
        let outcome = allocate_variant(&mut m, o.variant, o.ccm_size);
        spilled = outcome.spilled_ranges;
        degraded = outcome.degraded;
        m.verify()
            .unwrap_or_else(|e| die(&format!("post-allocation verify: {e}")));
    });
    for d in &degraded {
        eprintln!("ccmc: warning: {d}");
    }

    if let Some(format) = o.check {
        let s = exec::Stage::start("check");
        let diags = harness::check_allocated(&m, o.ccm_size);
        stage_lines.push(s.line());
        match format {
            CheckFormat::Text => {
                if diags.is_empty() {
                    eprintln!("ccmc: checker clean");
                } else {
                    print!("{}", checker::render_text(&diags));
                }
            }
            CheckFormat::Json => print!("{}", checker::render_json(&diags)),
        }
        if checker::has_errors(&diags) {
            exit(1);
        }
    }

    if o.stats {
        let spill_bytes: u32 = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
        let ccm_slots: usize = m
            .functions
            .iter()
            .flat_map(|f| &f.frame.slots)
            .filter(|s| s.in_ccm)
            .count();
        eprintln!(
            "ccmc: variant={:?} ccm={}B | folded {} gvn {} dce {} hoisted {} | \
             spilled {} ranges, {} CCM slots, {} frame bytes",
            o.variant,
            o.ccm_size,
            opt_stats.constants_folded,
            opt_stats.redundancies_removed,
            opt_stats.dead_removed,
            opt_stats.hoisted,
            spilled,
            ccm_slots,
            spill_bytes
        );
    }

    if o.emit {
        print!("{m}");
    }

    if let Some(entry) = o.run {
        let s = exec::Stage::start("run");
        let cfg = MachineConfig::with_ccm(o.ccm_size);
        match sim::run_module(&m, cfg, &entry) {
            Ok((vals, metrics)) => {
                stage_lines.push(s.line());
                eprintln!(
                    "ccmc: {} cycles ({} memory-op), {} instructions, {} ccm ops",
                    metrics.cycles, metrics.mem_op_cycles, metrics.instrs, metrics.ccm_ops
                );
                for v in vals.ints {
                    println!("{v}");
                }
                for v in vals.floats {
                    println!("{v}");
                }
            }
            Err(e) => die(&format!("execution trapped: {e}")),
        }
    }

    if o.stats {
        for line in &stage_lines {
            eprintln!("ccmc: {line}");
        }
    }
}
