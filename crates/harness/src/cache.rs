//! Memoized pipeline stages, shared by every experiment.
//!
//! `repro --all` used to redo the same work once per table: rebuild and
//! re-optimize every kernel module, re-allocate it per (variant, CCM
//! size), re-check it, and re-simulate it. Every stage of that pipeline
//! is deterministic (the suite is seeded, allocation and simulation take
//! no entropy), so each is cached here at its natural key and every later
//! experiment reads the cache instead of recomputing:
//!
//! * **builds** — [`optimized`]/[`program`] memoize
//!   [`suite::build_optimized`]/[`suite::build_program`] per unit name;
//! * **allocations** — [`allocated`] memoizes allocate-then-check per
//!   (unit, variant, CCM size); `--table3 --check` stops re-allocating
//!   the 616 configurations the tables already produced;
//! * **measurements** — [`measure_unit`] memoizes the simulation result
//!   per (unit, variant, machine fingerprint); Table 2's rows are a
//!   subset of Table 3's, and the sweep/multitask studies revisit the
//!   same CCM sizes.
//!
//! Expensive work happens outside the map locks — two workers racing on
//! the same key may both compute it (identical results, first insert
//! wins), but workers never serialize on each other's computation. That
//! is also why caching cannot break the engine's byte-identical
//! guarantee: a cache hit returns exactly the value a recomputation
//! would.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use iloc::Module;
use sim::MachineConfig;
use suite::{Kernel, Program};

use crate::pipeline::{self, Measurement, Variant};

type Map = Mutex<HashMap<&'static str, Arc<Module>>>;

fn kernel_cache() -> &'static Map {
    static CACHE: OnceLock<Map> = OnceLock::new();
    CACHE.get_or_init(Map::default)
}

fn program_cache() -> &'static Map {
    static CACHE: OnceLock<Map> = OnceLock::new();
    CACHE.get_or_init(Map::default)
}

fn memoized(map: &'static Map, name: &'static str, build: impl FnOnce() -> Module) -> Arc<Module> {
    if let Some(m) = map.lock().unwrap().get(name) {
        return Arc::clone(m);
    }
    let built = Arc::new(build());
    let mut map = map.lock().unwrap();
    Arc::clone(map.entry(name).or_insert(built))
}

/// [`suite::build_optimized`], memoized per kernel name.
pub fn optimized(k: &Kernel) -> Arc<Module> {
    memoized(kernel_cache(), k.name, || suite::build_optimized(k))
}

/// [`suite::build_program`], memoized per program name.
pub fn program(p: &Program) -> Arc<Module> {
    memoized(program_cache(), p.name, || suite::build_program(p))
}

/// One allocated-and-checked configuration of one suite unit.
#[derive(Clone)]
pub struct Allocated {
    /// The module after [`pipeline::allocate_variant`].
    pub module: Arc<Module>,
    /// Every diagnostic from [`pipeline::check_allocated`].
    pub diags: Arc<Vec<checker::Diagnostic>>,
    /// Live ranges spilled during allocation.
    pub spilled_ranges: usize,
}

type AllocKey = (String, Variant, u32);
type AllocMap = Mutex<HashMap<AllocKey, Allocated>>;

fn alloc_cache() -> &'static AllocMap {
    static CACHE: OnceLock<AllocMap> = OnceLock::new();
    CACHE.get_or_init(AllocMap::default)
}

/// Allocates `base` under `variant` at `ccm_size` and runs the
/// post-allocation checker, memoized per (unit name, variant, CCM size).
/// Kernel and program names are globally unique in the suite, so the flat
/// name key cannot collide; `base` must be the cached build for `name`.
pub fn allocated(name: &str, base: &Arc<Module>, variant: Variant, ccm_size: u32) -> Allocated {
    let key = (name.to_string(), variant, ccm_size);
    if let Some(a) = alloc_cache().lock().unwrap().get(&key) {
        return a.clone();
    }
    let mut m = (**base).clone();
    let spilled_ranges = pipeline::allocate_variant(&mut m, variant, ccm_size);
    let diags = pipeline::check_allocated(&m, ccm_size);
    let built = Allocated {
        module: Arc::new(m),
        diags: Arc::new(diags),
        spilled_ranges,
    };
    alloc_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(built)
        .clone()
}

type MeasKey = (String, Variant, String);
type MeasMap = Mutex<HashMap<MeasKey, Measurement>>;

fn meas_cache() -> &'static MeasMap {
    static CACHE: OnceLock<MeasMap> = OnceLock::new();
    CACHE.get_or_init(MeasMap::default)
}

/// [`pipeline::measure`] over the allocation cache, itself memoized per
/// (unit name, variant, machine). The machine key is the full
/// `MachineConfig` debug rendering, so distinct cache models, latencies,
/// or CCM sizes never share an entry.
///
/// # Panics
///
/// Like [`pipeline::measure`]: on checker errors or a simulation trap.
pub fn measure_unit(
    name: &str,
    base: &Arc<Module>,
    variant: Variant,
    machine: &MachineConfig,
) -> Measurement {
    let key = (name.to_string(), variant, format!("{machine:?}"));
    if let Some(m) = meas_cache().lock().unwrap().get(&key) {
        return m.clone();
    }
    let a = allocated(name, base, variant, machine.ccm_size);
    if checker::has_errors(&a.diags) {
        panic!(
            "allocated module fails the post-allocation checker:\n{}",
            checker::render_text(&a.diags)
        );
    }
    let (vals, metrics) = sim::run_module(&a.module, machine.clone(), "main")
        .unwrap_or_else(|e| panic!("simulation trapped: {e}"));
    let spill_bytes = a
        .module
        .functions
        .iter()
        .map(|f| f.frame.spill_bytes())
        .sum();
    let built = Measurement {
        cycles: metrics.cycles,
        mem_cycles: metrics.mem_op_cycles,
        metrics,
        checksum: vals.floats.first().copied().unwrap_or(f64::NAN),
        spill_bytes,
        spilled_ranges: a.spilled_ranges,
    };
    meas_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(built)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_the_same_module_as_a_fresh_build() {
        let k = suite::kernel("radf5").unwrap();
        let cached = optimized(&k);
        let again = optimized(&k);
        assert!(Arc::ptr_eq(&cached, &again), "second lookup must hit");
        let fresh = suite::build_optimized(&k);
        assert_eq!(format!("{fresh}"), format!("{cached}"));
    }

    #[test]
    fn measure_unit_matches_uncached_measure() {
        let k = suite::kernel("radf5").unwrap();
        let base = optimized(&k);
        let machine = MachineConfig::with_ccm(512);
        let cached = measure_unit(k.name, &base, Variant::PostPassCallGraph, &machine);
        let hit = measure_unit(k.name, &base, Variant::PostPassCallGraph, &machine);
        let fresh = pipeline::measure((*base).clone(), Variant::PostPassCallGraph, &machine);
        for m in [&cached, &hit] {
            assert_eq!(m.cycles, fresh.cycles);
            assert_eq!(m.mem_cycles, fresh.mem_cycles);
            assert_eq!(m.checksum.to_bits(), fresh.checksum.to_bits());
            assert_eq!(m.spill_bytes, fresh.spill_bytes);
            assert_eq!(m.spilled_ranges, fresh.spilled_ranges);
        }
        // Distinct machines must not share an entry: a different CCM size
        // changes the key even at the same variant.
        let wider = measure_unit(
            k.name,
            &base,
            Variant::PostPassCallGraph,
            &MachineConfig::with_ccm(1024),
        );
        assert!(wider.cycles <= cached.cycles, "bigger CCM can't be slower");
    }
}
