//! Memoized pipeline stages, shared by every experiment.
//!
//! `repro --all` used to redo the same work once per table: rebuild and
//! re-optimize every kernel module, re-allocate it per (variant, CCM
//! size), re-check it, and re-simulate it. Every stage of that pipeline
//! is deterministic (the suite is seeded, allocation and simulation take
//! no entropy), so each is cached here at its natural key and every later
//! experiment reads the cache instead of recomputing:
//!
//! * **builds** — [`optimized`]/[`program`] memoize
//!   [`suite::build_optimized`]/[`suite::build_program`] per unit name;
//! * **allocations** — [`allocated`] memoizes allocate-then-check per
//!   (unit, variant, CCM size); `--table3 --check` stops re-allocating
//!   the 616 configurations the tables already produced;
//! * **measurements** — [`measure_unit`] memoizes the simulation result
//!   per (unit, variant, machine fingerprint); Table 2's rows are a
//!   subset of Table 3's, and the sweep/multitask studies revisit the
//!   same CCM sizes.
//!
//! Failure is structured end to end: build panics become `stage=opt`
//! errors, allocation panics `stage=alloc`, checker rejections
//! `stage=checker`, simulator traps `stage=sim` — and every cached
//! measurement is **sealed** with a digest at insert time, so a
//! corrupted entry (bit rot, or the `cache.corrupt_measurement` fault
//! point) is detected on its next hit as a `stage=cache` error and
//! evicted instead of silently poisoning a table.
//!
//! Expensive work happens outside the map locks — two workers racing on
//! the same key may both compute it (identical results, first insert
//! wins), but workers never serialize on each other's computation. That
//! is also why caching cannot break the engine's byte-identical
//! guarantee: a cache hit returns exactly the value a recomputation
//! would.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use iloc::Module;
use sim::MachineConfig;
use suite::{Kernel, Program};

use crate::error::{PipelineError, Stage};
use crate::pipeline::{self, Measurement, Variant};

/// Locks a cache map, recovering from poisoning: a panic caught by the
/// containment layer must not wedge every later measurement.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

type Map = Mutex<HashMap<&'static str, Arc<Module>>>;

fn kernel_cache() -> &'static Map {
    static CACHE: OnceLock<Map> = OnceLock::new();
    CACHE.get_or_init(Map::default)
}

fn program_cache() -> &'static Map {
    static CACHE: OnceLock<Map> = OnceLock::new();
    CACHE.get_or_init(Map::default)
}

fn memoized(
    map: &'static Map,
    name: &'static str,
    build: impl FnOnce() -> Module,
) -> Result<Arc<Module>, PipelineError> {
    if let Some(m) = lock(map).get(name) {
        return Ok(Arc::clone(m));
    }
    // Build panics (a generator or optimizer bug) become structured
    // `stage=opt` failures; nothing is cached, so a later retry
    // recomputes rather than replaying a stale error.
    let built = catch_unwind(AssertUnwindSafe(build))
        .map_err(|p| PipelineError::new(Stage::Opt, name, exec::render_payload(p.as_ref())))?;
    let built = Arc::new(built);
    let mut map = lock(map);
    Ok(Arc::clone(map.entry(name).or_insert(built)))
}

/// [`suite::build_optimized`], memoized per kernel name.
///
/// # Errors
///
/// A build/optimize panic is contained as a `stage=opt` error.
pub fn optimized(k: &Kernel) -> Result<Arc<Module>, PipelineError> {
    let k = k.clone();
    memoized(kernel_cache(), k.name, move || suite::build_optimized(&k))
}

/// [`suite::build_program`], memoized per program name.
///
/// # Errors
///
/// A build/optimize panic is contained as a `stage=opt` error.
pub fn program(p: &Program) -> Result<Arc<Module>, PipelineError> {
    let p = p.clone();
    memoized(program_cache(), p.name, move || suite::build_program(&p))
}

/// One allocated-and-checked configuration of one suite unit.
#[derive(Clone)]
pub struct Allocated {
    /// The module after [`pipeline::allocate_variant`].
    pub module: Arc<Module>,
    /// Every diagnostic from [`pipeline::check_allocated`].
    pub diags: Arc<Vec<checker::Diagnostic>>,
    /// Live ranges spilled during allocation.
    pub spilled_ranges: usize,
    /// Per-function CCM→heavyweight degradation events.
    pub degraded: Arc<Vec<ccm::Degradation>>,
}

type AllocKey = (String, Variant, u32);
type AllocMap = Mutex<HashMap<AllocKey, Allocated>>;

fn alloc_cache() -> &'static AllocMap {
    static CACHE: OnceLock<AllocMap> = OnceLock::new();
    CACHE.get_or_init(AllocMap::default)
}

/// Allocates `base` under `variant` at `ccm_size` and runs the
/// post-allocation checker, memoized per (unit name, variant, CCM size).
/// Kernel and program names are globally unique in the suite, so the flat
/// name key cannot collide; `base` must be the cached build for `name`.
///
/// Checker diagnostics are data here, not failure: `--check` reports
/// error rows rather than skipping them. [`measure_unit`] applies the
/// error gate before simulating.
///
/// # Errors
///
/// An allocation panic is contained as a `stage=alloc` error.
pub fn allocated(
    name: &str,
    base: &Arc<Module>,
    variant: Variant,
    ccm_size: u32,
) -> Result<Allocated, PipelineError> {
    let key = (name.to_string(), variant, ccm_size);
    if let Some(a) = lock(alloc_cache()).get(&key) {
        return Ok(a.clone());
    }
    let mut m = (**base).clone();
    let outcome = pipeline::allocate_contained(&mut m, name, variant, ccm_size)?;
    let diags = pipeline::check_allocated(&m, ccm_size);
    let built = Allocated {
        module: Arc::new(m),
        diags: Arc::new(diags),
        spilled_ranges: outcome.spilled_ranges,
        degraded: Arc::new(outcome.degraded),
    };
    Ok(lock(alloc_cache()).entry(key).or_insert(built).clone())
}

/// A cached measurement sealed with the digest computed at insert time.
struct Sealed {
    m: Measurement,
    digest: u64,
}

/// FNV-1a over the measurement's observable fields. Detects any
/// corruption of the numbers the tables are built from.
fn digest(m: &Measurement) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(m.cycles);
    mix(m.mem_cycles);
    mix(m.metrics.instrs);
    mix(m.metrics.ccm_ops);
    mix(m.checksum.to_bits());
    mix(u64::from(m.spill_bytes));
    mix(m.spilled_ranges as u64);
    mix(m.degraded.len() as u64);
    for d in &m.degraded {
        for b in d.function.bytes().chain(d.reason.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

type MeasKey = (String, Variant, String);
type MeasMap = Mutex<HashMap<MeasKey, Sealed>>;

fn meas_cache() -> &'static MeasMap {
    static CACHE: OnceLock<MeasMap> = OnceLock::new();
    CACHE.get_or_init(MeasMap::default)
}

/// [`pipeline::measure`] over the allocation cache, itself memoized per
/// (unit name, variant, machine). The machine key is the full
/// `MachineConfig` debug rendering, so distinct cache models, latencies,
/// or CCM sizes never share an entry.
///
/// # Errors
///
/// Structured per stage, like [`pipeline::measure`]; additionally a
/// cached entry whose seal no longer matches its contents is evicted and
/// reported as a `stage=cache` error (the next call recomputes it).
pub fn measure_unit(
    name: &str,
    base: &Arc<Module>,
    variant: Variant,
    machine: &MachineConfig,
) -> Result<Measurement, PipelineError> {
    let key = (name.to_string(), variant, format!("{machine:?}"));
    {
        let mut map = lock(meas_cache());
        if let Some(sealed) = map.get(&key) {
            if digest(&sealed.m) == sealed.digest {
                return Ok(sealed.m.clone());
            }
            // Corrupt entry: evict so the next call recomputes, and
            // surface the detection as a structured failure.
            map.remove(&key);
            return Err(PipelineError::new(
                Stage::Cache,
                name,
                "corrupt cache entry: measurement digest mismatch (entry evicted)",
            )
            .at(variant, machine.ccm_size));
        }
    }
    let a = allocated(name, base, variant, machine.ccm_size)?;
    pipeline::checker_gate(&a.diags, name, variant, machine.ccm_size)?;
    let (vals, metrics) = sim::run_module(&a.module, machine.clone(), "main").map_err(|e| {
        PipelineError::new(Stage::Sim, name, e.to_string()).at(variant, machine.ccm_size)
    })?;
    let spill_bytes = a
        .module
        .functions
        .iter()
        .map(|f| f.frame.spill_bytes())
        .sum();
    let built = Measurement {
        cycles: metrics.cycles,
        mem_cycles: metrics.mem_op_cycles,
        metrics,
        checksum: vals.floats.first().copied().unwrap_or(f64::NAN),
        spill_bytes,
        spilled_ranges: a.spilled_ranges,
        degraded: (*a.degraded).clone(),
    };
    let mut sealed = Sealed {
        digest: digest(&built),
        m: built.clone(),
    };
    if inject::faultpoint!("cache.corrupt_measurement") {
        // Flip the stored copy *after* sealing: the caller's value is
        // clean, but the next hit must detect the mismatch.
        sealed.m.cycles ^= 0xdead_beef;
    }
    lock(meas_cache()).entry(key).or_insert(sealed);
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_the_same_module_as_a_fresh_build() {
        let k = suite::kernel("radf5").unwrap();
        let cached = optimized(&k).unwrap();
        let again = optimized(&k).unwrap();
        assert!(Arc::ptr_eq(&cached, &again), "second lookup must hit");
        let fresh = suite::build_optimized(&k);
        assert_eq!(format!("{fresh}"), format!("{cached}"));
    }

    #[test]
    fn measure_unit_matches_uncached_measure() {
        let k = suite::kernel("radf5").unwrap();
        let base = optimized(&k).unwrap();
        let machine = MachineConfig::with_ccm(512);
        let cached = measure_unit(k.name, &base, Variant::PostPassCallGraph, &machine).unwrap();
        let hit = measure_unit(k.name, &base, Variant::PostPassCallGraph, &machine).unwrap();
        let fresh =
            pipeline::measure((*base).clone(), Variant::PostPassCallGraph, &machine).unwrap();
        for m in [&cached, &hit] {
            assert_eq!(m.cycles, fresh.cycles);
            assert_eq!(m.mem_cycles, fresh.mem_cycles);
            assert_eq!(m.checksum.to_bits(), fresh.checksum.to_bits());
            assert_eq!(m.spill_bytes, fresh.spill_bytes);
            assert_eq!(m.spilled_ranges, fresh.spilled_ranges);
        }
        // Distinct machines must not share an entry: a different CCM size
        // changes the key even at the same variant.
        let wider = measure_unit(
            k.name,
            &base,
            Variant::PostPassCallGraph,
            &MachineConfig::with_ccm(1024),
        )
        .unwrap();
        assert!(wider.cycles <= cached.cycles, "bigger CCM can't be slower");
    }

    #[test]
    fn corrupted_entry_is_detected_evicted_and_recomputed() {
        let k = suite::kernel("radf5").unwrap();
        let base = optimized(&k).unwrap();
        // A machine nobody else measures, so this test owns the entry.
        let machine = MachineConfig {
            max_steps: 1_999_999_873,
            ..MachineConfig::with_ccm(512)
        };
        let clean = measure_unit(k.name, &base, Variant::PostPass, &machine).unwrap();
        // Corrupt the sealed entry behind the cache's back.
        let key = (
            k.name.to_string(),
            Variant::PostPass,
            format!("{machine:?}"),
        );
        lock(meas_cache())
            .get_mut(&key)
            .expect("entry present")
            .m
            .cycles ^= 1;
        let err = measure_unit(k.name, &base, Variant::PostPass, &machine).unwrap_err();
        assert_eq!(err.stage, Stage::Cache);
        assert!(err.detail.contains("corrupt"), "{err}");
        // Eviction means the next call recomputes the clean value.
        let again = measure_unit(k.name, &base, Variant::PostPass, &machine).unwrap();
        assert_eq!(again.cycles, clean.cycles);
    }
}
