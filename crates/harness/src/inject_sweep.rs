//! `repro --inject-sweep`: the fault-injection harness.
//!
//! Walks every fault point in [`inject::REGISTRY`], arms it, drives a
//! real compile-and-measure workload through the armed pipeline, and
//! asserts that the run **survives** with exactly the expected
//! structured outcome — a `stage=alloc` error for an allocator panic, a
//! degradation event (not an error) for a CCM coloring failure, a
//! detected-and-evicted `stage=cache` error for a corrupted cache entry,
//! and so on. A point that does not fire, fires with the wrong shape, or
//! escapes containment fails the sweep; the process itself must never
//! abort.
//!
//! The sweep runs points strictly one at a time (arming is process-
//! global) and measures through [`pipeline::measure`] directly rather
//! than the memoization layer, so an injected failure can never poison a
//! cached entry that a later experiment would reuse. The one exception
//! is `cache.corrupt_measurement`, whose whole purpose is the cache — it
//! uses a machine configuration no real experiment measures, so the
//! poisoned key is private to the sweep.

use std::panic;

use iloc::Module;
use sim::MachineConfig;

use crate::cache;
use crate::error::{PipelineError, Stage};
use crate::pipeline::{self, Measurement, Variant};

/// The verdict for one fault point.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Registry name of the point.
    pub name: &'static str,
    /// Whether the run survived with the expected structured failure.
    pub passed: bool,
    /// What actually happened.
    pub detail: String,
}

/// The spilling kernel every workload drives; it exercises allocation,
/// CCM promotion, the checker, and the simulator.
const KERNEL: &str = "radf5";
const CCM: u32 = 512;

fn workload_module() -> Result<Module, String> {
    let k = suite::kernel(KERNEL).ok_or_else(|| format!("suite kernel `{KERNEL}` missing"))?;
    Ok(suite::build_optimized(&k))
}

fn machine() -> MachineConfig {
    MachineConfig::with_ccm(CCM)
}

fn measure(m: &Module, variant: Variant) -> Result<Measurement, PipelineError> {
    pipeline::measure_named(KERNEL, m.clone(), variant, &machine())
}

/// Asserts an `Err` with the given stage whose detail mentions `needle`.
fn expect_err(
    r: Result<Measurement, PipelineError>,
    stage: Stage,
    needle: &str,
) -> Result<String, String> {
    match r {
        Ok(_) => Err(format!("expected a stage={} error, got Ok", stage.name())),
        Err(e) if e.stage == stage && e.detail.contains(needle) => {
            Ok(format!("contained as `{e}`"))
        }
        Err(e) => Err(format!(
            "expected stage={} containing `{needle}`, got `{e}`",
            stage.name()
        )),
    }
}

/// `alloc.ccm_coloring`: the coloring failure must *degrade* the hit
/// function (heavyweight spills, a recorded [`ccm::Degradation`]) while
/// program outputs stay byte-identical to the clean run — for the
/// post-pass and the integrated allocator.
fn point_ccm_coloring(m: &Module) -> Result<String, String> {
    let mut lines = Vec::new();
    for variant in [Variant::PostPassCallGraph, Variant::Integrated] {
        let clean = measure(m, variant).map_err(|e| format!("clean run failed: {e}"))?;
        inject::arm_once("alloc.ccm_coloring", 0).map_err(|e| e.to_string())?;
        let degraded = measure(m, variant);
        let fires = inject::disarm();
        let degraded = degraded.map_err(|e| format!("degraded run errored: {e}"))?;
        if fires == 0 {
            return Err(format!("point never fired under {}", variant.short()));
        }
        if degraded.degraded.is_empty() {
            return Err(format!(
                "{}: no degradation event recorded",
                variant.short()
            ));
        }
        if degraded.checksum.to_bits() != clean.checksum.to_bits() {
            return Err(format!(
                "{}: degraded checksum {} != clean {}",
                variant.short(),
                degraded.checksum,
                clean.checksum
            ));
        }
        lines.push(format!(
            "{}: {} degraded, outputs identical",
            variant.short(),
            degraded.degraded[0].function
        ));
    }
    Ok(lines.join("; "))
}

/// `alloc.panic`: an allocator panic is contained as `stage=alloc`.
fn point_alloc_panic(m: &Module) -> Result<String, String> {
    inject::arm("alloc.panic").map_err(|e| e.to_string())?;
    let r = measure(m, Variant::PostPassCallGraph);
    inject::disarm();
    expect_err(r, Stage::Alloc, "injected allocator panic")
}

/// `checker.forced_error`: a checker rejection gates simulation as
/// `stage=checker`.
fn point_checker(m: &Module) -> Result<String, String> {
    inject::arm("checker.forced_error").map_err(|e| e.to_string())?;
    let r = measure(m, Variant::PostPassCallGraph);
    inject::disarm();
    expect_err(r, Stage::Checker, "injected checker error")
}

/// `sim.budget`: an exhausted instruction budget is `stage=sim`.
fn point_sim_budget(m: &Module) -> Result<String, String> {
    inject::arm("sim.budget").map_err(|e| e.to_string())?;
    let r = measure(m, Variant::Baseline);
    inject::disarm();
    expect_err(r, Stage::Sim, "step limit")
}

/// `sim.unknown_global`: a bad global resolution is `stage=sim`.
fn point_sim_unknown_global(m: &Module) -> Result<String, String> {
    inject::arm("sim.unknown_global").map_err(|e| e.to_string())?;
    let r = measure(m, Variant::Baseline);
    inject::disarm();
    expect_err(r, Stage::Sim, "unknown global")
}

/// `cache.corrupt_measurement`: the first call seals a corrupted entry
/// (while returning the clean value); the next hit must detect the
/// digest mismatch as `stage=cache` and evict, and the call after that
/// recomputes the clean value.
fn point_cache_corruption(m: &Module) -> Result<String, String> {
    let base = std::sync::Arc::new(m.clone());
    // A max_steps value nothing else uses keeps this key sweep-private.
    let machine = MachineConfig {
        max_steps: 1_999_999_999,
        ..machine()
    };
    inject::arm("cache.corrupt_measurement").map_err(|e| e.to_string())?;
    let first = cache::measure_unit(KERNEL, &base, Variant::PostPass, &machine);
    let fires = inject::disarm();
    let first = first.map_err(|e| format!("seeding call failed: {e}"))?;
    if fires == 0 {
        return Err("point never fired (was the entry already cached?)".to_string());
    }
    let hit = cache::measure_unit(KERNEL, &base, Variant::PostPass, &machine);
    let detail = match hit {
        Err(e) if e.stage == Stage::Cache && e.detail.contains("corrupt") => format!("{e}"),
        Err(e) => {
            return Err(format!(
                "expected stage=cache containing `corrupt`, got `{e}`"
            ))
        }
        Ok(_) => return Err("corrupt entry went undetected".to_string()),
    };
    let recomputed = cache::measure_unit(KERNEL, &base, Variant::PostPass, &machine)
        .map_err(|e| format!("post-eviction recompute failed: {e}"))?;
    if recomputed.cycles != first.cycles {
        return Err("post-eviction recompute diverged from the clean value".to_string());
    }
    Ok(format!("detected and evicted: {detail}"))
}

/// `exec.worker_panic`: every item's worker panic is contained in its
/// own slot, and the failure report is byte-identical at any job count.
fn point_exec_worker_panic(jobs: usize) -> Result<String, String> {
    let items: Vec<u32> = (0..8).collect();
    let run =
        |j: usize| exec::par_map_contained(j, &items, |i| format!("sweep item {i}"), |&i| i * 2);
    inject::arm("exec.worker_panic").map_err(|e| e.to_string())?;
    let serial = run(1);
    let par = run(jobs.max(2));
    inject::disarm();
    if serial != par {
        return Err("jobs=1 and parallel failure reports diverged".to_string());
    }
    let contained = serial
        .iter()
        .filter(|r| matches!(r, Err(e) if e.message.contains("injected worker panic")))
        .count();
    if contained != items.len() {
        return Err(format!(
            "{contained}/{} items contained the injected panic",
            items.len()
        ));
    }
    Ok(format!(
        "{contained}/{} items failed structurally, reports job-count-invariant",
        items.len()
    ))
}

/// Runs the full sweep: every registry point, one at a time, against a
/// real workload. Panic-type points are expected to panic inside the
/// containment layer, so the default panic hook is silenced for the
/// duration (the *structured* reports are what the sweep asserts on).
pub fn run_sweep(jobs: usize) -> Vec<SweepOutcome> {
    inject::disarm();
    let module = workload_module();
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut out = Vec::new();
    for p in inject::REGISTRY {
        let verdict = match (&module, p.name) {
            (Err(e), _) => Err(format!("workload unavailable: {e}")),
            (Ok(m), "alloc.ccm_coloring") => point_ccm_coloring(m),
            (Ok(m), "alloc.panic") => point_alloc_panic(m),
            (Ok(m), "checker.forced_error") => point_checker(m),
            (Ok(m), "sim.budget") => point_sim_budget(m),
            (Ok(m), "sim.unknown_global") => point_sim_unknown_global(m),
            (Ok(m), "cache.corrupt_measurement") => point_cache_corruption(m),
            (Ok(_), "exec.worker_panic") => point_exec_worker_panic(jobs),
            (Ok(_), other) => Err(format!(
                "no sweep workload drives `{other}` — register one in inject_sweep.rs"
            )),
        };
        // Never let one point's arming leak into the next.
        inject::disarm();
        out.push(match verdict {
            Ok(detail) => SweepOutcome {
                name: p.name,
                passed: true,
                detail,
            },
            Err(detail) => SweepOutcome {
                name: p.name,
                passed: false,
                detail,
            },
        });
    }
    panic::set_hook(prev_hook);
    out
}

/// Renders the sweep report (deterministic: registry order).
pub fn render(outcomes: &[SweepOutcome]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let failed = outcomes.iter().filter(|o| !o.passed).count();
    let _ = writeln!(
        s,
        "fault-injection sweep: {}/{} points survived with the expected failure",
        outcomes.len() - failed,
        outcomes.len()
    );
    for o in outcomes {
        let _ = writeln!(
            s,
            "  [{}] {:<26} {}",
            if o.passed { "ok" } else { "FAIL" },
            o.name,
            o.detail
        );
    }
    s
}
