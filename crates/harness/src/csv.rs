//! Machine-readable CSV export of the experiment results, for plotting.

use std::fmt::Write as _;

use crate::experiments::{CompactionRow, ProgramRow, SpeedupRow};
use crate::extensions::SweepPoint;

/// Table 1 as CSV (`routine,before,after,ratio`).
pub fn table1_csv(rows: &[CompactionRow]) -> String {
    let mut s = String::from("routine,before_bytes,after_bytes,ratio\n");
    for r in rows {
        let _ = writeln!(s, "{},{},{},{:.4}", r.name, r.before, r.after, r.ratio());
    }
    s
}

/// Table 2/3 as CSV: absolute baseline plus relative columns.
pub fn speedups_csv(rows: &[SpeedupRow]) -> String {
    let mut s = String::from(
        "routine,base_cycles,base_mem_cycles,postpass_rel,postpass_mem_rel,\
         postpass_cg_rel,postpass_cg_mem_rel,integrated_rel,integrated_mem_rel\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.name,
            r.baseline.cycles,
            r.baseline.mem_cycles,
            r.rel(&r.postpass),
            r.rel_mem(&r.postpass),
            r.rel(&r.postpass_cg),
            r.rel_mem(&r.postpass_cg),
            r.rel(&r.integrated),
            r.rel_mem(&r.integrated),
        );
    }
    s
}

/// Figures 3/4 as CSV: one row per (program, method).
pub fn figure_csv(rows: &[ProgramRow]) -> String {
    let mut s = String::from("program,method,rel_time,rel_mem_time,base_cycles\n");
    let methods = ["postpass", "postpass_cg", "integrated"];
    for r in rows {
        for (m, (t, mem)) in methods.iter().zip(r.rel.iter()) {
            let _ = writeln!(s, "{},{},{:.4},{:.4},{}", r.name, m, t, mem, r.baseline.0);
        }
    }
    s
}

/// The CCM sizing sweep as CSV.
pub fn sweep_csv(points: &[SweepPoint]) -> String {
    let mut s = String::from("ccm_bytes,total_reduction_pct,mem_reduction_pct,promoted_frac\n");
    for p in points {
        let _ = writeln!(
            s,
            "{},{:.3},{:.3},{:.4}",
            p.ccm_size, p.total_pct, p.mem_pct, p.promoted_fraction
        );
    }
    s
}

/// Writes every experiment's CSV into `dir` (created if needed). Returns
/// the file names written.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or file writes.
pub fn export_all(dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut put = |name: &str, contents: String| -> std::io::Result<()> {
        std::fs::write(dir.join(name), contents)?;
        written.push(name.to_string());
        Ok(())
    };
    put("table1.csv", table1_csv(&crate::table1()))?;
    let mut sized = crate::speedup_rows_multi(&[512, 1024], exec::default_jobs());
    let r1024 = sized.pop().expect("two sizes");
    let r512 = sized.pop().expect("two sizes");
    put("table2_512.csv", speedups_csv(&r512))?;
    put("table2_1024.csv", speedups_csv(&r1024))?;
    put("figure3.csv", figure_csv(&crate::figure(512)))?;
    put("figure4.csv", figure_csv(&crate::figure(1024)))?;
    put(
        "sweep.csv",
        sweep_csv(&crate::ccm_sweep(&[64, 128, 256, 512, 1024, 2048, 4096])),
    )?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::CompactionRow;

    #[test]
    fn table1_csv_has_header_and_rows() {
        let rows = vec![CompactionRow {
            name: "x".into(),
            before: 10,
            after: 5,
        }];
        let s = table1_csv(&rows);
        let mut lines = s.lines();
        assert_eq!(
            lines.next().unwrap(),
            "routine,before_bytes,after_bytes,ratio"
        );
        assert_eq!(lines.next().unwrap(), "x,10,5,0.5000");
    }

    #[test]
    fn figure_csv_one_row_per_method() {
        let rows = vec![crate::experiments::ProgramRow {
            name: "p".into(),
            baseline: (100, 40),
            rel: [(0.9, 0.8), (0.85, 0.75), (0.95, 0.9)],
        }];
        let s = figure_csv(&rows);
        assert_eq!(s.lines().count(), 4); // header + 3 methods
        assert!(s.contains("p,postpass_cg,0.8500,0.7500,100"));
    }
}
