//! The compile-and-measure pipeline shared by all experiments.

use iloc::Module;
use regalloc::AllocConfig;
use sim::{MachineConfig, Metrics};

/// The allocation strategy under test — the three CCM methods of the
/// paper plus the no-CCM baseline.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Conventional Chaitin-Briggs; all spills to main memory.
    Baseline,
    /// Post-pass CCM allocator, no interprocedural information.
    PostPass,
    /// Post-pass CCM allocator with call-graph information.
    PostPassCallGraph,
    /// CCM spilling integrated into the Chaitin-Briggs allocator.
    Integrated,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 4] = [
        Variant::Baseline,
        Variant::PostPass,
        Variant::PostPassCallGraph,
        Variant::Integrated,
    ];

    /// Column label used in the printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "Without CCM",
            Variant::PostPass => "Post-Pass",
            Variant::PostPassCallGraph => "Post-Pass w/ Call Graph",
            Variant::Integrated => "Integrated",
        }
    }
}

/// One measured configuration of one module.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Dynamic cycle count.
    pub cycles: u64,
    /// Cycles spent in memory operations (main memory + CCM).
    pub mem_cycles: u64,
    /// Full metric set.
    pub metrics: Metrics,
    /// The checksum the program returned (for equivalence checking).
    pub checksum: f64,
    /// Bytes of main-memory spill space across all functions.
    pub spill_bytes: u32,
    /// Live ranges spilled during allocation.
    pub spilled_ranges: usize,
}

/// Applies `variant` allocation (with CCM capacity `ccm_size`) to an
/// optimized module. The input should come from
/// [`suite::build_optimized`] or [`suite::build_program`].
pub fn allocate_variant(m: &mut Module, variant: Variant, ccm_size: u32) -> usize {
    let cfg = AllocConfig::default();
    match variant {
        Variant::Baseline => regalloc::allocate_module(m, &cfg).total_spilled(),
        Variant::PostPass => {
            let n = regalloc::allocate_module(m, &cfg).total_spilled();
            ccm::postpass_promote(
                m,
                &ccm::PostpassConfig {
                    ccm_size,
                    interprocedural: false,
                },
            );
            n
        }
        Variant::PostPassCallGraph => {
            let n = regalloc::allocate_module(m, &cfg).total_spilled();
            ccm::postpass_promote(
                m,
                &ccm::PostpassConfig {
                    ccm_size,
                    interprocedural: true,
                },
            );
            n
        }
        Variant::Integrated => {
            let (a, _) = ccm::allocate_module_integrated(m, &cfg, ccm_size);
            a.total_spilled()
        }
    }
}

/// Runs the post-allocation static checker on an allocated module,
/// returning every diagnostic (the structural verifier is one of its
/// passes, so this subsumes `m.verify()`).
pub fn check_allocated(m: &Module, ccm_size: u32) -> Vec<checker::Diagnostic> {
    checker::check_module(m, &checker::CheckerConfig::new(ccm_size))
}

/// Allocates (per `variant`) and simulates an optimized module, returning
/// the measurement. `machine` controls CCM size and any cache model.
///
/// # Panics
///
/// Panics if the allocated module fails the post-allocation checker, or
/// if the program traps — suite programs are expected to run.
pub fn measure(mut m: Module, variant: Variant, machine: &MachineConfig) -> Measurement {
    let spilled_ranges = allocate_variant(&mut m, variant, machine.ccm_size);
    let diags = check_allocated(&m, machine.ccm_size);
    if checker::has_errors(&diags) {
        panic!(
            "allocated module fails the post-allocation checker:\n{}",
            checker::render_text(&diags)
        );
    }
    let (vals, metrics) = sim::run_module(&m, machine.clone(), "main")
        .unwrap_or_else(|e| panic!("simulation trapped: {e}"));
    let spill_bytes = m.functions.iter().map(|f| f.frame.spill_bytes()).sum();
    Measurement {
        cycles: metrics.cycles,
        mem_cycles: metrics.mem_op_cycles,
        metrics,
        checksum: vals.floats.first().copied().unwrap_or(f64::NAN),
        spill_bytes,
        spilled_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_on_checksum_and_ccm_wins() {
        let k = suite::kernel("radf5").unwrap();
        let m = suite::build_optimized(&k);
        let machine = MachineConfig::with_ccm(512);
        let base = measure(m.clone(), Variant::Baseline, &machine);
        assert!(base.spilled_ranges > 0, "radf5 must spill");
        for v in [
            Variant::PostPass,
            Variant::PostPassCallGraph,
            Variant::Integrated,
        ] {
            let r = measure(m.clone(), v, &machine);
            assert_eq!(
                r.checksum.to_bits(),
                base.checksum.to_bits(),
                "{v:?} changed the checksum"
            );
            assert!(
                r.cycles <= base.cycles,
                "{v:?} slower than baseline: {} vs {}",
                r.cycles,
                base.cycles
            );
        }
    }

    #[test]
    fn non_spilling_kernel_unaffected() {
        let k = suite::kernel("efill").unwrap();
        let m = suite::build_optimized(&k);
        let machine = MachineConfig::with_ccm(512);
        let base = measure(m.clone(), Variant::Baseline, &machine);
        assert_eq!(base.spilled_ranges, 0);
        let pp = measure(m.clone(), Variant::PostPassCallGraph, &machine);
        assert_eq!(pp.cycles, base.cycles);
        assert_eq!(pp.metrics.ccm_ops, 0);
    }
}
